"""Telemetry exporters: Prometheus text exposition, NDJSON event log,
JSON snapshot.

Three write-once formats over one :class:`~repro.obs.TelemetryRegistry`:

- :func:`to_prometheus` — the text exposition format (``# TYPE`` lines,
  ``name{labels} value``, histogram ``_bucket``/``_sum``/``_count``
  series) scrapable by any Prometheus-compatible collector;
- :func:`events_to_ndjson` — the structured event log (spans, slow
  ops, domain events), one JSON object per line;
- :func:`snapshot_to_json` — the aggregate snapshot (the same body the
  service ``stats`` RPC serves under ``telemetry``).

``redact_timings=True`` zeroes every duration field in all three
formats while keeping counts and identities, which makes two runs of a
seeded workload byte-identical — ``make obs-smoke`` runs the seeded
smoke twice and diffs exactly that.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .registry import TelemetryRegistry

__all__ = [
    "to_prometheus",
    "events_to_ndjson",
    "snapshot_to_json",
    "export_all",
]

#: Event fields holding wall-clock durations (redaction targets).
_DURATION_FIELDS = ("s", "threshold_s")


def _split_key(key: str) -> str:
    """Metric family name of a rendered ``name{labels}`` key."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def _suffixed(key: str, suffix: str, extra: str = "") -> str:
    """``name{labels}`` -> ``name<suffix>{labels,extra}``.

    Histogram series append ``_bucket``/``_sum``/``_count`` to the
    *family* name, before the label set, per the exposition format.
    """
    brace = key.find("{")
    if brace < 0:
        labels = extra
    else:
        inner = key[brace + 1 : -1]
        labels = f"{inner},{extra}" if extra else inner
        key = key[:brace]
    if labels:
        return f"{key}{suffix}{{{labels}}}"
    return f"{key}{suffix}"


def _fmt(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(
    registry: TelemetryRegistry, redact_timings: bool = False
) -> str:
    """Render the registry in the Prometheus text exposition format."""
    snap = registry.snapshot(redact_timings=redact_timings)
    lines: List[str] = []
    seen_types: set = set()

    def type_line(key: str, kind: str) -> None:
        family = _split_key(key)
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} {kind}")

    for key, value in snap["counters"].items():
        type_line(key, "counter")
        lines.append(f"{key} {_fmt(value)}")
    for key, value in snap["gauges"].items():
        type_line(key, "gauge")
        lines.append(f"{key} {_fmt(value)}")
    for key, hist in registry.histograms().items():
        type_line(key, "histogram")
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            # Which bucket an observation lands in is itself timing
            # information: redaction zeroes the distribution (only the
            # +Inf total remains) so seeded runs diff byte-for-byte.
            if not redact_timings:
                cumulative += count
            le = 'le="%g"' % bound
            lines.append(f"{_suffixed(key, '_bucket', le)} {cumulative}")
        cumulative = hist.total if redact_timings else cumulative + hist.overflow
        inf = 'le="+Inf"'
        lines.append(f"{_suffixed(key, '_bucket', inf)} {cumulative}")
        total_s = 0.0 if redact_timings else hist.sum
        lines.append(f"{_suffixed(key, '_sum')} {repr(round(total_s, 9))}")
        lines.append(f"{_suffixed(key, '_count')} {hist.total}")
    lines.append(
        f"telemetry_events_recorded {snap['events']['recorded']}"
    )
    lines.append(f"telemetry_events_dropped {snap['events']['dropped']}")
    return "\n".join(lines) + "\n"


def events_to_ndjson(
    registry: TelemetryRegistry, redact_timings: bool = False
) -> str:
    """Render the event log as newline-delimited JSON."""
    lines: List[str] = []
    for record in registry.events():
        if redact_timings:
            record = {
                k: (0.0 if k in _DURATION_FIELDS else v)
                for k, v in record.items()
            }
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_to_json(
    registry: TelemetryRegistry, redact_timings: bool = False
) -> str:
    """Render the aggregate snapshot as pretty-printed JSON."""
    snap = registry.snapshot(redact_timings=redact_timings)
    return json.dumps(snap, indent=2, sort_keys=True) + "\n"


def export_all(
    registry: TelemetryRegistry,
    prefix: str,
    redact_timings: bool = False,
) -> Dict[str, str]:
    """Write ``<prefix>.prom`` / ``<prefix>.ndjson`` / ``<prefix>.json``.

    Returns ``{format: path}`` for the files written.  This is what the
    ``--telemetry <path>`` CLI flag calls on exit.
    """
    renders: Dict[str, Any] = {
        "json": snapshot_to_json,
        "ndjson": events_to_ndjson,
        "prom": to_prometheus,
    }
    written: Dict[str, str] = {}
    for fmt in sorted(renders):
        path = f"{prefix}.{fmt}"
        with open(path, "w") as fh:
            fh.write(renders[fmt](registry, redact_timings=redact_timings))
        written[fmt] = path
    return written
