"""Thread-safe metric primitives: counters, gauges, histograms.

These are the building blocks of the unified telemetry layer
(:mod:`repro.obs.registry`).  They originated in the control plane's
``repro.service.metrics`` (PR 4) and were promoted here so every layer
— the lamb pipeline, the wormhole simulator, the trial engine, and the
service — shares one implementation and one registry.

Dependency-free (no prometheus client in the image) but shaped like
one: a :class:`Counter` only goes up, a :class:`Gauge` is a
point-in-time value, and a :class:`Histogram` is fixed-bucket with
pessimistic quantile estimation.

All primitives are thread-safe: the control-plane compiler increments
counters and observes latencies from executor worker threads
concurrently with the event loop serving ``stats``, and an unguarded
``+=`` loses updates under that interleaving.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS"]


class Counter:
    """A monotonically increasing event count (thread-safe)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (e.g. the current reconfiguration epoch)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)


#: Default latency buckets (seconds): ~100us .. ~10s, log-spaced.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """A fixed-bucket latency histogram with quantile estimation.

    ``observe`` is O(log buckets); quantiles are estimated from the
    bucket counts (upper bound of the containing bucket — pessimistic,
    which is the right bias for an SLO readout).  ``observe`` is
    thread-safe (compile latencies arrive from worker threads).
    """

    __slots__ = (
        "buckets", "counts", "overflow", "total", "sum", "max", "_lock",
    )

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError("buckets must be a nonempty ascending sequence")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * len(self.buckets)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError("latencies cannot be negative")
        i = bisect.bisect_left(self.buckets, seconds)
        with self._lock:
            if i >= len(self.buckets):
                self.overflow += 1
            else:
                self.counts[i] += 1
            self.total += 1
            self.sum += seconds
            self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (upper bucket bound); 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for bound, count in zip(self.buckets, self.counts):
            seen += count
            if seen >= rank:
                return bound
        return self.max

    def snapshot(self, redact_timings: bool = False) -> Dict[str, Any]:
        """JSON-able readout; ``redact_timings`` zeroes every
        duration-valued field (the counts stay) so two seeded runs can
        be diffed byte for byte."""
        if redact_timings:
            return {
                "count": self.total,
                "max_s": 0.0,
                "mean_s": 0.0,
                "overflow": self.overflow,
                "p50_s": 0.0,
                "p95_s": 0.0,
                "p99_s": 0.0,
            }
        return {
            "count": self.total,
            "max_s": round(self.max, 6),
            "mean_s": round(self.mean, 6),
            "overflow": self.overflow,
            "p50_s": round(self.quantile(0.50), 6),
            "p95_s": round(self.quantile(0.95), 6),
            "p99_s": round(self.quantile(0.99), 6),
        }
