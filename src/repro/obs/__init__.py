"""Unified observability for the lamb pipeline and its runtime layers.

The paper's headline complexity claim — ``Lamb1`` runs in
O(k d^3 f^3 + |Λ|) *independent of mesh size N* (Theorem 6.8) — and
the ROADMAP's production north star both need the same substrate: the
ability to answer "where did the time/cycles go, and what failed?".
This package is that substrate:

- :mod:`repro.obs.metrics` — thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` primitives (promoted from the
  PR-4 control plane so every layer shares one implementation);
- :mod:`repro.obs.registry` — the :class:`TelemetryRegistry`:
  contextvar-scoped :meth:`~TelemetryRegistry.span` timers with
  seeded-deterministic ids, labelled counters/gauges/histograms, a
  capped structured event log, and a threshold-gated slow-op log;
- :mod:`repro.obs.exporters` — Prometheus text exposition, NDJSON
  event log, and JSON snapshot renderers (``redact_timings`` makes
  seeded runs byte-identical for determinism diffs);
- :mod:`repro.obs.smoke` — the seeded end-to-end scenario behind
  ``repro stats`` and ``make obs-smoke``.

Instrumented layers (they call :func:`get_registry` at call time, so
:func:`use_registry` scopes a test or a CLI run):

- :func:`repro.core.find_lamb_set` — spans per pipeline phase
  (``lamb.partition`` = Find-SES/DES-Partition, ``lamb.reachability``
  = the boolean matrix products, ``lamb.wvc`` = the vertex-cover
  reduction);
- :class:`repro.wormhole.WormholeSimulator` — per-run cycle / stall /
  park / wake / abort / retry counters;
- :class:`repro.service.ServiceMetrics` — the control-plane metrics,
  now allocated through a registry;
- :class:`repro.experiments.parallel.TrialEngine` — per-chunk wall
  times.

See ``docs/observability.md`` for the full API and the phase-timing
glossary keyed to the paper's algorithm names.
"""

from .exporters import (
    events_to_ndjson,
    export_all,
    snapshot_to_json,
    to_prometheus,
)
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram
from .registry import (
    Span,
    TelemetryRegistry,
    get_registry,
    set_registry,
    use_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Span",
    "TelemetryRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "to_prometheus",
    "events_to_ndjson",
    "snapshot_to_json",
    "export_all",
    "run_telemetry_smoke",
]


def __getattr__(name: str) -> object:
    # The smoke pulls in the simulator and the service compiler;
    # import lazily so ``import repro.obs`` stays light.
    if name == "run_telemetry_smoke":
        from .smoke import run_telemetry_smoke

        return run_telemetry_smoke
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
