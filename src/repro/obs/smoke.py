"""The seeded end-to-end telemetry smoke: one scenario, every layer.

:func:`run_telemetry_smoke` exercises each instrumented layer once,
into one registry, fully seeded:

1. the lamb pipeline on the paper's 12x12 worked example (three
   phase spans + run counters),
2. a wormhole simulation with a mid-run endpoint fault (cycle /
   stall / park / wake / abort / retry counters — the frontier
   engine by default, so the park/wake machinery is exercised),
3. the control-plane compiler: a cache miss, a ``current`` cache
   hit, and an incremental delta, with its :class:`ServiceMetrics`
   fronting the same registry,
4. a tiny :class:`~repro.experiments.parallel.TrialEngine` sweep
   (chunk wall-time histogram).

This is the scenario behind ``repro stats`` and ``make obs-smoke``;
the latter runs it twice with ``redact_timings`` and diffs the
exports byte for byte (everything except wall-clock durations is a
pure function of the seed).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .registry import TelemetryRegistry, use_registry

__all__ = ["run_telemetry_smoke", "WORKED_EXAMPLE_FAULTS"]

#: The paper's worked-example fault set on the 12x12 mesh.
WORKED_EXAMPLE_FAULTS = ((9, 1), (11, 6), (10, 10))


def _trial_worker(payload: Dict[str, int], t: int) -> int:
    return payload["base"] + t  # pragma: no cover - trivial


def run_telemetry_smoke(
    seed: int = 0,
    registry: Optional[TelemetryRegistry] = None,
    messages: int = 60,
    sim_engine: str = "frontier",
) -> TelemetryRegistry:
    """Run the seeded smoke scenario; returns the registry it filled.

    Deterministic modulo wall-clock durations: two runs with the same
    ``seed`` produce byte-identical redacted exports
    (``redact_timings=True``).
    """
    from ..core import find_lamb_set
    from ..mesh.faults import FaultSet
    from ..mesh.geometry import Mesh
    from ..routing.ordering import repeated, xy
    from ..service.compiler import ReconfigurationCompiler
    from ..service.metrics import ServiceMetrics
    from ..wormhole import WormholeSimulator, uniform_random_traffic
    from ..experiments.parallel import TrialEngine

    reg = TelemetryRegistry() if registry is None else registry
    with use_registry(reg):
        mesh = Mesh((12, 12))
        orderings = repeated(xy(), 2)
        faults = FaultSet(mesh, WORKED_EXAMPLE_FAULTS)

        # 1. Lamb pipeline: partition / reachability / WVC spans.
        find_lamb_set(faults, orderings)

        # 2. Wormhole simulation with a mid-run endpoint fault.
        sim = WormholeSimulator(
            faults, orderings, seed=seed, engine=sim_engine
        )
        rng = np.random.default_rng(seed)
        endpoints = faults.good_nodes()
        injections = list(
            uniform_random_traffic(
                endpoints, messages, rng, num_flits=4, inject_window=40
            )
        )
        for inj in injections:
            sim.send(inj.source, inj.dest, inj.num_flits, inj.inject_cycle)
        for _ in range(25):
            sim.step()
        # Kill the destination of the latest-injected message: a
        # guaranteed endpoint-failed abort plus torn-out reroutes.
        victim = max(injections, key=lambda i: i.inject_cycle).dest
        sim.inject_faults(node_faults=[victim])
        sim.run()

        # 3. Control plane: miss -> current-hit -> incremental delta.
        compiler = ReconfigurationCompiler(
            mesh, orderings, metrics=ServiceMetrics(registry=reg)
        )
        compiler.compile(faults)          # cache miss (fresh compile)
        compiler.compile(faults)          # 'current' cache hit
        compiler.apply_delta(node_faults=[victim])  # incremental
        art = compiler.current
        assert art is not None
        survivors = [
            v
            for v in mesh.nodes()
            if not art.result.faults.node_is_faulty(v)
            and v not in art.result.lambs
        ]
        compiler.route(survivors[0], survivors[-1])

        # 4. Trial engine: chunk wall-time histogram (serial: the
        # smoke must not fork).
        with TrialEngine(jobs=1) as engine:
            engine.run_trials(_trial_worker, 8, {"base": seed})
    return reg
