"""The unified telemetry registry: spans, counters, gauges, histograms.

One :class:`TelemetryRegistry` holds everything a process measures
about itself.  Library layers grab the ambient registry at *call* time
(:func:`get_registry`) and record into it:

- the lamb pipeline wraps its three phases (Find-SES-Partition,
  Find-Reachability, WVC) in :meth:`TelemetryRegistry.span`;
- the wormhole simulator publishes per-run counters (cycles, stall
  cycles, park/wake events on the frontier engine, aborts by reason,
  retries);
- the control plane's :class:`repro.service.metrics.ServiceMetrics`
  allocates its counters/histograms *through* a registry;
- the trial engine observes per-chunk wall times.

Design constraints
------------------
*Low overhead*: a span costs two ``perf_counter`` calls, one contextvar
set/reset, and one appended event; a counter bump is a dict lookup
plus a lock.  Nothing in the per-cycle simulator hot loop touches the
registry — the simulator aggregates plain ints and publishes deltas
once per ``run()``.

*Deterministic identity*: span ids are **seeded-deterministic** — they
derive from ``blake2b(name : sequence-number)``, not from a clock or a
PRNG, so two runs of the same seeded workload produce byte-identical
event streams once duration fields are redacted
(``snapshot(redact_timings=True)``; ``make obs-smoke`` pins this).

*Thread safety*: all mutation goes through one re-entrant lock; the
contextvar scoping means spans opened on different threads (or asyncio
tasks) nest independently and never see each other as parents.

*Bounded memory*: the event log is capped (``max_events``); past the
cap events are counted in ``events_dropped`` instead of appended —
the same contract as the simulator's :class:`repro.wormhole.Tracer`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import Counter, Gauge, Histogram

__all__ = [
    "Span",
    "TelemetryRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: The innermost open span of the current thread/task (contextvar, so
#: worker threads and asyncio tasks nest independently).
_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Label key/value pairs in canonical (sorted) order.
LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, items: LabelItems) -> str:
    """Canonical ``name{k="v",...}`` identity (Prometheus exposition
    syntax, also used as the JSON snapshot key)."""
    if not items:
        return name
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return f"{name}{{{body}}}"


class Span:
    """One timed, named region (context manager).

    Created via :meth:`TelemetryRegistry.span`.  After ``__exit__``,
    :attr:`seconds` holds the measured wall time — callers that also
    want the number (e.g. ``find_lamb_set``'s ``timings`` dict) read
    it instead of timing twice.
    """

    __slots__ = (
        "registry", "name", "attrs", "span_id", "parent_id", "depth",
        "seconds", "_start", "_token",
    )

    def __init__(
        self, registry: "TelemetryRegistry", name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.registry = registry
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.depth = 0
        self.seconds = 0.0
        self._start = 0.0
        self._token: Any = None

    def __enter__(self) -> "Span":
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        self.span_id = self.registry._allocate_span_id(self.name)
        self._token = _CURRENT_SPAN.set(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.seconds = time.perf_counter() - self._start
        _CURRENT_SPAN.reset(self._token)
        self.registry._finish_span(self)


class TelemetryRegistry:
    """Everything one process measures about itself.

    Parameters
    ----------
    max_events:
        Event-log capacity; events past it are dropped (counted in
        :attr:`events_dropped`), never silently lost.
    slow_op_seconds:
        Default threshold for :meth:`slow_op` when the caller does not
        pass one.
    """

    def __init__(
        self, max_events: int = 200_000, slow_op_seconds: float = 1.0
    ) -> None:
        self.max_events = int(max_events)
        self.slow_op_seconds = float(slow_op_seconds)
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._events: List[Dict[str, Any]] = []
        self.events_dropped = 0
        self._seq = 0

    # ------------------------------------------------------------------
    # Metric accessors (create on first use, shared thereafter)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        """The (shared) counter ``name{labels}``."""
        key = _render_key(name, _label_items(labels))
        with self._lock:
            c = self._counters.get(key)
            if c is None:
                c = self._counters[key] = Counter()
            return c

    def gauge(self, name: str, value: Optional[float] = None,
              **labels: Any) -> Gauge:
        """The (shared) gauge ``name{labels}``; ``value`` sets it."""
        key = _render_key(name, _label_items(labels))
        with self._lock:
            g = self._gauges.get(key)
            if g is None:
                g = self._gauges[key] = Gauge()
            if value is not None:
                g.set(value)
            return g

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The (shared) histogram ``name{labels}``."""
        key = _render_key(name, _label_items(labels))
        with self._lock:
            h = self._histograms.get(key)
            if h is None:
                h = self._histograms[key] = Histogram()
            return h

    def inc(self, name: str, n: int = 1, **labels: Any) -> None:
        """Bump the counter ``name{labels}`` by ``n``."""
        self.counter(name, **labels).inc(n)

    def observe(self, name: str, seconds: float, **labels: Any) -> None:
        """Record ``seconds`` into the histogram ``name{labels}``."""
        self.histogram(name, **labels).observe(seconds)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A timed region: ``with reg.span("lamb.partition"): ...``.

        Nesting is tracked through a contextvar, so spans opened inside
        the ``with`` body (same thread/task) record this span as their
        parent.  On exit the duration lands in the
        ``span_seconds{span=name}`` histogram, ``spans_total{span=name}``
        is bumped, and a ``span`` event is appended.
        """
        return Span(self, name, attrs)

    def _allocate_span_id(self, name: str) -> str:
        """Seeded-deterministic id: a digest of (name, sequence)."""
        with self._lock:
            self._seq += 1
            n = self._seq
        return hashlib.blake2b(
            f"{name}:{n}".encode("utf-8"), digest_size=6
        ).hexdigest()

    def _finish_span(self, span: Span) -> None:
        self.observe("span_seconds", span.seconds, span=span.name)
        self.inc("spans_total", span=span.name)
        fields: Dict[str, Any] = {
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "s": round(span.seconds, 9),
        }
        for k in sorted(span.attrs):
            fields[f"attr_{k}"] = span.attrs[k]
        self.event("span", **fields)

    # ------------------------------------------------------------------
    # Event log (NDJSON)
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        """Append one structured event to the (capped) log."""
        with self._lock:
            if len(self._events) >= self.max_events:
                self.events_dropped += 1
                return
            self._seq += 1
            record: Dict[str, Any] = {"seq": self._seq, "kind": kind}
            record.update(fields)
            self._events.append(record)

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot copy of the event log."""
        with self._lock:
            return list(self._events)

    def histograms(self) -> Dict[str, Histogram]:
        """The live histograms, keyed by rendered name, in sorted
        order (exporters walk the buckets directly)."""
        with self._lock:
            return dict(sorted(self._histograms.items()))

    # ------------------------------------------------------------------
    # Slow-op log
    # ------------------------------------------------------------------
    def slow_op(
        self,
        op: str,
        seconds: float,
        threshold: Optional[float] = None,
        **fields: Any,
    ) -> bool:
        """Record ``op`` took ``seconds``; log it as slow past the
        threshold.

        Always observes ``op_seconds{op=...}``.  When ``seconds``
        meets ``threshold`` (default: the registry's
        ``slow_op_seconds``), additionally bumps
        ``slow_ops_total{op=...}`` and appends a ``slow_op`` event
        carrying the threshold and any extra fields.  Returns whether
        the op was logged as slow.
        """
        limit = self.slow_op_seconds if threshold is None else float(threshold)
        self.observe("op_seconds", seconds, op=op)
        if seconds < limit:
            return False
        self.inc("slow_ops_total", op=op)
        self.event(
            "slow_op", op=op, s=round(seconds, 9),
            threshold_s=limit, **fields,
        )
        return True

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    def snapshot(self, redact_timings: bool = False) -> Dict[str, Any]:
        """Deterministic JSON-able readout of every metric.

        ``redact_timings`` zeroes duration-valued fields (histogram
        sums/quantiles) while keeping all counts — byte-identical
        across two runs of the same seeded workload.
        """
        with self._lock:
            counters = {k: c.value for k, c in sorted(self._counters.items())}
            gauges = {k: g.value for k, g in sorted(self._gauges.items())}
            histograms = {
                k: h.snapshot(redact_timings=redact_timings)
                for k, h in sorted(self._histograms.items())
            }
            return {
                "counters": counters,
                "events": {
                    "dropped": self.events_dropped,
                    "recorded": len(self._events),
                },
                "gauges": gauges,
                "histograms": histograms,
            }

    def reset(self) -> None:
        """Drop every metric and event (tests; idempotent)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._events.clear()
            self.events_dropped = 0
            self._seq = 0


# ----------------------------------------------------------------------
# Ambient registry
# ----------------------------------------------------------------------
_global_registry = TelemetryRegistry()


def get_registry() -> TelemetryRegistry:
    """The ambient process-wide registry (what the instrumented layers
    record into when no explicit registry is supplied)."""
    return _global_registry


def set_registry(registry: TelemetryRegistry) -> TelemetryRegistry:
    """Install ``registry`` as the ambient one; returns the previous."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


@contextmanager
def use_registry(
    registry: Optional[TelemetryRegistry] = None,
) -> Iterator[TelemetryRegistry]:
    """Temporarily install a (fresh, by default) ambient registry —
    the test/smoke isolation primitive."""
    reg = TelemetryRegistry() if registry is None else registry
    previous = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(previous)
