"""Analytic latency models: wormhole vs store-and-forward.

The reason the paper's machines use wormhole switching at all
(Section 1, [8]): an uncontended wormhole message of ``L`` flits over
``h`` hops takes ``h + L - 1`` cycles (the head pipeline fills, then
one flit drains per cycle), while store-and-forward pays ``h * L``.
These closed forms are validated against the flit-level simulator in
the tests, and quantify what the 2-round lamb detour costs: the extra
hops of an intermediate-node route add cycles *additively*, not
multiplicatively.
"""

from __future__ import annotations

from typing import Sequence

from ..mesh.geometry import Mesh

__all__ = [
    "wormhole_latency",
    "store_and_forward_latency",
    "two_round_detour_overhead",
]


def wormhole_latency(hops: int, flits: int) -> int:
    """Uncontended wormhole latency: ``hops + flits - 1`` cycles."""
    if hops < 0 or flits < 1:
        raise ValueError("need hops >= 0 and flits >= 1")
    if hops == 0:
        return 0
    return hops + flits - 1


def store_and_forward_latency(hops: int, flits: int) -> int:
    """Uncontended store-and-forward latency: ``hops * flits``."""
    if hops < 0 or flits < 1:
        raise ValueError("need hops >= 0 and flits >= 1")
    return hops * flits


def two_round_detour_overhead(
    mesh: Mesh,
    src: Sequence[int],
    dst: Sequence[int],
    intermediate: Sequence[int],
    flits: int,
) -> int:
    """Extra wormhole cycles a 2-round route through ``intermediate``
    costs over the direct route — purely the extra hops, because
    wormhole latency is additive in distance.

    A minimal intermediate (one on an L1 geodesic) costs zero extra
    cycles; the 'shortest' route policy aims for exactly that.
    """
    direct = mesh.l1_distance(src, dst)
    detour = mesh.l1_distance(src, intermediate) + mesh.l1_distance(
        intermediate, dst
    )
    return wormhole_latency(detour, flits) - wormhole_latency(direct, flits)
