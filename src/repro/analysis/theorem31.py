"""The Theorem 3.1 proof apparatus, executable (Appendix).

The lower-bound proof for one-round routing constructs, for each fault
``u = (x0, y0, z0)`` on ``M_3(n)``, two node sets

- ``A(u) = { (x, y, z0) : any x, y <= y0, y < (n-1)/2 }``
- ``B(u) = { (x0, y, z) : any z, y >= y0, y > (n-1)/2 }``

and argues: (1) size bounds, (2) pairwise disjointness across faults
with distinct x and z, and (3) every lamb set must contain all good
nodes of ``A(u)`` or all of ``B(u)`` — because the unique XYZ route
from any ``v`` in ``A(u)`` to any ``w`` in ``B(u)`` passes through the
fault ``u`` itself.

This module implements the sets and the properties so the proof's
combinatorial core is machine-checked (see tests), and provides a
simulation of the resulting lower bound to compare with the closed
form of :func:`repro.core.one_round_expected_lamb_lower_bound`.
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np

from ..mesh.geometry import Node

__all__ = [
    "set_A",
    "set_B",
    "disjointness_holds",
    "route_hits_fault",
    "simulated_one_round_lower_bound",
]


def set_A(n: int, u: Sequence[int]) -> Set[Node]:
    """The set ``A(u)`` of the Theorem 3.1 proof."""
    x0, y0, z0 = (int(c) for c in u)
    half = (n - 1) / 2
    return {
        (x, y, z0)
        for x in range(n)
        for y in range(n)
        if y <= y0 and y < half
    }


def set_B(n: int, u: Sequence[int]) -> Set[Node]:
    """The set ``B(u)`` of the Theorem 3.1 proof."""
    x0, y0, z0 = (int(c) for c in u)
    half = (n - 1) / 2
    return {
        (x0, y, z)
        for z in range(n)
        for y in range(n)
        if y >= y0 and y > half
    }


def disjointness_holds(n: int, u: Sequence[int], u2: Sequence[int]) -> bool:
    """Property 2: for faults with distinct x AND distinct z
    coordinates, A(u), B(u), A(u'), B(u') are pairwise disjoint."""
    sets = [set_A(n, u), set_B(n, u), set_A(n, u2), set_B(n, u2)]
    for i in range(4):
        for j in range(i + 1, 4):
            if sets[i] & sets[j]:
                return False
    return True


def route_hits_fault(u: Sequence[int], v: Sequence[int], w: Sequence[int]) -> bool:
    """Property 3's core: the XYZ route from ``v ∈ A(u)`` to
    ``w ∈ B(u)`` passes through ``u``.

    (Follows the Appendix argument: ``z_v = z0``, ``x_w = x0`` and
    ``y_v <= y0 <= y_w``, so the Y segment at ``(x0, *, z0)`` crosses
    ``(x0, y0, z0)``.)
    """
    x0, y0, z0 = (int(c) for c in u)
    xv, yv, zv = (int(c) for c in v)
    xw, yw, zw = (int(c) for c in w)
    # Walk the XYZ route segment structure symbolically.
    # X segment: (xv..xw, yv, zv); Y segment: (xw, yv..yw, zv);
    # Z segment: (xw, yw, zv..zw).
    def seg_contains(a: int, b: int, c: int) -> bool:
        return min(a, b) <= c <= max(a, b)

    if yv == y0 and zv == z0 and seg_contains(xv, xw, x0):
        return True
    if xw == x0 and zv == z0 and seg_contains(yv, yw, y0):
        return True
    if xw == x0 and yw == y0 and seg_contains(zv, zw, z0):
        return True
    return False


def simulated_one_round_lower_bound(
    n: int, f: int, trials: int, seed: int = 0
) -> float:
    """Monte-Carlo version of the Theorem 3.1 bound.

    Replays the Appendix's random process: draw ``f`` faults with
    replacement, keep those whose x and z coordinates are fresh, and
    charge ``min(|A|, |B|)`` sacrificed nodes for each kept fault
    (property 3 forces one side into the lamb set).  Returns the
    average total over trials — a valid lower bound on the expected
    optimal one-round lamb-set size, typically sharper than the
    closed form.
    """
    rng = np.random.default_rng(seed)
    half = (n - 1) / 2
    totals = []
    for _ in range(trials):
        xs: Set[int] = set()
        zs: Set[int] = set()
        total = 0
        coords = rng.integers(0, n, size=(f, 3))
        for (x, y, z) in coords:
            x, y, z = int(x), int(y), int(z)
            if x in xs or z in zs:
                continue
            xs.add(x)
            zs.add(z)
            size_a = n * sum(1 for yy in range(n) if yy <= y and yy < half)
            size_b = n * sum(1 for yy in range(n) if yy >= y and yy > half)
            # min(|A|,|B|) good nodes must be sacrificed; subtract the
            # (at most f) faulty nodes that may fall inside, as the
            # proof does with its "- f" slack.
            total += min(size_a, size_b)
        totals.append(max(0, total - f))
    return float(np.mean(totals))
