"""Analytic models: blocking probabilities and executable proofs."""

from .availability import (
    capacity_from_events,
    capacity_timeline,
    effective_utilization,
    young_interval,
)
from .blocking import (
    expected_one_round_reachable_fraction,
    expected_pair_survival,
    expected_route_length,
    route_survival_probability,
)
from .latency_models import (
    store_and_forward_latency,
    two_round_detour_overhead,
    wormhole_latency,
)
from .theorem31 import (
    disjointness_holds,
    route_hits_fault,
    set_A,
    set_B,
    simulated_one_round_lower_bound,
)

__all__ = [
    "route_survival_probability",
    "expected_one_round_reachable_fraction",
    "expected_pair_survival",
    "expected_route_length",
    "set_A",
    "set_B",
    "disjointness_holds",
    "route_hits_fault",
    "simulated_one_round_lower_bound",
    "wormhole_latency",
    "store_and_forward_latency",
    "two_round_detour_overhead",
    "young_interval",
    "effective_utilization",
    "capacity_timeline",
    "capacity_from_events",
]
