"""Machine availability under the roll-back / reconfigure regime.

The paper situates the lamb technique inside a checkpoint-rollback
loop (Section 1): faults arrive, the system rolls back to the last
checkpoint, recomputes the lamb set, and resumes.  This model
quantifies what that loop delivers:

- :func:`young_interval` — the classic optimal checkpoint interval
  ``sqrt(2 * checkpoint_cost * MTBF)`` (Young's approximation);
- :func:`effective_utilization` — the fraction of wall-clock spent on
  useful work given checkpoint cost, rework after rollback, and the
  reconfiguration (lamb recomputation) cost;
- :func:`capacity_timeline` — expected usable-node fraction over time
  as faults accumulate and lambs are re-chosen, combining a Poisson
  fault process with measured lamb-per-fault ratios (e.g. Fig. 19's
  additional damage);
- :func:`capacity_from_events` — the same usable-fraction curve from
  an *observed* event list (e.g. a sampled
  :class:`~repro.reliability.FaultTimeline`) instead of the
  first-moment Poisson model.

For sampled (rather than expected-value) reliability, see
:mod:`repro.reliability`.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = [
    "young_interval",
    "effective_utilization",
    "capacity_timeline",
    "capacity_from_events",
]


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's optimal checkpoint interval ``sqrt(2 C M)``.

    ``checkpoint_cost`` and ``mtbf`` in the same time unit; the
    approximation assumes checkpoints are cheap relative to failures,
    so ``checkpoint_cost < mtbf / 2`` is enforced (past that point the
    'optimal' interval is shorter than two checkpoints and the model
    is meaningless).
    """
    if checkpoint_cost <= 0 or mtbf <= 0:
        raise ValueError(
            f"costs must be positive, got checkpoint_cost="
            f"{checkpoint_cost}, mtbf={mtbf}"
        )
    if not checkpoint_cost < mtbf / 2.0:
        raise ValueError(
            f"Young's approximation needs checkpoint_cost < mtbf/2 "
            f"(got {checkpoint_cost} >= {mtbf / 2.0})"
        )
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def effective_utilization(
    checkpoint_cost: float,
    mtbf: float,
    reconfigure_cost: float = 0.0,
    interval: float = 0.0,
) -> float:
    """Fraction of time doing useful work.

    Per interval ``T``: pay ``C`` to checkpoint; on failure (rate
    1/MTBF) lose on average ``T/2`` of rework plus the reconfiguration
    cost ``R`` (the lamb recomputation — milliseconds-to-seconds per
    Fig. 26, usually negligible next to rollback).  Utilization =
    ``(T/(T+C)) * (1 - (T/2 + R)/MTBF)``, with ``T`` defaulting to
    Young's interval.
    """
    if interval <= 0.0:
        interval = young_interval(checkpoint_cost, mtbf)
    useful = interval / (interval + checkpoint_cost)
    loss = (interval / 2.0 + reconfigure_cost) / mtbf
    return max(0.0, useful * (1.0 - min(1.0, loss)))


def capacity_timeline(
    num_nodes: int,
    fault_rate: float,
    horizon: float,
    steps: int,
    lamb_per_fault: float,
) -> List[Tuple[float, float]]:
    """Expected usable-node fraction over time.

    Faults arrive Poisson at ``fault_rate`` per time unit; each fault
    additionally costs ``lamb_per_fault`` sacrificed good nodes (the
    'additional damage' ratio — ~0.07 for M3(32) at 3%, Fig. 19).
    Returns ``(time, expected_usable_fraction)`` samples; purely the
    first-moment model, suitable for planning rather than simulation.
    """
    if num_nodes < 1 or fault_rate < 0 or horizon <= 0 or steps < 1:
        raise ValueError("bad parameters")
    if lamb_per_fault < 0:
        raise ValueError("lamb_per_fault must be nonnegative")
    out = []
    for i in range(steps + 1):
        t = horizon * i / steps
        expected_faults = fault_rate * t
        lost = expected_faults * (1.0 + lamb_per_fault)
        usable = max(0.0, (num_nodes - lost) / num_nodes)
        out.append((t, usable))
    return out


def capacity_from_events(
    num_nodes: int,
    events: Sequence[Tuple[float, int]],
    lamb_per_fault: float = 0.0,
) -> List[Tuple[float, float]]:
    """Usable-node fraction from an observed fault-event list.

    ``events`` is a time-sorted sequence of ``(time, delta)`` pairs:
    ``delta > 0`` nodes lost at ``time`` (a fault), ``delta < 0``
    nodes returned (a repair).  Each *lost* node additionally costs
    ``lamb_per_fault`` sacrificed good nodes, and repairs give the
    same share back.  Returns ``(time, usable_fraction)`` samples —
    one leading ``(t0, 1.0)``-style baseline sample at the first event
    time reflecting the state *after* it, with the fraction clamped to
    ``[0, 1]``.

    Typed validation instead of silent nonsense: an empty event list,
    an unsorted one, or a negative timestamp is a ``ValueError`` (an
    unsorted list would silently produce a non-monotone time axis and
    corrupt any downstream integration).
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if lamb_per_fault < 0:
        raise ValueError(
            f"lamb_per_fault must be nonnegative, got {lamb_per_fault}"
        )
    if not events:
        raise ValueError(
            "events must be a non-empty [(time, delta), ...] list"
        )
    times = [float(t) for t, _ in events]
    if times[0] < 0.0:
        raise ValueError(f"event times cannot be negative: {times[0]}")
    if any(b < a for a, b in zip(times, times[1:])):
        raise ValueError(
            "events must be sorted by time (got a decreasing timestamp); "
            "sort the list before calling"
        )
    out: List[Tuple[float, float]] = []
    lost = 0.0
    for (_, delta), t in zip(events, times):
        lost += float(delta) * (1.0 + lamb_per_fault)
        usable = min(1.0, max(0.0, (num_nodes - lost) / num_nodes))
        out.append((t, usable))
    return out
