"""Machine availability under the roll-back / reconfigure regime.

The paper situates the lamb technique inside a checkpoint-rollback
loop (Section 1): faults arrive, the system rolls back to the last
checkpoint, recomputes the lamb set, and resumes.  This model
quantifies what that loop delivers:

- :func:`young_interval` — the classic optimal checkpoint interval
  ``sqrt(2 * checkpoint_cost * MTBF)`` (Young's approximation);
- :func:`effective_utilization` — the fraction of wall-clock spent on
  useful work given checkpoint cost, rework after rollback, and the
  reconfiguration (lamb recomputation) cost;
- :func:`capacity_timeline` — expected usable-node fraction over time
  as faults accumulate and lambs are re-chosen, combining a Poisson
  fault process with measured lamb-per-fault ratios (e.g. Fig. 19's
  additional damage).
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = [
    "young_interval",
    "effective_utilization",
    "capacity_timeline",
]


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's optimal checkpoint interval ``sqrt(2 C M)``.

    ``checkpoint_cost`` and ``mtbf`` in the same time unit; requires
    ``checkpoint_cost < mtbf / 2`` for the approximation to be sane
    (checked loosely).
    """
    if checkpoint_cost <= 0 or mtbf <= 0:
        raise ValueError("costs must be positive")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def effective_utilization(
    checkpoint_cost: float,
    mtbf: float,
    reconfigure_cost: float = 0.0,
    interval: float = 0.0,
) -> float:
    """Fraction of time doing useful work.

    Per interval ``T``: pay ``C`` to checkpoint; on failure (rate
    1/MTBF) lose on average ``T/2`` of rework plus the reconfiguration
    cost ``R`` (the lamb recomputation — milliseconds-to-seconds per
    Fig. 26, usually negligible next to rollback).  Utilization =
    ``(T/(T+C)) * (1 - (T/2 + R)/MTBF)``, with ``T`` defaulting to
    Young's interval.
    """
    if interval <= 0.0:
        interval = young_interval(checkpoint_cost, mtbf)
    useful = interval / (interval + checkpoint_cost)
    loss = (interval / 2.0 + reconfigure_cost) / mtbf
    return max(0.0, useful * (1.0 - min(1.0, loss)))


def capacity_timeline(
    num_nodes: int,
    fault_rate: float,
    horizon: float,
    steps: int,
    lamb_per_fault: float,
) -> List[Tuple[float, float]]:
    """Expected usable-node fraction over time.

    Faults arrive Poisson at ``fault_rate`` per time unit; each fault
    additionally costs ``lamb_per_fault`` sacrificed good nodes (the
    'additional damage' ratio — ~0.07 for M3(32) at 3%, Fig. 19).
    Returns ``(time, expected_usable_fraction)`` samples; purely the
    first-moment model, suitable for planning rather than simulation.
    """
    if num_nodes < 1 or fault_rate < 0 or horizon <= 0 or steps < 1:
        raise ValueError("bad parameters")
    if lamb_per_fault < 0:
        raise ValueError("lamb_per_fault must be nonnegative")
    out = []
    for i in range(steps + 1):
        t = horizon * i / steps
        expected_faults = fault_rate * t
        lost = expected_faults * (1.0 + lamb_per_fault)
        usable = max(0.0, (num_nodes - lost) / num_nodes)
        out.append((t, usable))
    return out
