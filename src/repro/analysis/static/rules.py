"""Domain lint rules (AST-based).

Each rule targets a hazard class that has actually bitten (or could
bite) this codebase's determinism and parallel-safety guarantees:

======  ==============================================================
REP101  Unseeded randomness: stdlib ``random`` or ``np.random``
        module-level draws, ``default_rng()`` with no seed, and
        ``np.random.seed`` global-state mutation.
REP102  Hash-order-dependent iteration: iterating (or materializing)
        a ``set``/``frozenset`` without ``sorted(...)``.  Set order
        depends on insertion history and — for str-keyed sets — on
        ``PYTHONHASHSEED``, so it must never reach a deterministic
        path (route cache, frontier worklist, stats aggregation).
REP103  Mutable default argument (``def f(x=[])``): shared across
        calls, a classic aliasing bug.
REP104  Bare ``except:``: swallows ``KeyboardInterrupt`` and
        ``SystemExit`` and hides typed simulator failures.
REP105  Parallel-safety: a lambda or nested function passed as a
        worker to the trial engine (``run_trials`` / ``map_ordered``
        / ``submit``).  Workers must be picklable module-level
        functions; closures capture shared mutable state of the
        enclosing frame and either fail to pickle or silently fork
        divergent copies.
REP106  Wall-clock read inside a registered workflow step (a function
        decorated with ``register_step`` / ``<registry>.register``).
        The workflow runner content-addresses each step's output by
        its inputs and replays checkpoints on digest hits, so a step
        whose output embeds ``time.time()`` / ``datetime.now()``
        differs between an executed and a replayed run — breaking the
        straight-run-vs-resume byte-identity guarantee.  Timing
        belongs to the runner's telemetry span, not the step body.
======  ==============================================================

Suppression: append ``# noqa`` (all rules) or ``# noqa: REP102`` /
``# noqa: REP101,REP104`` to the flagged line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["Violation", "LintRule", "ALL_RULES", "rule_by_id"]


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where, which rule, and why."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class LintRule:
    """Base class: subclasses set ``id``/``name``/``description`` and
    implement :meth:`check`."""

    id: str = "REP000"
    name: str = "abstract"
    description: str = ""

    def check(self, tree: ast.AST, path: str) -> Iterator[Violation]:
        raise NotImplementedError

    def _v(self, path: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=message,
        )


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# REP101 — unseeded randomness
# ----------------------------------------------------------------------
_NPR_ALLOWED = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


class UnseededRandomRule(LintRule):
    id = "REP101"
    name = "unseeded-random"
    description = (
        "stdlib random / np.random module-level draws and unseeded "
        "default_rng() are irreproducible; thread a seeded "
        "np.random.Generator instead"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self._v(
                    path,
                    node,
                    "importing draw functions from stdlib random uses the "
                    "unseeded global RNG; use np.random.default_rng(seed)",
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(node, path)

    def _check_call(self, node: ast.Call, path: str) -> Iterator[Violation]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted == "default_rng" or dotted.endswith(".default_rng"):
            if not node.args and not node.keywords:
                yield self._v(
                    path,
                    node,
                    "default_rng() without a seed is irreproducible; pass "
                    "an explicit seed (or derived SeedSequence)",
                )
            return
        if dotted.startswith("random."):
            tail = dotted[len("random."):]
            if tail == "Random":
                if not node.args:
                    yield self._v(
                        path, node,
                        "random.Random() without a seed is irreproducible",
                    )
                return
            yield self._v(
                path,
                node,
                f"random.{tail}() draws from the process-global RNG; "
                "thread a seeded np.random.Generator instead",
            )
            return
        for prefix in ("np.random.", "numpy.random."):
            if dotted.startswith(prefix):
                tail = dotted[len(prefix):]
                if tail in _NPR_ALLOWED:
                    return
                if tail == "seed":
                    yield self._v(
                        path, node,
                        "np.random.seed mutates global RNG state; pass "
                        "seeded Generators explicitly",
                    )
                    return
                yield self._v(
                    path,
                    node,
                    f"{prefix}{tail}() uses numpy's legacy global RNG; "
                    "use a seeded np.random.Generator",
                )
                return


# ----------------------------------------------------------------------
# REP102 — hash-order-dependent iteration
# ----------------------------------------------------------------------
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}
#: Domain APIs documented to return sets.
_SET_RETURNING_APIS = {"owned_resources", "node_fault_indices"}
_MATERIALIZERS = {"list", "tuple", "enumerate", "iter", "next"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        if isinstance(node.func, ast.Attribute):
            return (
                node.func.attr in _SET_METHODS
                or node.func.attr in _SET_RETURNING_APIS
            )
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)

_SET_ANNOTATIONS = {"Set", "FrozenSet", "MutableSet", "set", "frozenset"}


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    name = _dotted(node) if node is not None else None
    if name is None:
        return False
    return name.rsplit(".", 1)[-1] in _SET_ANNOTATIONS


def _local_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """All AST nodes belonging to ``scope`` itself, stopping at nested
    scope boundaries (nested functions/classes are separate scopes)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _set_locals(scope: ast.AST) -> frozenset:
    """Local names whose every binding in ``scope`` is a set expression
    (or a ``Set[...]`` annotation).  Conservative: a name also bound to
    anything non-set — or rebound as a loop/with/arg target — does not
    qualify."""
    set_names: dict = {}

    def record(name: str, is_set: bool) -> None:
        set_names[name] = set_names.get(name, True) and is_set

    for node in _local_nodes(scope):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    record(tgt.id, _is_set_expr(node.value))
                else:
                    for leaf in ast.walk(tgt):
                        if isinstance(leaf, ast.Name):
                            record(leaf.id, False)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            is_set = _annotation_is_set(node.annotation) or (
                node.value is not None and _is_set_expr(node.value)
            )
            record(node.target.id, is_set)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            # ``s |= other`` keeps set-ness; anything else taints.
            if not isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
                record(node.target.id, False)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    record(leaf.id, False)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for leaf in ast.walk(node.optional_vars):
                if isinstance(leaf, ast.Name):
                    record(leaf.id, False)
    args = getattr(scope, "args", None)
    if args is not None:
        for a in (
            list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            set_names[a.arg] = False
    return frozenset(n for n, ok in set_names.items() if ok)


class HashOrderIterationRule(LintRule):
    id = "REP102"
    name = "hash-order-iteration"
    description = (
        "iterating a set is hash/insertion-order dependent; wrap in "
        "sorted(...) before the order can reach a deterministic path"
    )

    _MSG = (
        "iteration order of a set depends on insertion history and "
        "PYTHONHASHSEED; wrap in sorted(...) to pin it"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Violation]:
        scopes = [tree] + [
            n for n in ast.walk(tree) if isinstance(n, _SCOPE_NODES)
        ]
        for scope in scopes:
            yield from self._check_scope(scope, path)

    def _check_scope(self, scope: ast.AST, path: str) -> Iterator[Violation]:
        set_locals = _set_locals(scope)

        def setish(node: ast.AST) -> bool:
            if isinstance(node, ast.Name) and node.id in set_locals:
                return True
            return _is_set_expr(node)

        for node in _local_nodes(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if setish(node.iter):
                    yield self._v(path, node.iter, self._MSG)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if setish(gen.iter):
                        yield self._v(path, gen.iter, self._MSG)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _MATERIALIZERS
                    and node.args
                    and setish(node.args[0])
                ):
                    yield self._v(
                        path, node,
                        f"{node.func.id}() over a set materializes hash "
                        "order; use sorted(...)",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "pop"
                    and not node.args
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in set_locals
                ):
                    yield self._v(
                        path, node,
                        f"{node.func.value.id}.pop() removes a hash-order-"
                        "dependent element; iterate a deterministic order "
                        "instead",
                    )


# ----------------------------------------------------------------------
# REP103 — mutable default argument
# ----------------------------------------------------------------------
def _is_mutable_literal(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "bytearray"}
    return False


class MutableDefaultRule(LintRule):
    id = "REP103"
    name = "mutable-default"
    description = "mutable default argument is shared across calls"

    def check(self, tree: ast.AST, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + list(args.kw_defaults):
                if _is_mutable_literal(default):
                    yield self._v(
                        path, default,
                        "mutable default argument is created once and "
                        "shared across calls; use None and build inside",
                    )


# ----------------------------------------------------------------------
# REP104 — bare except
# ----------------------------------------------------------------------
class BareExceptRule(LintRule):
    id = "REP104"
    name = "bare-except"
    description = "bare except swallows SystemExit/KeyboardInterrupt"

    def check(self, tree: ast.AST, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self._v(
                    path, node,
                    "bare except catches SystemExit/KeyboardInterrupt and "
                    "hides typed simulator failures; name the exception",
                )


# ----------------------------------------------------------------------
# REP105 — parallel-safety of trial-engine workers
# ----------------------------------------------------------------------
#: Methods that ship their first argument to pool workers: the trial
#: engine's entry points plus the raw ``concurrent.futures`` executor
#: surface (``submit``/``map``) — a process-pool worker must pickle no
#: matter which layer hands it over.
_ENGINE_METHODS = {"run_trials", "map_ordered", "submit", "map"}


class ParallelClosureRule(LintRule):
    id = "REP105"
    name = "parallel-closure"
    description = (
        "worker passed to the trial engine or a pool executor must be "
        "a picklable module-level function, not a closure or lambda"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Violation]:
        yield from self._walk_scope(tree, path, nested_funcs=frozenset(),
                                    lambda_names=frozenset(),
                                    inside_function=False)

    @staticmethod
    def _lambda_bindings(body: Sequence[ast.AST]) -> frozenset:
        """Names bound to a lambda in this scope's direct statements.
        Unlike nested ``def``s, a lambda is unpicklable even at module
        level (pickle serializes functions by qualified name, and a
        lambda's ``<lambda>`` name never resolves), so these are
        collected in *every* scope."""
        names = set()
        for n in body:
            if isinstance(n, ast.Assign) and isinstance(n.value, ast.Lambda):
                for tgt in n.targets:
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
            elif (
                isinstance(n, ast.AnnAssign)
                and n.value is not None
                and isinstance(n.value, ast.Lambda)
                and isinstance(n.target, ast.Name)
            ):
                names.add(n.target.id)
        return frozenset(names)

    def _walk_scope(
        self,
        scope: ast.AST,
        path: str,
        nested_funcs: frozenset,
        lambda_names: frozenset,
        inside_function: bool,
    ) -> Iterator[Violation]:
        """Walk one lexical scope; recurse into function bodies with
        the accumulated set of function names that are *not*
        module-level (and therefore not picklable by reference), plus
        names bound to lambdas at any level."""
        body = getattr(scope, "body", [])
        local_defs = {
            n.name
            for n in body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if inside_function:
            nested_funcs = nested_funcs | frozenset(local_defs)
        lambda_names = lambda_names | self._lambda_bindings(body)
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk_scope(
                    node, path, nested_funcs, lambda_names,
                    inside_function=True,
                )
            elif isinstance(node, ast.ClassDef):
                yield from self._walk_scope(
                    node, path, nested_funcs, lambda_names, inside_function
                )
            else:
                yield from self._check_stmt(
                    node, path, nested_funcs, lambda_names
                )

    def _check_stmt(
        self,
        stmt: ast.AST,
        path: str,
        nested_funcs: frozenset,
        lambda_names: frozenset,
    ) -> Iterator[Violation]:
        for node in ast.walk(stmt):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ENGINE_METHODS
                    and node.args):
                continue
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                yield self._v(
                    path, worker,
                    f"lambda passed to {node.func.attr}() cannot be "
                    "pickled into worker processes; define a "
                    "module-level worker function",
                )
            elif isinstance(worker, ast.Name) and worker.id in nested_funcs:
                yield self._v(
                    path, worker,
                    f"nested function {worker.id!r} passed to "
                    f"{node.func.attr}() closes over the enclosing "
                    "frame's mutable state; hoist it to module level "
                    "and pass state via the payload",
                )
            elif isinstance(worker, ast.Name) and worker.id in lambda_names:
                yield self._v(
                    path, worker,
                    f"{worker.id!r} is bound to a lambda; pickle "
                    "serializes functions by qualified name, so it "
                    f"cannot reach {node.func.attr}() workers — define "
                    "a module-level def instead",
                )


# ----------------------------------------------------------------------
# REP106 — wall-clock reads inside registered workflow steps
# ----------------------------------------------------------------------
#: Direct wall/CPU-clock reads.  Any of these inside a step body makes
#: the output depend on *when* the step ran, which the content address
#: cannot see.
_WALLCLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
})


def _is_step_decorator(dec: ast.AST) -> bool:
    """``@register_step(...)`` or ``@<registry>.register(...)`` —
    the two spellings that enter a function into a step catalog."""
    target = dec.func if isinstance(dec, ast.Call) else dec
    dotted = _dotted(target)
    if dotted is None:
        return False
    tail = dotted.rsplit(".", 1)[-1]
    return tail == "register_step" or ("." in dotted and tail == "register")


class ImpureStepClockRule(LintRule):
    id = "REP106"
    name = "impure-step-clock"
    description = (
        "registered workflow steps are content-addressed by their "
        "inputs and replayed from checkpoints; a direct wall-clock "
        "read makes the output depend on when the step ran"
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(_is_step_decorator(d) for d in node.decorator_list):
                continue
            yield from self._check_step_body(node, path)

    def _check_step_body(
        self, func: ast.AST, path: str
    ) -> Iterator[Violation]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is not None and dotted in _WALLCLOCK_CALLS:
                yield self._v(
                    path, node,
                    f"{dotted}() inside a registered workflow step: the "
                    "runner content-addresses step outputs by their "
                    "inputs and replays checkpoints on digest hits, so "
                    "a wall-clock read breaks run-vs-resume "
                    "byte-identity; timing belongs to the runner's "
                    "telemetry span",
                )


ALL_RULES: Tuple[LintRule, ...] = (
    UnseededRandomRule(),
    HashOrderIterationRule(),
    MutableDefaultRule(),
    BareExceptRule(),
    ParallelClosureRule(),
    ImpureStepClockRule(),
)

#: The concurrency-soundness rule catalog (REP2xx).  These rules need
#: whole-program context (a call graph, lock identities, class models)
#: that the single-file :class:`LintRule` protocol cannot express, so
#: they are implemented by the interprocedural analyzer in
#: :mod:`repro.analysis.static.concurrency` — but they share this
#: module's id space, ``# noqa`` machinery, and finding shape.
CONCURRENCY_RULES: Tuple[Tuple[str, str, str], ...] = (
    (
        "REP201",
        "lock-order-cycle",
        "two code paths acquire the same locks in opposite orders; the "
        "analyzer emits the minimal acquisition cycle as a certificate",
    ),
    (
        "REP202",
        "async-blocking-call",
        "a blocking call (time.sleep, sync file/socket IO, subprocess, "
        "Lock.acquire) is reachable from an async def without an "
        "executor handoff; it stalls the whole event loop",
    ),
    (
        "REP203",
        "process-escape",
        "work submitted to a process executor captures unpicklable or "
        "shared-mutable state (locks, sockets, TelemetryRegistry, "
        "bound methods of lock-holding objects)",
    ),
    (
        "REP204",
        "lock-held-across-await",
        "an async def awaits while holding a threading lock; every "
        "other task (and thread) contending for the lock stalls for "
        "the full suspension",
    ),
    (
        "REP205",
        "unguarded-shared-write",
        "an attribute written under a lock elsewhere in the class is "
        "also written with no lock held; the unguarded write races",
    ),
)

#: Every rule id the suite can emit (``REP000`` = unparsable file).
#: ``# noqa: REPxxx`` pragmas naming ids outside this set are reported
#: as warnings by the lint engine — a typo'd pragma suppresses nothing
#: and should not pass silently.
KNOWN_RULE_IDS = frozenset(
    {"REP000"}
    | {rule.id for rule in ALL_RULES}
    | {rule_id for rule_id, _name, _desc in CONCURRENCY_RULES}
)


def rule_by_id(rule_id: str) -> LintRule:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(f"unknown lint rule {rule_id!r}")


def check_tree(
    tree: ast.AST, path: str, rules: Sequence[LintRule] = ALL_RULES
) -> List[Violation]:
    """Run ``rules`` over one parsed module (no suppression filtering —
    that is the engine's job, it needs the source lines)."""
    out: List[Violation] = []
    for rule in rules:
        out.extend(rule.check(tree, path))
    return out


# Names that tests import to seed violation fixtures.
SEEDED_FIXTURES = {
    "REP101": "import numpy as np\nx = np.random.rand(3)\n",
    "REP102": "out = [v for v in {1, 2, 3}]\n",
    "REP103": "def f(items=[]):\n    return items\n",
    "REP104": "try:\n    pass\nexcept:\n    pass\n",
    "REP105": (
        "def sweep(engine):\n"
        "    acc = []\n"
        "    def worker(payload, t):\n"
        "        acc.append(t)\n"
        "    return engine.run_trials(worker, 4, {})\n"
    ),
    "REP106": (
        "import time\n"
        "from repro.workflow import register_step\n"
        "@register_step('demo', 'a demo step')\n"
        "def demo(params, inputs):\n"
        "    return {'stamp': time.time()}\n"
    ),
}
