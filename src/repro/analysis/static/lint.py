"""The domain lint engine behind ``repro analyze`` and ``make lint``.

Parses each file once, runs every :class:`~repro.analysis.static.rules.LintRule`
over the AST, filters suppressed findings (``# noqa`` /
``# noqa: REP101,REP104`` on the flagged line), and reports
deterministically sorted violations.

Usage::

    from repro.analysis.static import LintEngine
    violations = LintEngine().check_paths(["src"])

or from the shell::

    python -m repro analyze src/        # exit 1 on any violation
    python -m repro analyze --list-rules
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence

from .rules import ALL_RULES, LintRule, Violation

__all__ = [
    "LintEngine",
    "Violation",
    "analyze_paths",
    "format_violations",
]

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: Directory names never descended into.
_EXCLUDED_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
}


def _suppressed(line: str, rule_id: str) -> bool:
    """Whether ``line`` carries a ``# noqa`` pragma covering ``rule_id``."""
    m = _NOQA_RE.search(line)
    if m is None:
        return False
    codes = m.group("codes")
    if codes is None:
        return True  # bare ``# noqa`` silences every rule
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return rule_id.upper() in wanted


class LintEngine:
    """Runs a rule set over sources, files or directory trees.

    Parameters
    ----------
    rules:
        Rule instances to run; default
        :data:`repro.analysis.static.rules.ALL_RULES`.
    """

    def __init__(self, rules: Optional[Sequence[LintRule]] = None):
        self.rules: Sequence[LintRule] = (
            tuple(rules) if rules is not None else ALL_RULES
        )

    # ------------------------------------------------------------------
    def check_source(self, source: str, path: str = "<string>") -> List[Violation]:
        """Lint one source string (already-read file contents)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Violation(
                    path=path,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    rule_id="REP000",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        lines = source.splitlines()
        out: List[Violation] = []
        for rule in self.rules:
            for v in rule.check(tree, path):
                text = lines[v.line - 1] if 0 < v.line <= len(lines) else ""
                if not _suppressed(text, v.rule_id):
                    out.append(v)
        out.sort()
        return out

    def check_file(self, path: str) -> List[Violation]:
        with open(path, "r", encoding="utf-8") as fh:
            return self.check_source(fh.read(), path)

    def check_paths(self, paths: Iterable[str]) -> List[Violation]:
        """Lint files and/or directory trees (``.py`` files only),
        deterministically ordered."""
        out: List[Violation] = []
        for target in paths:
            if os.path.isdir(target):
                for root, dirs, files in os.walk(target):
                    dirs[:] = sorted(
                        d for d in dirs if d not in _EXCLUDED_DIRS
                    )
                    for name in sorted(files):
                        if name.endswith(".py"):
                            out.extend(self.check_file(os.path.join(root, name)))
            else:
                out.extend(self.check_file(target))
        out.sort()
        return out


def analyze_paths(
    paths: Iterable[str], rules: Optional[Sequence[LintRule]] = None
) -> List[Violation]:
    """Convenience wrapper: lint ``paths`` with ``rules``."""
    return LintEngine(rules).check_paths(paths)


def format_violations(
    violations: Sequence[Violation], fmt: str = "text"
) -> str:
    """Render findings as line-per-violation text or a JSON document."""
    if fmt == "json":
        payload: Dict[str, object] = {
            "violations": [
                {
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "rule": v.rule_id,
                    "message": v.message,
                }
                for v in violations
            ],
            "count": len(violations),
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    if fmt != "text":
        raise ValueError(f"unknown format {fmt!r}; use 'text' or 'json'")
    return "\n".join(v.render() for v in violations)
