"""The domain lint engine behind ``repro analyze`` and ``make lint``.

Parses each file once, runs every :class:`~repro.analysis.static.rules.LintRule`
over the AST, filters suppressed findings (``# noqa`` /
``# noqa: REP101,REP104`` on the flagged line), and reports
deterministically sorted violations.

Usage::

    from repro.analysis.static import LintEngine
    violations = LintEngine().check_paths(["src"])

or from the shell::

    python -m repro analyze src/        # exit 1 on any violation
    python -m repro analyze --list-rules
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence

from .rules import ALL_RULES, KNOWN_RULE_IDS, LintRule, Violation

__all__ = [
    "LintEngine",
    "Violation",
    "analyze_paths",
    "format_violations",
    "iter_python_files",
    "line_suppresses",
]

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: ``REP``-shaped codes inside a noqa pragma; anything else on the line
#: (``E731``, ruff codes, ...) belongs to other tools and is ignored.
_REP_CODE_RE = re.compile(r"^REP\d+$")

#: Directory names never descended into.
_EXCLUDED_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
}


def line_suppresses(line: str, rule_id: str) -> bool:
    """Whether ``line`` carries a ``# noqa`` pragma covering ``rule_id``.

    A bare ``# noqa`` silences every rule on its line; a code list
    (``# noqa: REP101,REP104``) silences exactly the named rules.  The
    concurrency analyzer reuses this predicate so REP2xx findings obey
    the same pragma grammar as the single-file rules.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return False
    codes = m.group("codes")
    if codes is None:
        return True  # bare ``# noqa`` silences every rule
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return rule_id.upper() in wanted


# Backwards-compatible private alias (pre-REP2xx name).
_suppressed = line_suppresses


def _unknown_noqa_codes(line: str) -> List[str]:
    """REP-shaped noqa codes on ``line`` that name no registered rule.

    A typo'd pragma (a code list naming, say, ``REP210``) suppresses
    nothing, which is exactly when the author most needs to hear about
    it.  Non-REP codes are other tools' business and never warned on.
    """
    m = _NOQA_RE.search(line)
    if m is None or m.group("codes") is None:
        return []
    codes = sorted(
        {c.strip().upper() for c in m.group("codes").split(",") if c.strip()}
    )
    return [
        c for c in codes if _REP_CODE_RE.match(c) and c not in KNOWN_RULE_IDS
    ]


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files and/or directory trees into a deterministic,
    duplicate-free list of ``.py`` paths (shared by the lint engine and
    the concurrency analyzer so both walk identically)."""
    out: List[str] = []
    seen = set()
    for target in paths:
        target = os.path.normpath(target)
        if os.path.isdir(target):
            for root, dirs, files in os.walk(target):
                dirs[:] = sorted(d for d in dirs if d not in _EXCLUDED_DIRS)
                for name in sorted(files):
                    if name.endswith(".py"):
                        full = os.path.join(root, name)
                        if full not in seen:
                            seen.add(full)
                            out.append(full)
        elif target not in seen:
            seen.add(target)
            out.append(target)
    return out


class LintEngine:
    """Runs a rule set over sources, files or directory trees.

    Parameters
    ----------
    rules:
        Rule instances to run; default
        :data:`repro.analysis.static.rules.ALL_RULES`.
    """

    def __init__(self, rules: Optional[Sequence[LintRule]] = None):
        self.rules: Sequence[LintRule] = (
            tuple(rules) if rules is not None else ALL_RULES
        )
        #: Non-fatal diagnostics from the last ``check_*`` call —
        #: currently noqa pragmas naming unregistered REP rules.
        self.warnings: List[str] = []

    # ------------------------------------------------------------------
    def check_source(self, source: str, path: str = "<string>") -> List[Violation]:
        """Lint one source string (already-read file contents).

        Appends to :attr:`warnings` for every noqa pragma that names an
        unknown REP rule id (the pragma suppresses nothing, which is
        almost always a typo).
        """
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Violation(
                    path=path,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    rule_id="REP000",
                    message=f"syntax error: {exc.msg}",
                )
            ]
        lines = source.splitlines()
        for lineno, text in enumerate(lines, start=1):
            for code in _unknown_noqa_codes(text):
                self.warnings.append(
                    f"{path}:{lineno}: noqa names unknown rule {code}"
                )
        out: List[Violation] = []
        for rule in self.rules:
            for v in rule.check(tree, path):
                text = lines[v.line - 1] if 0 < v.line <= len(lines) else ""
                if not line_suppresses(text, v.rule_id):
                    out.append(v)
        out.sort()
        return out

    def check_file(self, path: str) -> List[Violation]:
        with open(path, "r", encoding="utf-8") as fh:
            return self.check_source(fh.read(), path)

    def check_paths(self, paths: Iterable[str]) -> List[Violation]:
        """Lint files and/or directory trees (``.py`` files only),
        deterministically ordered.  Resets :attr:`warnings` first."""
        self.warnings = []
        out: List[Violation] = []
        for path in iter_python_files(paths):
            out.extend(self.check_file(path))
        out.sort()
        return out


def analyze_paths(
    paths: Iterable[str], rules: Optional[Sequence[LintRule]] = None
) -> List[Violation]:
    """Convenience wrapper: lint ``paths`` with ``rules``."""
    return LintEngine(rules).check_paths(paths)


def format_violations(
    violations: Sequence[Violation], fmt: str = "text"
) -> str:
    """Render findings as line-per-violation text or a JSON document."""
    if fmt == "json":
        payload: Dict[str, object] = {
            "violations": [
                {
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "rule": v.rule_id,
                    "message": v.message,
                }
                for v in violations
            ],
            "count": len(violations),
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    if fmt != "text":
        raise ValueError(f"unknown format {fmt!r}; use 'text' or 'json'")
    return "\n".join(v.render() for v in violations)
