"""Static verification layer.

Two prongs, both run *before* any simulation cycle:

- :mod:`repro.analysis.static.cdg` — the channel-dependency-graph
  deadlock prover.  Builds the extended Dally–Seitz CDG for a
  (mesh, fault set, k-round ordering, VC assignment) configuration and
  proves acyclicity, or emits a minimal dependency cycle as a
  counterexample artifact.
- :mod:`repro.analysis.static.lint` — the AST-based domain lint
  engine behind ``repro analyze`` / ``make lint``, with rules for
  unseeded randomness, hash-order-dependent iteration, mutable default
  arguments, bare ``except`` and parallel-safety of trial-engine
  workers (see :mod:`repro.analysis.static.rules`).
"""

from .cdg import (
    CdgReport,
    DependencyCycle,
    StaticDeadlockError,
    assert_deadlock_free,
    build_cdg,
    find_dependency_cycle,
    prove_deadlock_free,
)
from .lint import LintEngine, Violation, analyze_paths
from .rules import ALL_RULES, LintRule

__all__ = [
    "CdgReport",
    "DependencyCycle",
    "StaticDeadlockError",
    "assert_deadlock_free",
    "build_cdg",
    "find_dependency_cycle",
    "prove_deadlock_free",
    "LintEngine",
    "Violation",
    "analyze_paths",
    "ALL_RULES",
    "LintRule",
]
