"""Static verification layer.

Three prongs, all run *before* any simulation cycle:

- :mod:`repro.analysis.static.cdg` — the channel-dependency-graph
  deadlock prover.  Builds the extended Dally–Seitz CDG for a
  (mesh, fault set, k-round ordering, VC assignment) configuration and
  proves acyclicity, or emits a minimal dependency cycle as a
  counterexample artifact.
- :mod:`repro.analysis.static.lint` — the AST-based domain lint
  engine behind ``repro analyze`` / ``make lint``, with rules for
  unseeded randomness, hash-order-dependent iteration, mutable default
  arguments, bare ``except`` and parallel-safety of trial-engine
  workers (see :mod:`repro.analysis.static.rules`).
- :mod:`repro.analysis.static.concurrency` — the interprocedural
  concurrency-soundness pass behind ``repro analyze --concurrency``:
  lock-order deadlock certificates (REP201), asyncio blocking-call
  detection (REP202), process-worker escape analysis (REP203),
  lock-held-across-await (REP204) and unguarded shared writes
  (REP205), sharing the CDG prover's minimal-cycle search
  (:mod:`repro.analysis.static.cycles`).
"""

from .cdg import (
    CdgReport,
    DependencyCycle,
    StaticDeadlockError,
    assert_deadlock_free,
    build_cdg,
    find_dependency_cycle,
    prove_deadlock_free,
)
from .concurrency import (
    ConcurrencyFinding,
    ConcurrencyReport,
    LockOrderCycle,
    analyze_concurrency,
    analyze_sources,
    apply_baseline,
    load_baseline,
)
from .cycles import find_minimal_cycle
from .lint import LintEngine, Violation, analyze_paths
from .rules import ALL_RULES, CONCURRENCY_RULES, KNOWN_RULE_IDS, LintRule

__all__ = [
    "CdgReport",
    "DependencyCycle",
    "StaticDeadlockError",
    "assert_deadlock_free",
    "build_cdg",
    "find_dependency_cycle",
    "find_minimal_cycle",
    "prove_deadlock_free",
    "ConcurrencyFinding",
    "ConcurrencyReport",
    "LockOrderCycle",
    "analyze_concurrency",
    "analyze_sources",
    "apply_baseline",
    "load_baseline",
    "LintEngine",
    "Violation",
    "analyze_paths",
    "ALL_RULES",
    "CONCURRENCY_RULES",
    "KNOWN_RULE_IDS",
    "LintRule",
]
