"""Generic minimal-cycle search over dependency graphs.

Both static provers in this package reduce their soundness question to
"is this dependency graph acyclic, and if not, what is a *minimal*
cycle I can show the user?":

- :mod:`repro.analysis.static.cdg` asks it of the channel-dependency
  graph (nodes are ``(src, dst, vc)`` channels);
- :mod:`repro.analysis.static.concurrency` asks it of the
  lock-acquisition-order graph (nodes are lock identities).

The algorithm is shared here: Kahn's algorithm peels the acyclic
fringe (every node that can be topologically removed is provably on no
cycle), then a BFS from each surviving node of the cyclic core — capped
at :data:`MINIMIZE_SOURCES_CAP` deterministically-chosen sources —
finds the globally shortest cycle through any of them.  The result is
a *certificate*: replaying the returned node sequence through the
graph's edges witnesses the cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple, TypeVar

__all__ = ["MINIMIZE_SOURCES_CAP", "find_minimal_cycle"]

N = TypeVar("N", bound=Hashable)

#: BFS fan-out cap for minimal-cycle search on huge cyclic graphs.
MINIMIZE_SOURCES_CAP = 256


def find_minimal_cycle(
    graph: Dict[N, Tuple[N, ...]],
) -> Optional[List[N]]:
    """A minimal cycle of ``graph``, or ``None`` if it is acyclic.

    ``graph`` maps each node to its successor tuple; successors that
    never appear as keys are sinks (no outgoing edges) and can never
    lie on a cycle, so they are ignored.  Kahn-peels the acyclic
    fringe first; on the cyclic core a BFS from each surviving node
    (capped at :data:`MINIMIZE_SOURCES_CAP` sources, deterministically
    chosen by key insertion order) finds the globally shortest cycle
    through any of them.
    """
    indeg: Dict[N, int] = {c: 0 for c in graph}
    for succs in graph.values():
        for c2 in succs:
            if c2 in indeg:
                indeg[c2] += 1
    queue = deque(c for c, n in indeg.items() if n == 0)
    alive = dict(indeg)
    while queue:
        c = queue.popleft()
        for c2 in graph.get(c, ()):
            if c2 in alive:
                alive[c2] -= 1
                if alive[c2] == 0:
                    queue.append(c2)
    core = [c for c, n in alive.items() if n > 0]
    if not core:
        return None
    core_set = frozenset(core)

    best: Optional[List[N]] = None
    for start in core[:MINIMIZE_SOURCES_CAP]:
        # Shortest path start -> ... -> start within the cyclic core.
        parent: Dict[N, N] = {}
        dq = deque([start])
        seen = {start}
        found: Optional[N] = None
        while dq and found is None:
            c = dq.popleft()
            if best is not None and _depth(parent, c, start) + 1 >= len(best):
                continue  # cannot beat the incumbent
            for c2 in graph.get(c, ()):
                if c2 == start:
                    found = c
                    break
                if c2 in core_set and c2 not in seen:
                    seen.add(c2)
                    parent[c2] = c
                    dq.append(c2)
        if found is None:
            continue
        cyc: List[N] = [found]
        while cyc[-1] != start:
            cyc.append(parent[cyc[-1]])
        cyc.reverse()
        if best is None or len(cyc) < len(best):
            best = cyc
            if len(best) == 1:  # self-loop: cannot do better
                break
    return best


def _depth(parent: Dict[N, N], c: N, start: N) -> int:
    n = 0
    while c != start:
        c = parent[c]
        n += 1
    return n
