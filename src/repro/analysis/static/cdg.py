"""Channel-dependency-graph deadlock prover (Dally & Seitz, extended).

The paper's deadlock-freedom claim (Section 4) is the classic
Dally–Seitz argument: k-round dimension-ordered routing with one
virtual channel per round induces an *acyclic* channel-dependency
graph, hence no wormhole deadlock.  The simulator can only *observe* a
violation dynamically (:class:`repro.wormhole.DeadlockError` fires
when a wait-for cycle has already formed); this module proves — or
refutes — deadlock freedom **statically**, before a single cycle is
simulated.

Model
-----
A *channel* is a (non-faulty directed link, virtual channel) pair —
exactly the simulator's :data:`repro.wormhole.network.ResourceKey`.
The extended CDG has an edge ``c1 -> c2`` whenever *some* route the
routing function can produce uses ``c2`` immediately after ``c1``:

- **intra-round**: within round ``t`` (ordering ``pi``, VC
  ``vc_of_round(t)``) a DOR path entering node ``w`` along dimension
  ``pi[i]`` may continue along the same dimension in the same
  direction, or turn into any strictly later dimension ``pi[j]``,
  ``j > i`` (either direction);
- **inter-round**: a path may finish round ``t`` at any node ``w``
  and start round ``t' > t`` there (intermediate rounds may be
  empty), so every channel into ``w`` on ``vc_of_round(t)`` depends
  on every channel out of ``w`` on ``vc_of_round(t')``.

Channels whose link or endpoint is faulty are excluded: no route is
ever materialized across them
(:meth:`repro.wormhole.VirtualNetwork.validate_hop` is the dynamic
counterpart of this pruning).

If the graph is acyclic the configuration is deadlock-free for *any*
traffic and any congestion (the resource-ordering argument); if it is
cyclic the prover emits a **minimal dependency cycle** as a
counterexample artifact (:class:`DependencyCycle`).  On a torus the
wrap links make single-round rings cyclic — the prover correctly
refuses plain DOR on tori, matching the standard result that tori
need an extra channel split.

Cross-validation: the test suite asserts every scenario that
dynamically raises :class:`~repro.wormhole.DeadlockError` is rejected
here, and every configuration the golden parity runs drain cleanly is
accepted (``tests/test_static_cdg.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...mesh.faults import FaultSet
from ...mesh.geometry import Node
from ...routing.ordering import KRoundOrdering
from ...wormhole.deadlock import SimulationError
from .cycles import find_minimal_cycle

__all__ = [
    "Channel",
    "DependencyCycle",
    "CdgReport",
    "StaticDeadlockError",
    "build_cdg",
    "find_dependency_cycle",
    "prove_deadlock_free",
    "assert_deadlock_free",
]

#: (src, dst, vc) — identical to :data:`repro.wormhole.network.ResourceKey`.
Channel = Tuple[Node, Node, int]


def _hop_dim_dir(widths: Tuple[int, ...], u: Node, w: Node) -> Tuple[int, int]:
    """The dimension a hop travels and its direction (+1/-1).

    Wrap-around (torus) hops are resolved modularly: ``n-1 -> 0`` is a
    ``+1`` hop, ``0 -> n-1`` a ``-1`` hop.
    """
    for j, (a, b) in enumerate(zip(u, w)):
        if a != b:
            diff = b - a
            if diff == 1 or diff == -(widths[j] - 1):
                return j, 1
            return j, -1
    raise ValueError(f"{u} -> {w} is not a hop")


@dataclass(frozen=True)
class DependencyCycle:
    """A cycle in the channel-dependency graph — a static witness that
    the routing discipline can deadlock."""

    channels: Tuple[Channel, ...]

    def __len__(self) -> int:
        return len(self.channels)

    def describe(self) -> str:
        parts = [
            f"<{src} -> {dst}, vc{vc}>" for (src, dst, vc) in self.channels
        ]
        return " => ".join(parts + [parts[0]]) if parts else "<empty>"

    def to_dict(self) -> Dict[str, object]:
        return {
            "length": len(self.channels),
            "channels": [
                {"src": list(src), "dst": list(dst), "vc": vc}
                for (src, dst, vc) in self.channels
            ],
        }


@dataclass(frozen=True)
class CdgReport:
    """Outcome of a static deadlock-freedom proof attempt.

    ``cycle is None`` means the extended CDG is acyclic: the
    configuration is deadlock-free for any traffic.  Otherwise
    ``cycle`` is a minimal dependency cycle (counterexample).
    """

    mesh: str
    num_channels: int
    num_dependencies: int
    num_vcs: int
    rounds: int
    cycle: Optional[DependencyCycle] = field(default=None)

    @property
    def acyclic(self) -> bool:
        return self.cycle is None

    @property
    def deadlock_free(self) -> bool:
        return self.acyclic

    def describe(self) -> str:
        head = (
            f"CDG over {self.mesh}: {self.num_channels} channel(s), "
            f"{self.num_dependencies} dependency edge(s), "
            f"{self.num_vcs} VC(s), {self.rounds} round(s)"
        )
        if self.cycle is None:
            return head + "\nacyclic: deadlock-free for any traffic"
        return (
            head
            + f"\nCYCLIC: minimal dependency cycle of length "
            f"{len(self.cycle)}:\n  " + self.cycle.describe()
        )

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "mesh": self.mesh,
            "num_channels": self.num_channels,
            "num_dependencies": self.num_dependencies,
            "num_vcs": self.num_vcs,
            "rounds": self.rounds,
            "deadlock_free": self.acyclic,
        }
        if self.cycle is not None:
            out["cycle"] = self.cycle.to_dict()
        return out

    def write_artifact(self, path: str) -> None:
        """Persist the (counter)example report as a JSON artifact."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


class StaticDeadlockError(SimulationError):
    """The CDG prover found a dependency cycle: the configuration is
    *not* deadlock-free.  Carries the full :class:`CdgReport`."""

    def __init__(self, report: CdgReport):
        self.report = report
        cyc = report.cycle
        assert cyc is not None
        super().__init__(
            "static deadlock: channel-dependency cycle of length "
            f"{len(cyc)}\n  {cyc.describe()}"
        )


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------
def build_cdg(
    faults: FaultSet,
    orderings: KRoundOrdering,
    vc_of_round: Optional[Callable[[int], int]] = None,
    num_vcs: Optional[int] = None,
) -> Dict[Channel, Tuple[Channel, ...]]:
    """The extended channel-dependency graph of a configuration.

    Parameters mirror :class:`repro.wormhole.WormholeSimulator`:
    ``vc_of_round`` maps round index to VC (identity by default, the
    paper's discipline), ``num_vcs`` defaults to ``orderings.k``.

    Returns a deterministic adjacency map ``channel -> successors``;
    node order follows :meth:`repro.mesh.Mesh.links` enumeration.
    """
    mesh = faults.mesh
    k = orderings.k
    vmap = vc_of_round or (lambda t: t)
    nvc = orderings.k if num_vcs is None else int(num_vcs)
    if nvc < 1:
        raise ValueError("need at least one virtual channel")
    round_vcs = []
    for t in range(k):
        vc = int(vmap(t))
        if vc < 0 or vc >= nvc:
            raise ValueError(f"round {t} maps to VC {vc}, have {nvc}")
        round_vcs.append(vc)

    widths = mesh.widths
    # Usable directed links, annotated with (dim, direction).
    in_links: Dict[Node, List[Tuple[Node, int, int]]] = {}
    out_links: Dict[Node, List[Tuple[Node, int, int]]] = {}
    for (u, w) in mesh.links():
        if faults.link_is_faulty(u, w):
            continue
        j, s = _hop_dim_dir(widths, u, w)
        in_links.setdefault(w, []).append((u, j, s))
        out_links.setdefault(u, []).append((w, j, s))

    # Position of each dimension within each round's ordering.
    pos = [
        {dim: i for i, dim in enumerate(pi.perm)} for pi in orderings
    ]

    graph: Dict[Channel, List[Channel]] = {}

    def add_edge(c1: Channel, c2: Channel) -> None:
        graph.setdefault(c1, []).append(c2)

    for w, incoming in in_links.items():
        outgoing = out_links.get(w, [])
        if not outgoing:
            continue
        for (u, ji, si) in incoming:
            for t in range(k):
                vc_t = round_vcs[t]
                c1 = (u, w, vc_t)
                # Intra-round: continue the DOR path of round t.
                p = pos[t]
                pi_i = p[ji]
                for (x, jo, so) in outgoing:
                    pj = p[jo]
                    if (pj == pi_i and so == si) or pj > pi_i:
                        add_edge(c1, (w, x, vc_t))
                # Inter-round: finish round t at w, start any later
                # round there (intermediate rounds may be empty).
                for t2 in range(t + 1, k):
                    vc_n = round_vcs[t2]
                    for (x, _jo, _so) in outgoing:
                        add_edge(c1, (w, x, vc_n))

    # Deduplicate successors while preserving order (rounds sharing a
    # VC can induce the same edge via several (t, t') pairs).
    out: Dict[Channel, Tuple[Channel, ...]] = {}
    for c1, succs in graph.items():
        seen = set()
        uniq = []
        for c2 in succs:
            if c2 not in seen:
                seen.add(c2)
                uniq.append(c2)
        out[c1] = tuple(uniq)
    return out


# ----------------------------------------------------------------------
# Cycle detection + minimization
# ----------------------------------------------------------------------
def find_dependency_cycle(
    graph: Dict[Channel, Tuple[Channel, ...]],
) -> Optional[List[Channel]]:
    """A minimal cycle of the dependency graph, or ``None`` if acyclic.

    Delegates to the shared
    :func:`~repro.analysis.static.cycles.find_minimal_cycle` (Kahn
    peel + capped-BFS minimization), kept as a named entry point for
    the channel-dependency domain.
    """
    return find_minimal_cycle(graph)


# ----------------------------------------------------------------------
# The prover
# ----------------------------------------------------------------------
def prove_deadlock_free(
    faults: FaultSet,
    orderings: KRoundOrdering,
    vc_of_round: Optional[Callable[[int], int]] = None,
    num_vcs: Optional[int] = None,
) -> CdgReport:
    """Statically verify a routing configuration.

    Returns a :class:`CdgReport`; ``report.acyclic`` is the verdict
    and ``report.cycle`` the minimal counterexample when it is not.
    """
    graph = build_cdg(faults, orderings, vc_of_round, num_vcs)
    channels = set(graph)
    for succs in graph.values():
        channels.update(succs)
    cycle = find_dependency_cycle(graph)
    return CdgReport(
        mesh=repr(faults.mesh),
        num_channels=len(channels),
        num_dependencies=sum(len(s) for s in graph.values()),
        num_vcs=(orderings.k if num_vcs is None else int(num_vcs)),
        rounds=orderings.k,
        cycle=None if cycle is None else DependencyCycle(tuple(cycle)),
    )


def assert_deadlock_free(
    faults: FaultSet,
    orderings: KRoundOrdering,
    vc_of_round: Optional[Callable[[int], int]] = None,
    num_vcs: Optional[int] = None,
) -> CdgReport:
    """:func:`prove_deadlock_free`, raising :class:`StaticDeadlockError`
    (a :class:`repro.wormhole.SimulationError`) on a cyclic CDG."""
    report = prove_deadlock_free(faults, orderings, vc_of_round, num_vcs)
    if not report.acyclic:
        raise StaticDeadlockError(report)
    return report
