"""Interprocedural concurrency-soundness analyzer (REP201-REP205).

The paper proves deadlock freedom *statically* over channel
dependencies; :mod:`repro.analysis.static.cdg` applies that argument
to the routed network.  This module applies the same philosophy to the
host program's own concurrency: the lock-guarded compiler/store, the
asyncio control plane, the thread-safe telemetry registry, and the
process-pool trial engine.

It is a whole-program AST pass.  A first pass indexes every class
(threading lock attributes, attribute/parameter type hints), function
and module-level lock; a second pass walks each function body with a
held-lock stack, resolving calls interprocedurally, and a set of
fixpoints over the resulting call graph derives the findings:

``REP201`` *lock-order-cycle*
    Edges ``A -> B`` whenever ``B`` is acquired (lexically or through
    a call chain) while ``A`` is held.  A cycle means two code paths
    can acquire the same locks in opposite orders; the minimal cycle
    is emitted as a certificate (same Kahn-peel + capped-BFS search
    the CDG prover uses, shared via
    :func:`~repro.analysis.static.cycles.find_minimal_cycle`).
    Lock identities are *instance-insensitive* (one id per declaration
    site), so a self-edge on a non-reentrant ``Lock`` is reported too.

``REP202`` *async-blocking-call*
    A blocking call (``time.sleep``, sync file/socket IO,
    ``subprocess``, a threading-lock wait) is reachable from an
    ``async def`` body.  Reachability propagates through sync callees
    with a witness chain; handing the callable to
    ``loop.run_in_executor``/``asyncio.to_thread`` escapes naturally
    because the callable is an argument, not a call.

``REP203`` *process-escape*
    Work submitted to a process executor (``ProcessPoolExecutor`` /
    ``TrialEngine.run_trials``/``map_ordered``) captures unpicklable
    or shared-mutable state: locks, sockets, ``TelemetryRegistry``,
    or a bound method dragging a lock-holding instance.

``REP204`` *lock-held-across-await*
    An ``await`` while a threading lock is held: every thread (and
    task) contending for the lock stalls for the full suspension.

``REP205`` *unguarded-shared-write*
    An attribute written under a lock somewhere in its class is also
    written with no lock held (``__init__``-family methods exempt;
    the "caller holds the lock" convention is honoured through a
    monotone all-call-sites-guarded fixpoint).

Known limitations (by design, to stay deterministic and fast): lock
identities are per *declaration site*, not per instance; bare
``lock.acquire()`` outside ``with`` does not open a held region; type
inference covers constructor calls, parameter/return annotations and
one level of attribute types.

Findings honour the same ``# noqa`` grammar as the REP1xx lint rules
and can additionally be suppressed by a committed JSON baseline keyed
on ``(rule, path, symbol)`` so entries survive line churn
(:func:`load_baseline` / :func:`apply_baseline`).
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .cycles import find_minimal_cycle
from .lint import iter_python_files, line_suppresses
from .rules import _dotted

__all__ = [
    "ConcurrencyFinding",
    "LockOrderCycle",
    "ConcurrencyReport",
    "analyze_concurrency",
    "analyze_sources",
    "load_baseline",
    "apply_baseline",
    "CONCURRENCY_FIXTURES",
]

_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Constructors that create a threading lock, mapped to their kind.
_LOCK_CTORS: Dict[str, str] = {
    "Lock": "Lock",
    "RLock": "RLock",
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "multiprocessing.Lock": "Lock",
    "multiprocessing.RLock": "RLock",
}

#: Calls that block the calling thread (event loop, if async).
_BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "time.sleep()",
    "open": "open()",
    "io.open": "io.open()",
    "os.fdopen": "os.fdopen()",
    "os.makedirs": "os.makedirs()",
    "os.mkdir": "os.mkdir()",
    "os.replace": "os.replace()",
    "os.rename": "os.rename()",
    "os.remove": "os.remove()",
    "os.unlink": "os.unlink()",
    "os.listdir": "os.listdir()",
    "os.scandir": "os.scandir()",
    "tempfile.mkstemp": "tempfile.mkstemp()",
    "tempfile.NamedTemporaryFile": "tempfile.NamedTemporaryFile()",
    "shutil.rmtree": "shutil.rmtree()",
    "shutil.copy": "shutil.copy()",
    "shutil.copy2": "shutil.copy2()",
    "shutil.copytree": "shutil.copytree()",
    "shutil.move": "shutil.move()",
    "socket.socket": "socket.socket()",
    "socket.create_connection": "socket.create_connection()",
    "urllib.request.urlopen": "urllib.request.urlopen()",
}

#: Dotted-prefix families that always block.
_BLOCKING_PREFIXES: Tuple[str, ...] = ("subprocess.", "requests.")

#: Names that construct a process-backed executor.
_PROCESS_POOL_NAMES = {
    "ProcessPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
}

#: Sentinel type id for process-pool instances (stdlib class, so it
#: never collides with a repo class qualname).
_PROCESS_POOL = "<ProcessPoolExecutor>"

#: Executor methods that ship the callable to another process.
_POOL_SUBMIT_METHODS = {"submit", "map", "apply", "apply_async", "map_async"}

#: TrialEngine entry points: the executor backend is configuration
#: driven (thread *or* process), so arguments must stay picklable
#: regardless of the receiver's statically-known type.
_ENGINE_SUBMIT_METHODS = {"run_trials", "map_ordered"}

#: Methods whose ``self.attr = ...`` writes are construction, not
#: shared-state mutation (exempt from REP205 on both sides).
_INIT_NAMES = {"__init__", "__new__", "__post_init__"}

#: Cap on enumerated lock-order cycles per report.
_MAX_CYCLES = 8

#: Witness-chain display cap (elements, not characters).
_MAX_CHAIN = 5


def _module_name(path: str) -> str:
    """Deterministic dotted module id for ``path``.

    Everything up to and including a ``src`` component is stripped, so
    ids are stable across absolute/relative invocations.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p not in ("", ".")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


# ----------------------------------------------------------------------
# Public result types (CdgReport-style artifact shape)
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class ConcurrencyFinding:
    """One REP2xx diagnostic, anchored to a source location and the
    enclosing function/method qualname (``symbol``)."""

    path: str
    line: int
    col: int
    rule_id: str
    symbol: str
    message: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
            f"[{self.symbol}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "symbol": self.symbol,
            "message": self.message,
        }

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used by the suppression baseline — deliberately
        line-free so entries survive unrelated edits."""
        return (self.rule_id, self.path, self.symbol)


@dataclass(frozen=True)
class LockOrderCycle:
    """A cycle in the lock-acquisition-order graph — a static witness
    that two code paths can deadlock.  ``sites[i]`` documents where
    the ``locks[i] -> locks[(i+1) % n]`` edge was established."""

    locks: Tuple[str, ...]
    sites: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.locks)

    def describe(self) -> str:
        if not self.locks:
            return "<empty>"
        ring = list(self.locks) + [self.locks[0]]
        return " -> ".join(ring)

    def to_dict(self) -> Dict[str, object]:
        return {
            "length": len(self.locks),
            "locks": list(self.locks),
            "sites": list(self.sites),
        }


@dataclass(frozen=True)
class ConcurrencyReport:
    """Outcome of a whole-program concurrency-soundness pass.

    Mirrors :class:`~repro.analysis.static.cdg.CdgReport`: summary
    counts, the full lock-order edge set, cycle certificates, and the
    (post-noqa) finding list; JSON-serializable via :meth:`to_dict` /
    :meth:`write_artifact`.
    """

    num_modules: int
    num_functions: int
    locks: Tuple[Tuple[str, str], ...]
    edges: Tuple[Tuple[str, str, str], ...]
    cycles: Tuple[LockOrderCycle, ...]
    findings: Tuple[ConcurrencyFinding, ...]

    @property
    def clean(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        head = (
            f"concurrency pass over {self.num_modules} module(s), "
            f"{self.num_functions} function(s): {len(self.locks)} "
            f"lock(s), {len(self.edges)} acquisition-order edge(s)"
        )
        if self.cycles:
            certs = "\n".join(
                f"  cycle of length {len(c)}: {c.describe()}"
                for c in self.cycles
            )
            head += f"\nCYCLIC lock order:\n{certs}"
        else:
            head += "\nlock-order graph acyclic"
        if self.findings:
            body = "\n".join(f.render() for f in self.findings)
            return f"{head}\n{len(self.findings)} finding(s):\n{body}"
        return head + "\nno findings"

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "modules": self.num_modules,
            "functions": self.num_functions,
            "locks": [
                {"id": lock_id, "kind": kind}
                for (lock_id, kind) in self.locks
            ],
            "lock_edges": [
                {"from": frm, "to": to, "site": site}
                for (frm, to, site) in self.edges
            ],
            "cycles": [c.to_dict() for c in self.cycles],
            "findings": [f.to_dict() for f in self.findings],
            "clean": self.clean,
        }

    def write_artifact(self, path: str) -> None:
        """Persist the report as a deterministic JSON artifact."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# ----------------------------------------------------------------------
# Internal program model
# ----------------------------------------------------------------------
class _ClassInfo:
    """Per-class facts: lock attributes, attribute types, methods."""

    __slots__ = ("qualname", "module", "name", "path", "lock_attrs",
                 "attr_types", "methods")

    def __init__(self, qualname: str, module: str, name: str, path: str):
        self.qualname = qualname
        self.module = module
        self.name = name
        self.path = path
        self.lock_attrs: Dict[str, str] = {}
        self.attr_types: Dict[str, str] = {}
        self.methods: Dict[str, str] = {}


class _FuncInfo:
    """Per-function facts gathered by the body walk."""

    __slots__ = (
        "qualname", "module", "name", "cls", "path", "node", "is_async",
        "nested", "local_types", "local_names", "acquires", "edges", "calls",
        "blocking", "lock_waits", "awaits", "escapes", "writes",
    )

    def __init__(
        self,
        qualname: str,
        module: str,
        name: str,
        cls: Optional[str],
        path: str,
        node: ast.AST,
    ):
        self.qualname = qualname
        self.module = module
        self.name = name
        self.cls = cls
        self.path = path
        self.node = node
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        self.nested: Dict[str, str] = {}
        self.local_types: Dict[str, str] = {}
        # every locally bound name (params + assignment targets): a
        # dotted "blocking" match whose root is local is a shadow, not
        # a module call (e.g. a list named ``requests``)
        self.local_names: Set[str] = set()
        # (lock, line, col) direct acquisitions
        self.acquires: List[Tuple[str, int, int]] = []
        # (held, acquired, line) lexical order edges
        self.edges: List[Tuple[str, str, int]] = []
        # (callee qualname, line, col, held locks at the call)
        self.calls: List[Tuple[str, int, int, Tuple[str, ...]]] = []
        # (line, col, description) direct blocking calls
        self.blocking: List[Tuple[int, int, str]] = []
        # (line, col, lock) sync lock waits (flagged in async bodies)
        self.lock_waits: List[Tuple[int, int, str]] = []
        # (line, col, innermost held lock) awaits under a lock
        self.awaits: List[Tuple[int, int, str]] = []
        # (line, col, message) process-escape hazards
        self.escapes: List[Tuple[int, int, str]] = []
        # (attr, line, col, lexical lock or None) self.attr writes
        self.writes: List[Tuple[str, int, int, Optional[str]]] = []


class _Model:
    """The whole-program index both passes share."""

    def __init__(self) -> None:
        self.sources: Dict[str, List[str]] = {}
        self.functions: Dict[str, _FuncInfo] = {}
        self.classes: Dict[str, _ClassInfo] = {}
        self.class_by_name: Dict[str, List[str]] = {}
        self.module_funcs: Dict[Tuple[str, str], str] = {}
        self.fn_by_name: Dict[str, List[str]] = {}
        self.module_locks: Dict[Tuple[str, str], str] = {}
        self.lock_kinds: Dict[str, str] = {}

    def class_for_name(self, name: str) -> Optional[str]:
        """The unique class qualname for a bare name, else None."""
        hits = self.class_by_name.get(name, [])
        return hits[0] if len(hits) == 1 else None


def _lock_ctor_kind(value: ast.AST) -> Optional[str]:
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        if dotted is not None:
            return _LOCK_CTORS.get(dotted)
    return None


# ----------------------------------------------------------------------
# Pass 1 — declaration collection
# ----------------------------------------------------------------------
def _collect_module(model: _Model, path: str, tree: ast.Module) -> None:
    module = _module_name(path)
    for stmt in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if target is None or value is None or not isinstance(target, ast.Name):
            continue
        kind = _lock_ctor_kind(value)
        if kind is not None:
            lock_id = f"{module}.{target.id}"
            model.module_locks[(module, target.id)] = lock_id
            model.lock_kinds[lock_id] = kind
    _collect_body(model, module, path, tree.body, module, None)


def _collect_body(
    model: _Model,
    module: str,
    path: str,
    body: Sequence[ast.stmt],
    prefix: str,
    cls: Optional[str],
) -> None:
    for stmt in body:
        if isinstance(stmt, _FUNC_DEFS):
            qualname = f"{prefix}.{stmt.name}"
            info = _FuncInfo(qualname, module, stmt.name, cls, path, stmt)
            model.functions[qualname] = info
            if cls is not None:
                model.classes[cls].methods[stmt.name] = qualname
            elif prefix == module:
                model.module_funcs[(module, stmt.name)] = qualname
                model.fn_by_name.setdefault(stmt.name, []).append(qualname)
            for sub in stmt.body:
                if isinstance(sub, _FUNC_DEFS):
                    info.nested[sub.name] = f"{qualname}.{sub.name}"
            _collect_body(model, module, path, stmt.body, qualname, None)
        elif isinstance(stmt, ast.ClassDef):
            cq = f"{prefix}.{stmt.name}"
            info_c = _ClassInfo(cq, module, stmt.name, path)
            model.classes[cq] = info_c
            model.class_by_name.setdefault(stmt.name, []).append(cq)
            for sub in stmt.body:
                if isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    ann = _dotted(sub.annotation)
                    if ann is not None and ann in _LOCK_CTORS:
                        info_c.lock_attrs[sub.target.id] = _LOCK_CTORS[ann]
                    if sub.value is not None:
                        kind = _lock_ctor_kind(sub.value)
                        if kind is not None:
                            info_c.lock_attrs[sub.target.id] = kind
            _collect_body(model, module, path, stmt.body, cq, cq)


# ----------------------------------------------------------------------
# Pass 1b — type annotation / lock attribute resolution
# ----------------------------------------------------------------------
def _ann_type(model: _Model, ann: Optional[ast.AST]) -> Optional[str]:
    """Resolve a type annotation to a class qualname or the process
    pool sentinel.  ``Optional[X]`` unwraps; containers do not."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        name = ann.value.split("[")[0].strip()
        if name in _PROCESS_POOL_NAMES:
            return _PROCESS_POOL
        return model.class_for_name(name.split(".")[-1])
    if isinstance(ann, ast.Subscript):
        head = _dotted(ann.value)
        if head is not None and head.split(".")[-1] == "Optional":
            return _ann_type(model, ann.slice)
        return None
    dotted = _dotted(ann)
    if dotted is None:
        return None
    if dotted in _PROCESS_POOL_NAMES or (
        dotted.split(".")[-1] == "ProcessPoolExecutor"
    ):
        return _PROCESS_POOL
    return model.class_for_name(dotted.split(".")[-1])


def _returns_type(model: _Model, info: _FuncInfo) -> Optional[str]:
    node = info.node
    if isinstance(node, _FUNC_DEFS):
        return _ann_type(model, node.returns)
    return None


def _param_types(model: _Model, node: ast.AST) -> Dict[str, str]:
    out: Dict[str, str] = {}
    if not isinstance(node, _FUNC_DEFS):
        return out
    args = node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        t = _ann_type(model, arg.annotation)
        if t is not None:
            out[arg.arg] = t
    return out


def _value_class(
    model: _Model, params: Dict[str, str], value: ast.AST
) -> Optional[str]:
    """Best-effort static type of an assigned value (pass-1b scope:
    constructor calls, annotated params, conditional fallbacks,
    one-level known-method return annotations)."""
    if isinstance(value, ast.Await):
        return _value_class(model, params, value.value)
    if isinstance(value, ast.Name):
        return params.get(value.id)
    if isinstance(value, ast.IfExp):
        return _value_class(model, params, value.body) or _value_class(
            model, params, value.orelse
        )
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        if dotted is not None:
            if dotted in _PROCESS_POOL_NAMES:
                return _PROCESS_POOL
            cq = model.class_for_name(dotted.split(".")[-1])
            if cq is not None:
                return cq
        # one level of ``self.x = obj.method()`` return inference
        if isinstance(value.func, ast.Attribute) and isinstance(
            value.func.value, ast.Name
        ):
            base_t = params.get(value.func.value.id)
            if base_t is not None and base_t in model.classes:
                mq = model.classes[base_t].methods.get(value.func.attr)
                if mq is not None:
                    return _returns_type(model, model.functions[mq])
    return None


def _annotate_classes(model: _Model) -> None:
    """Fill each class's lock attributes and attribute types from its
    method bodies (``self.X = ...`` sites, typically ``__init__``)."""
    for cq in sorted(model.classes):
        ci = model.classes[cq]
        for mname in sorted(ci.methods):
            info = model.functions[ci.methods[mname]]
            params = _param_types(model, info.node)
            for sub in ast.walk(info.node):
                targets: List[ast.expr] = []
                value: Optional[ast.expr] = None
                if isinstance(sub, ast.Assign):
                    targets, value = list(sub.targets), sub.value
                elif isinstance(sub, ast.AnnAssign):
                    targets = [sub.target]
                    value = sub.value
                    ann_t = _dotted(sub.annotation)
                    if (
                        ann_t is not None
                        and ann_t in _LOCK_CTORS
                        and isinstance(sub.target, ast.Attribute)
                        and isinstance(sub.target.value, ast.Name)
                        and sub.target.value.id == "self"
                    ):
                        ci.lock_attrs.setdefault(
                            sub.target.attr, _LOCK_CTORS[ann_t]
                        )
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    if value is not None:
                        kind = _lock_ctor_kind(value)
                        if kind is not None:
                            ci.lock_attrs.setdefault(attr, kind)
                            continue
                        t = _value_class(model, params, value)
                        if t is not None:
                            ci.attr_types.setdefault(attr, t)
        for attr in sorted(ci.lock_attrs):
            lock_id = f"{cq}.{attr}"
            model.lock_kinds[lock_id] = ci.lock_attrs[attr]


# ----------------------------------------------------------------------
# Pass 2 — function body walk
# ----------------------------------------------------------------------
def _nonblocking_acquire(call: ast.Call) -> bool:
    """``lock.acquire(False)`` / ``acquire(blocking=False)`` cannot
    wait, hence cannot deadlock or stall a loop: skipped entirely."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and first.value is False:
            return True
    for kw in call.keywords:
        if (
            kw.arg == "blocking"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
        ):
            return True
    return False


def _blocking_desc(dotted: Optional[str]) -> Optional[str]:
    if dotted is None:
        return None
    desc = _BLOCKING_CALLS.get(dotted)
    if desc is not None:
        return desc
    for prefix in _BLOCKING_PREFIXES:
        if dotted.startswith(prefix):
            return f"{dotted}()"
    return None


class _BodyWalker:
    """Walks one function body with a held-lock stack, populating the
    function's :class:`_FuncInfo` fact lists."""

    def __init__(self, model: _Model, fn: _FuncInfo):
        self.m = model
        self.fn = fn
        self.ci: Optional[_ClassInfo] = (
            model.classes.get(fn.cls) if fn.cls is not None else None
        )

    # -- entry ----------------------------------------------------------
    def run(self) -> None:
        self._prescan()
        node = self.fn.node
        if isinstance(node, _FUNC_DEFS):
            for stmt in node.body:
                self._visit(stmt, ())

    # -- local type prescan --------------------------------------------
    def _prescan(self) -> None:
        self.fn.local_types.update(_param_types(self.m, self.fn.node))
        node = self.fn.node
        if isinstance(node, _FUNC_DEFS):
            args = node.args
            for arg in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            ):
                self.fn.local_names.add(arg.arg)
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    self.fn.local_names.add(extra.arg)
            for stmt in node.body:
                self._prescan_stmt(stmt)

    def _prescan_stmt(self, node: ast.AST) -> None:
        if isinstance(node, _FUNC_DEFS + (ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            self.fn.local_names.add(node.id)
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if isinstance(target, ast.Name):
            t: Optional[str] = None
            if isinstance(node, ast.AnnAssign):
                t = _ann_type(self.m, node.annotation)
            if t is None and value is not None:
                t = self._value_type(value)
            if t is not None:
                self.fn.local_types.setdefault(target.id, t)
        for child in ast.iter_child_nodes(node):
            self._prescan_stmt(child)

    def _value_type(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Await):
            return self._value_type(value.value)
        if isinstance(value, ast.Name):
            return self.fn.local_types.get(value.id)
        if isinstance(value, ast.IfExp):
            return self._value_type(value.body) or self._value_type(
                value.orelse
            )
        if isinstance(value, ast.Call):
            return self._call_result_type(value)
        return None

    def _call_result_type(self, call: ast.Call) -> Optional[str]:
        kind = _lock_ctor_kind(call)
        if kind is not None:
            return f"<{kind}>"  # local lock sentinel type
        dotted = _dotted(call.func)
        if dotted is not None:
            if dotted in _PROCESS_POOL_NAMES:
                return _PROCESS_POOL
            cq = self.m.class_for_name(dotted.split(".")[-1])
            if cq is not None:
                return cq
        callee = self._resolve_call(call.func)
        if callee is not None and callee in self.m.functions:
            return _returns_type(self.m, self.m.functions[callee])
        return None

    # -- type / lock / call resolution ---------------------------------
    def _type_of(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Await):
            return self._type_of(expr.value)
        if isinstance(expr, ast.Name):
            return self.fn.local_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.ci is not None
            ):
                return self.ci.attr_types.get(expr.attr)
            base_t = self._type_of(expr.value)
            if base_t is not None and base_t in self.m.classes:
                return self.m.classes[base_t].attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Call):
            return self._call_result_type(expr)
        return None

    def _resolve_lock(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            module_lock = self.m.module_locks.get(
                (self.fn.module, expr.id)
            )
            if module_lock is not None:
                return module_lock
            local_t = self.fn.local_types.get(expr.id)
            if local_t in ("<Lock>", "<RLock>"):
                lock_id = f"{self.fn.qualname}.{expr.id}"
                self.m.lock_kinds.setdefault(lock_id, local_t.strip("<>"))
                return lock_id
            return None
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.ci is not None
            ):
                if expr.attr in self.ci.lock_attrs:
                    return f"{self.ci.qualname}.{expr.attr}"
                return None
            base_t = self._type_of(expr.value)
            if base_t is not None and base_t in self.m.classes:
                if expr.attr in self.m.classes[base_t].lock_attrs:
                    return f"{base_t}.{expr.attr}"
        return None

    def _resolve_call(self, func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.fn.nested:
                return self.fn.nested[name]
            mq = self.m.module_funcs.get((self.fn.module, name))
            if mq is not None:
                return mq
            hits = self.m.fn_by_name.get(name, [])
            if len(hits) == 1:
                return hits[0]
            cq = self.m.class_for_name(name)
            if cq is not None:
                return self.m.classes[cq].methods.get("__init__")
            return None
        if isinstance(func, ast.Attribute):
            meth = func.attr
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and self.ci is not None
            ):
                sq = self.ci.methods.get(meth)
                if sq is not None:
                    return sq
            base_t = self._type_of(base)
            if base_t is not None and base_t in self.m.classes:
                return self.m.classes[base_t].methods.get(meth)
            if isinstance(base, ast.Name):
                cq = self.m.class_for_name(base.id)
                if cq is not None:
                    return self.m.classes[cq].methods.get(meth)
            dotted = _dotted(func)
            if dotted is not None:
                cq = self.m.class_for_name(dotted.split(".")[-1])
                if cq is not None:
                    return self.m.classes[cq].methods.get("__init__")
        return None

    # -- events ---------------------------------------------------------
    def _acquire_event(
        self, lock: str, line: int, col: int, held: Tuple[str, ...]
    ) -> None:
        self.fn.acquires.append((lock, line, col))
        for frm in held:
            if frm == lock and self.m.lock_kinds.get(frm) == "RLock":
                continue  # re-entrant re-acquire is legal
            self.fn.edges.append((frm, lock, line))

    def _handle_call(self, node: ast.Call, held: Tuple[str, ...]) -> None:
        line, col = node.lineno, node.col_offset
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            lock = self._resolve_lock(func.value)
            if lock is not None:
                if not _nonblocking_acquire(node):
                    self._acquire_event(lock, line, col, held)
                    if self.fn.is_async:
                        self.fn.lock_waits.append((line, col, lock))
                return
        dotted = _dotted(func)
        desc = _blocking_desc(dotted)
        if (
            desc is not None
            and dotted is not None
            and dotted.split(".")[0] not in self.fn.local_names
        ):
            self.fn.blocking.append((line, col, desc))
        if isinstance(func, ast.Attribute):
            self._check_submit(node, func)
        callee = self._resolve_call(func)
        if callee is not None and callee in self.m.functions:
            self.fn.calls.append((callee, line, col, held))

    def _check_submit(self, node: ast.Call, func: ast.Attribute) -> None:
        meth = func.attr
        is_pool = (
            meth in _POOL_SUBMIT_METHODS
            and self._type_of(func.value) == _PROCESS_POOL
        )
        is_engine = meth in _ENGINE_SUBMIT_METHODS
        if not (is_pool or is_engine):
            return
        line, col = node.lineno, node.col_offset
        messages: List[str] = []
        args = list(node.args)
        if args:
            worker = args[0]
            if isinstance(worker, ast.Attribute):
                base_t = self._type_of(worker.value)
                if base_t is not None and base_t in self.m.classes:
                    owner = self.m.classes[base_t]
                    if owner.lock_attrs:
                        locks = ", ".join(sorted(owner.lock_attrs))
                        messages.append(
                            f"bound method .{worker.attr} pickles its whole "
                            f"{owner.name} instance, including lock "
                            f"attribute(s) {locks}"
                        )
        payloads = args[1:] + [kw.value for kw in node.keywords]
        for payload in payloads:
            messages.extend(self._escape_hazards(payload))
        for message in _dedupe(messages):
            self.fn.escapes.append(
                (line, col, f"process worker captures shared state: {message}")
            )

    def _escape_hazards(self, expr: ast.AST) -> List[str]:
        out: List[str] = []
        for sub in ast.walk(expr):
            if isinstance(sub, (ast.Name, ast.Attribute)):
                lock = self._resolve_lock(sub)
                if lock is not None:
                    out.append(
                        f"threading lock {lock} cannot cross a process "
                        "boundary"
                    )
                    continue
                t = self._type_of(sub)
                if t is not None and t in self.m.classes:
                    owner = self.m.classes[t]
                    if owner.name == "TelemetryRegistry":
                        out.append(
                            "TelemetryRegistry is process-local; "
                            "worker-side mutations are silently lost"
                        )
                    elif owner.lock_attrs:
                        locks = ", ".join(sorted(owner.lock_attrs))
                        out.append(
                            f"{owner.name} instance holds lock attribute(s) "
                            f"{locks} and is not safely picklable"
                        )
            elif isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted is None:
                    continue
                if dotted in _LOCK_CTORS:
                    out.append(
                        "freshly constructed threading lock cannot cross a "
                        "process boundary"
                    )
                elif dotted.split(".")[-1] == "get_registry":
                    out.append(
                        "TelemetryRegistry is process-local; worker-side "
                        "mutations are silently lost"
                    )
                elif dotted in ("socket.socket", "socket.create_connection"):
                    out.append("open socket cannot be pickled into a worker")
        return out

    def _handle_write(self, node: ast.stmt, held: Tuple[str, ...]) -> None:
        if self.ci is None:
            return
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr not in self.ci.lock_attrs
            ):
                self.fn.writes.append(
                    (
                        target.attr,
                        target.lineno,
                        target.col_offset,
                        held[-1] if held else None,
                    )
                )

    # -- traversal ------------------------------------------------------
    def _visit(self, node: ast.AST, held: Tuple[str, ...]) -> None:
        if isinstance(node, _FUNC_DEFS + (ast.ClassDef, ast.Lambda)):
            return  # separate scope, walked on its own
        if isinstance(node, ast.With):
            self._visit_with(node, held, is_async=False)
            return
        if isinstance(node, ast.AsyncWith):
            self._visit_with(node, held, is_async=True)
            return
        if isinstance(node, ast.Await) and held and self.fn.is_async:
            self.fn.awaits.append((node.lineno, node.col_offset, held[-1]))
        if isinstance(node, ast.Call):
            self._handle_call(node, held)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._handle_write(node, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _visit_with(
        self,
        node: "ast.With | ast.AsyncWith",
        held: Tuple[str, ...],
        is_async: bool,
    ) -> None:
        cur = list(held)
        for item in node.items:
            self._visit(item.context_expr, tuple(cur))
            if is_async:
                continue  # ``async with`` targets are asyncio primitives
            lock = self._resolve_lock(item.context_expr)
            if lock is not None:
                line = item.context_expr.lineno
                col = item.context_expr.col_offset
                self._acquire_event(lock, line, col, tuple(cur))
                if self.fn.is_async:
                    self.fn.lock_waits.append((line, col, lock))
                cur.append(lock)
        for stmt in node.body:
            self._visit(stmt, tuple(cur))


def _dedupe(items: Sequence[str]) -> List[str]:
    seen: Set[str] = set()
    out: List[str] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


# ----------------------------------------------------------------------
# Fixpoints over the call graph
# ----------------------------------------------------------------------
def _lock_graph(
    model: _Model,
) -> Dict[Tuple[str, str], Tuple[str, int, str]]:
    """Acquisition-order edges ``(from, to) -> (path, line, via)``.

    Lexical edges come straight from nested ``with`` blocks;
    call-mediated edges connect every held lock to every lock in the
    callee's *transitive* acquisition set (a monotone fixpoint)."""
    edges: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
    for q in sorted(model.functions):
        f = model.functions[q]
        for (frm, to, line) in f.edges:
            edges.setdefault((frm, to), (f.path, line, q))
    acq: Dict[str, Set[str]] = {
        q: {lock for (lock, _l, _c) in model.functions[q].acquires}
        for q in model.functions
    }
    changed = True
    while changed:
        changed = False
        for q in sorted(model.functions):
            cur = acq[q]
            for (callee, _line, _col, _held) in model.functions[q].calls:
                extra = acq.get(callee)
                if extra is not None and not extra <= cur:
                    cur |= extra
                    changed = True
    for q in sorted(model.functions):
        f = model.functions[q]
        for (callee, line, _col, held) in f.calls:
            if not held:
                continue
            for to in sorted(acq.get(callee, set())):
                for frm in held:
                    if frm == to and model.lock_kinds.get(frm) == "RLock":
                        continue
                    edges.setdefault(
                        (frm, to), (f.path, line, f"{q} -> {callee}")
                    )
    return edges


def _find_cycles(
    edges: Dict[Tuple[str, str], Tuple[str, int, str]],
) -> List[LockOrderCycle]:
    """Enumerate (up to :data:`_MAX_CYCLES`) minimal lock-order cycles,
    peeling one witnessed edge after each find so distinct cycles
    surface deterministically."""
    nodes = sorted({n for pair in edges for n in pair})
    succ: Dict[str, List[str]] = {n: [] for n in nodes}
    for (frm, to) in sorted(edges):
        succ[frm].append(to)
    work: Dict[str, Tuple[str, ...]] = {
        n: tuple(targets) for n, targets in succ.items()
    }
    cycles: List[LockOrderCycle] = []
    while len(cycles) < _MAX_CYCLES:
        cyc = find_minimal_cycle(work)
        if cyc is None:
            break
        sites = []
        for i, frm in enumerate(cyc):
            to = cyc[(i + 1) % len(cyc)]
            path, line, via = edges[(frm, to)]
            sites.append(f"{path}:{line} ({via})")
        cycles.append(LockOrderCycle(locks=tuple(cyc), sites=tuple(sites)))
        last, first = cyc[-1], cyc[0]
        work[last] = tuple(x for x in work[last] if x != first)
    return cycles


def _blocking_witness(model: _Model) -> Dict[str, Tuple[str, ...]]:
    """May-block witness chains: function qualname -> human-readable
    chain ending at a concrete blocking call site."""
    witness: Dict[str, Tuple[str, ...]] = {}
    for q in sorted(model.functions):
        f = model.functions[q]
        if f.blocking:
            line, _col, desc = min(f.blocking)
            witness[q] = (f"{desc} at {f.path}:{line}",)
    changed = True
    while changed:
        changed = False
        for q in sorted(model.functions):
            if q in witness:
                continue
            for (callee, _line, _col, _held) in model.functions[q].calls:
                tail = witness.get(callee)
                if tail is not None:
                    chain: Tuple[str, ...] = (callee,) + tail
                    if len(chain) > _MAX_CHAIN:
                        chain = chain[:2] + ("...",) + chain[-2:]
                    witness[q] = chain
                    changed = True
                    break
    return witness


def _guarded_functions(model: _Model) -> Dict[str, bool]:
    """The "caller holds the lock" fixpoint: a function is guarded iff
    it has at least one analyzed call site and *every* site either
    holds a lock lexically or sits in a guarded function."""
    sites: Dict[str, List[Tuple[str, bool]]] = {}
    for q in sorted(model.functions):
        for (callee, _line, _col, held) in model.functions[q].calls:
            sites.setdefault(callee, []).append((q, bool(held)))
    guarded: Dict[str, bool] = {q: False for q in model.functions}
    changed = True
    while changed:
        changed = False
        for q in sorted(model.functions):
            if guarded[q]:
                continue
            entry = sites.get(q)
            if entry and all(
                held or guarded[caller] for (caller, held) in entry
            ):
                guarded[q] = True
                changed = True
    return guarded


# ----------------------------------------------------------------------
# Finding assembly
# ----------------------------------------------------------------------
def _rep201_findings(
    cycles: Sequence[LockOrderCycle],
    edges: Dict[Tuple[str, str], Tuple[str, int, str]],
) -> List[ConcurrencyFinding]:
    out: List[ConcurrencyFinding] = []
    for cyc in cycles:
        first_to = cyc.locks[1] if len(cyc.locks) > 1 else cyc.locks[0]
        path, line, via = edges[(cyc.locks[0], first_to)]
        out.append(
            ConcurrencyFinding(
                path=path,
                line=line,
                col=0,
                rule_id="REP201",
                symbol=via,
                message=(
                    f"lock-order cycle: {cyc.describe()} "
                    f"(edge sites: {'; '.join(cyc.sites)})"
                ),
            )
        )
    return out


def _async_findings(
    model: _Model, witness: Dict[str, Tuple[str, ...]]
) -> List[ConcurrencyFinding]:
    out: List[ConcurrencyFinding] = []
    for q in sorted(model.functions):
        f = model.functions[q]
        if not f.is_async:
            continue
        emitted: Set[Tuple[int, int]] = set()
        for (line, col, desc) in sorted(f.blocking):
            out.append(
                ConcurrencyFinding(
                    f.path, line, col, "REP202", q,
                    f"blocking {desc} inside async def stalls the event "
                    "loop; hand off via await loop.run_in_executor(...)",
                )
            )
            emitted.add((line, col))
        for (line, col, lock) in sorted(f.lock_waits):
            if (line, col) in emitted:
                continue
            out.append(
                ConcurrencyFinding(
                    f.path, line, col, "REP202", q,
                    f"sync wait on threading lock {lock} inside async def "
                    "blocks the event loop",
                )
            )
            emitted.add((line, col))
        for (callee, line, col, _held) in f.calls:
            if (line, col) in emitted:
                continue
            tail = witness.get(callee)
            if tail is None or model.functions[callee].is_async:
                continue  # async callees report at their own body
            chain = (callee,) + tail if tail[0] != callee else tail
            out.append(
                ConcurrencyFinding(
                    f.path, line, col, "REP202", q,
                    "call reaches blocking " + " -> ".join(chain),
                )
            )
            emitted.add((line, col))
        for (line, col, lock) in sorted(f.awaits):
            out.append(
                ConcurrencyFinding(
                    f.path, line, col, "REP204", q,
                    f"await while holding {lock}; the lock stays held "
                    "across the suspension point",
                )
            )
    return out


def _escape_findings(model: _Model) -> List[ConcurrencyFinding]:
    out: List[ConcurrencyFinding] = []
    for q in sorted(model.functions):
        f = model.functions[q]
        for (line, col, message) in f.escapes:
            out.append(
                ConcurrencyFinding(f.path, line, col, "REP203", q, message)
            )
    return out


def _write_findings(
    model: _Model, guarded: Dict[str, bool]
) -> List[ConcurrencyFinding]:
    by_key: Dict[
        Tuple[str, str], List[Tuple[_FuncInfo, int, int, Optional[str]]]
    ] = {}
    for q in sorted(model.functions):
        f = model.functions[q]
        if f.cls is None or f.name in _INIT_NAMES:
            continue
        for (attr, line, col, lex_lock) in f.writes:
            guard: Optional[str] = lex_lock
            if guard is None and guarded[f.qualname]:
                guard = "<caller-held lock>"
            by_key.setdefault((f.cls, attr), []).append((f, line, col, guard))
    out: List[ConcurrencyFinding] = []
    for key in sorted(by_key):
        entries = by_key[key]
        guarded_writes = [e for e in entries if e[3] is not None]
        unguarded = [e for e in entries if e[3] is None]
        if not (guarded_writes and unguarded):
            continue
        exemplar_fn, ex_line, _ex_col, ex_lock = guarded_writes[0]
        lock_name = (
            ex_lock if ex_lock != "<caller-held lock>" else "a caller-held lock"
        )
        _cls, attr = key
        for (f, line, col, _guard) in unguarded:
            out.append(
                ConcurrencyFinding(
                    f.path, line, col, "REP205", f.qualname,
                    f"write to self.{attr} with no lock held; "
                    f"{exemplar_fn.qualname} (line {ex_line}) guards the "
                    f"same attribute with {lock_name}",
                )
            )
    return out


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def analyze_sources(sources: Mapping[str, str]) -> ConcurrencyReport:
    """Run the whole-program pass over ``{path: source}`` pairs."""
    model = _Model()
    trees: Dict[str, ast.Module] = {}
    findings: List[ConcurrencyFinding] = []
    for path in sorted(sources):
        text = sources[path]
        model.sources[path] = text.splitlines()
        try:
            trees[path] = ast.parse(text, filename=path)
        except SyntaxError as exc:
            findings.append(
                ConcurrencyFinding(
                    path, exc.lineno or 0, exc.offset or 0, "REP000",
                    "<module>", f"syntax error: {exc.msg}",
                )
            )
    for path in sorted(trees):
        _collect_module(model, path, trees[path])
    _annotate_classes(model)
    for q in sorted(model.functions):
        _BodyWalker(model, model.functions[q]).run()

    edge_map = _lock_graph(model)
    cycles = _find_cycles(edge_map)
    witness = _blocking_witness(model)
    guarded = _guarded_functions(model)

    findings.extend(_rep201_findings(cycles, edge_map))
    findings.extend(_async_findings(model, witness))
    findings.extend(_escape_findings(model))
    findings.extend(_write_findings(model, guarded))

    kept: List[ConcurrencyFinding] = []
    for v in sorted(set(findings)):
        lines = model.sources.get(v.path, [])
        text = lines[v.line - 1] if 0 < v.line <= len(lines) else ""
        if not line_suppresses(text, v.rule_id):
            kept.append(v)

    return ConcurrencyReport(
        num_modules=len(sources),
        num_functions=len(model.functions),
        locks=tuple(
            (lock_id, model.lock_kinds[lock_id])
            for lock_id in sorted(model.lock_kinds)
        ),
        edges=tuple(
            (frm, to, f"{edge_map[(frm, to)][0]}:{edge_map[(frm, to)][1]}")
            for (frm, to) in sorted(edge_map)
        ),
        cycles=tuple(cycles),
        findings=tuple(kept),
    )


def analyze_concurrency(paths: Sequence[str]) -> ConcurrencyReport:
    """Run the pass over files and/or directory trees (``.py`` only),
    walking exactly like the lint engine."""
    sources: Dict[str, str] = {}
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            sources[path] = fh.read()
    return analyze_sources(sources)


# ----------------------------------------------------------------------
# Suppression baseline
# ----------------------------------------------------------------------
def load_baseline(path: str) -> List[Dict[str, str]]:
    """Load a committed suppression baseline.

    Schema: ``{"schema": 1, "suppressions": [{"rule", "path",
    "symbol", "reason"}, ...]}``; every field is required so each
    suppression carries its justification."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("schema") != 1:
        raise ValueError(f"{path}: expected baseline schema 1")
    entries = payload.get("suppressions")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'suppressions' must be a list")
    out: List[Dict[str, str]] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: suppression #{i} is not an object")
        for field_name in ("rule", "path", "symbol", "reason"):
            if not isinstance(entry.get(field_name), str):
                raise ValueError(
                    f"{path}: suppression #{i} missing string field "
                    f"{field_name!r}"
                )
        out.append({k: str(entry[k]) for k in ("rule", "path", "symbol",
                                               "reason")})
    return out


def apply_baseline(
    findings: Sequence[ConcurrencyFinding],
    entries: Sequence[Mapping[str, str]],
) -> Tuple[List[ConcurrencyFinding], List[Dict[str, str]]]:
    """Split findings against a baseline.

    Returns ``(new, stale)``: findings not covered by any entry, and
    entries matching no current finding.  Stale entries are an error
    in the CLI gate — the baseline must never silently grow *or* rot.
    """
    baseline_keys = {(e["rule"], e["path"], e["symbol"]) for e in entries}
    finding_keys = {f.baseline_key() for f in findings}
    new = [f for f in findings if f.baseline_key() not in baseline_keys]
    stale = [
        dict(e)
        for e in entries
        if (e["rule"], e["path"], e["symbol"]) not in finding_keys
    ]
    return new, stale


# ----------------------------------------------------------------------
# Seeded known-bad fixtures (each must trip its rule; pinned in
# tests/test_static_concurrency.py)
# ----------------------------------------------------------------------
CONCURRENCY_FIXTURES: Dict[str, str] = {
    "REP201": (
        "import threading\n"
        "a = threading.Lock()\n"
        "b = threading.Lock()\n"
        "def first():\n"
        "    with a:\n"
        "        with b:\n"
        "            pass\n"
        "def second():\n"
        "    with b:\n"
        "        with a:\n"
        "            pass\n"
    ),
    "REP202": (
        "import time\n"
        "async def poll():\n"
        "    time.sleep(1)\n"
    ),
    "REP203": (
        "import threading\n"
        "from concurrent.futures import ProcessPoolExecutor\n"
        "class Pipeline:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def work(self):\n"
        "        return 1\n"
        "def run():\n"
        "    pool = ProcessPoolExecutor()\n"
        "    pipe = Pipeline()\n"
        "    return pool.submit(pipe.work)\n"
    ),
    "REP204": (
        "import threading\n"
        "_lock = threading.Lock()\n"
        "async def refresh(conn):\n"
        "    with _lock:\n"
        "        await conn.fetch()\n"
    ),
    "REP205": (
        "import threading\n"
        "class Cache:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.hits = 0\n"
        "    def record(self):\n"
        "        with self._lock:\n"
        "            self.hits += 1\n"
        "    def sloppy(self):\n"
        "        self.hits = 0\n"
    ),
}
