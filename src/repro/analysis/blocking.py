"""Analytic blocking probabilities under uniform random node faults.

Closed-form expectations that the simulations can be checked against:

- the probability that a fixed one-round route survives ``f`` uniform
  node faults is hypergeometric in the number of nodes the route
  visits;
- averaging over source/destination pairs yields the expected fraction
  of pairs that remain one-round reachable — the quantity behind the
  routing-table round-usage histograms and (at the representative
  level) the density of the matrix ``R_1`` that Section 6.2 reports.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..mesh.geometry import Mesh

__all__ = [
    "route_survival_probability",
    "expected_one_round_reachable_fraction",
    "expected_pair_survival",
]


def route_survival_probability(N: int, route_nodes: int, f: int) -> float:
    """P[no fault on a fixed set of ``route_nodes`` nodes | f uniform
    node faults among N].

    Hypergeometric: C(N - route_nodes, f) / C(N, f).
    """
    if not 0 <= f <= N:
        raise ValueError("need 0 <= f <= N")
    if route_nodes < 0 or route_nodes > N:
        raise ValueError("bad route size")
    if f > N - route_nodes:
        return 0.0
    # Product form avoids huge binomials:
    # C(N-r, f) / C(N, f) = prod_{i < r} (N - f - i) / (N - i).
    p = 1.0
    for i in range(route_nodes):
        p *= (N - f - i) / (N - i)
    return p


def _mean_abs_difference(n: int) -> float:
    """E|X - Y| for X, Y independent uniform on 0..n-1: (n^2 - 1)/(3n)."""
    return (n * n - 1) / (3.0 * n)


def expected_route_length(mesh: Mesh) -> float:
    """Expected number of nodes on a dimension-ordered route between
    two independent uniform nodes: 1 + sum_j E|X_j - Y_j|."""
    return 1.0 + sum(_mean_abs_difference(n) for n in mesh.widths)


def expected_one_round_reachable_fraction(
    mesh: Mesh,
    f: int,
    samples: int = 2000,
    seed: int = 0,
    condition_endpoints_good: bool = False,
) -> float:
    """E[fraction of ordered pairs (v, w) with the route v -> w
    fault-free], for f uniform node faults.

    The exact expectation is an average of hypergeometric terms over
    the route-length distribution; we sample source/destination pairs
    (the route length depends only on per-dimension coordinate
    differences) and average the closed-form survival probability —
    no fault sampling, so the estimate converges fast.

    With ``condition_endpoints_good`` the probability conditions on
    both endpoints being good (``C(N-r, f) / C(N-2, f)``), which is
    the quantity to compare against measurements over survivor pairs.
    """
    rng = np.random.default_rng(seed)
    N = mesh.num_nodes
    total = 0.0
    for _ in range(samples):
        nodes_on_route = 1
        for n in mesh.widths:
            a, b = rng.integers(n), rng.integers(n)
            nodes_on_route += abs(int(a) - int(b))
        p = route_survival_probability(N, nodes_on_route, f)
        if condition_endpoints_good:
            endpoints = min(2, nodes_on_route)
            denom = route_survival_probability(N, endpoints, f)
            p = p / denom if denom > 0 else 0.0
        total += p
    return total / samples


def expected_pair_survival(
    mesh: Mesh, f: int, v: Sequence[int], w: Sequence[int]
) -> float:
    """Survival probability of the specific route v -> w under f
    uniform faults (both endpoints included)."""
    nodes_on_route = 1 + sum(abs(int(a) - int(b)) for a, b in zip(v, w))
    return route_survival_probability(mesh.num_nodes, nodes_on_route, f)
