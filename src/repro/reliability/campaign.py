"""Monte Carlo reliability campaigns: renewal faults in, SLO verdict out.

One campaign answers the fleet question the paper's one-shot
evaluation cannot: *what fault rate can this mesh sustain at a given
survivor-connectivity floor?*  Per trial ``t`` (seeded from
``(seed, tag, t)`` like every sweep in the repo):

1. sample a fail/repair :class:`~repro.reliability.FaultTimeline`
   from the configured arrival/repair processes;
2. walk its piecewise-constant down-sets; for each interval, compile
   the fault configuration through the PR-4
   :class:`~repro.service.ReconfigurationCompiler` — the full
   degradation ladder, with the content-addressed artifact cache
   turning repaired/re-failed (recurring) configs into cache hits;
3. score survivor connectivity: the largest connected component of
   non-faulty, non-lamb nodes as a fraction of the whole machine; an
   interval is *up* when the compile succeeded and connectivity meets
   the SLO floor (a failed compile — ladder exhausted — is down time);
4. time-weight up intervals into per-trial availability.

The campaign pools trials (fanned over the
:class:`~repro.experiments.parallel.TrialEngine`, thread or process
executor) into a :class:`CampaignReport` with availability, observed
MTTF/MTTR, and a Wilson-bounded :class:`~repro.reliability.SLOVerdict`
— plus engine-level accounting proving no trial chunk was lost or
double-counted.

Determinism: the report's JSON is a pure function of the
:class:`CampaignConfig` — identical bytes for any job count and either
executor.  Cache-hit counts are included *per trial* (each trial owns
a fresh in-memory store, so its hit pattern is seeded-deterministic);
wall-clock and executor topology never enter the report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.reconfigure import largest_good_component
from ..experiments.parallel import RunAccounting, resolve_engine, worker_memo
from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh
from ..mesh.torus import Torus
from ..obs import get_registry
from ..routing.ordering import ascending, repeated
from ..service.compiler import ReconfigurationCompiler
from ..service.errors import CompileError
from ..service.store import ArtifactStore
from .processes import arrival_process, generate_timeline, repair_model
from .slo import SLOTarget, SLOVerdict

__all__ = ["CampaignConfig", "CampaignReport", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign depends on (picklable primitives only —
    the worker rebuilds mesh/processes from this, so the config *is*
    the campaign's identity)."""

    widths: Tuple[int, ...] = (8, 8)
    torus: bool = False
    k: int = 2
    arrival: str = "poisson"  # "poisson" | "weibull"
    rate: float = 1.0  # Poisson: faults per time unit
    shape: float = 1.0  # Weibull shape
    scale: float = 1.0  # Weibull scale
    repair: str = "deterministic"  # "deterministic" | "exponential"
    mttr: float = 0.25
    horizon: float = 4.0
    trials: int = 8
    seed: int = 0
    tag: int = 0
    method: str = "bipartite"
    lamb_budget: Optional[int] = None
    max_extra_rounds: int = 1
    slo: SLOTarget = field(default_factory=SLOTarget)

    def __post_init__(self) -> None:
        widths = tuple(int(w) for w in self.widths)
        if len(widths) < 2 or any(w < 2 for w in widths):
            raise ValueError(f"bad mesh widths {self.widths}")
        object.__setattr__(self, "widths", widths)
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not self.horizon > 0.0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        # Fail fast on bad process parameters (the factories validate).
        arrival_process(self.arrival, self.rate, self.shape, self.scale)
        repair_model(self.repair, self.mttr)

    def build_mesh(self) -> Mesh:
        return Torus(self.widths) if self.torus else Mesh(self.widths)

    def mesh_spec(self) -> str:
        spec = "x".join(str(w) for w in self.widths)
        return f"torus:{spec}" if self.torus else spec

    def as_dict(self) -> Dict[str, Any]:
        return {
            "mesh": self.mesh_spec(),
            "k": self.k,
            "arrival": self.arrival,
            "rate": self.rate,
            "shape": self.shape,
            "scale": self.scale,
            "repair": self.repair,
            "mttr": self.mttr,
            "horizon": self.horizon,
            "trials": self.trials,
            "seed": self.seed,
            "tag": self.tag,
            "method": self.method,
            "lamb_budget": self.lamb_budget,
            "max_extra_rounds": self.max_extra_rounds,
            "slo": {
                "connectivity": self.slo.connectivity,
                "availability": self.slo.availability,
            },
        }


def _campaign_trial_worker(
    payload: Dict[str, Any], t: int
) -> Dict[str, Any]:
    """One trial: timeline -> per-interval compile -> availability.

    Module-level and pure so it fans over either executor; the mesh is
    reused per worker via :func:`worker_memo` (read-only, safe to
    share across threads), but the compiler and its artifact store are
    *fresh per trial* — the compiler adopts escalated orderings across
    compiles, so sharing one across trials would make results depend
    on which trials co-resided in a worker and break bit-identity.
    """
    cfg: CampaignConfig = payload["config"]
    mesh = worker_memo(
        ("reliability-mesh", cfg.mesh_spec()), cfg.build_mesh
    )
    arrival = arrival_process(cfg.arrival, cfg.rate, cfg.shape, cfg.scale)
    repair = repair_model(cfg.repair, cfg.mttr)
    rng = np.random.default_rng((cfg.seed, cfg.tag, t))
    timeline = generate_timeline(mesh, arrival, repair, cfg.horizon, rng)
    compiler = ReconfigurationCompiler(
        mesh,
        repeated(ascending(mesh.d), cfg.k),
        store=ArtifactStore(),
        method=cfg.method,
        lamb_budget=cfg.lamb_budget,
        max_extra_rounds=cfg.max_extra_rounds,
    )
    up_time = 0.0
    down_time = 0.0
    epochs = 0
    epochs_up = 0
    compiles = 0
    cache_hits = 0
    degraded = 0
    compile_failures = 0
    worst_lambs = 0
    min_connectivity = 1.0
    weighted_connectivity = 0.0
    max_concurrent_faults = 0
    for t0, t1, down in timeline.intervals():
        weight = t1 - t0
        epochs += 1
        max_concurrent_faults = max(max_concurrent_faults, len(down))
        if not down:
            connectivity = 1.0
        else:
            faults = FaultSet(mesh, down)
            try:
                artifact, source = compiler.compile(faults)
            except CompileError:
                compile_failures += 1
                connectivity = 0.0
            else:
                compiles += 1
                if source in ("current", "memory", "store"):
                    cache_hits += 1
                if artifact.degraded:
                    degraded += 1
                worst_lambs = max(worst_lambs, artifact.num_lambs)
                best, _rest = largest_good_component(artifact.result.faults)
                alive = best - artifact.result.lambs
                connectivity = len(alive) / mesh.num_nodes
        min_connectivity = min(min_connectivity, connectivity)
        weighted_connectivity += connectivity * weight
        if connectivity >= cfg.slo.connectivity:
            up_time += weight
            epochs_up += 1
        else:
            down_time += weight
    return {
        "trial": t,
        "availability": up_time / cfg.horizon,
        "up_time": up_time,
        "down_time": down_time,
        "epochs": epochs,
        "epochs_up": epochs_up,
        "faults": timeline.num_faults,
        "repairs": timeline.num_repairs,
        "max_concurrent_faults": max_concurrent_faults,
        "observed_mttf": timeline.observed_mttf,
        "observed_mttr": timeline.observed_mttr,
        "repair_latencies": list(timeline.repair_durations),
        "compiles": compiles,
        "cache_hits": cache_hits,
        "degraded_epochs": degraded,
        "compile_failures": compile_failures,
        "worst_lambs": worst_lambs,
        "min_connectivity": min_connectivity,
        "mean_connectivity": weighted_connectivity / cfg.horizon,
    }


@dataclass
class CampaignReport:
    """Pooled campaign results + SLO verdict + engine accounting."""

    config: CampaignConfig
    verdict: SLOVerdict
    trials: List[Dict[str, Any]]
    accounting: RunAccounting

    # ------------------------------------------------------------------
    def _mean(self, key: str) -> Optional[float]:
        values = [
            row[key] for row in self.trials if row.get(key) is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    @property
    def availability(self) -> float:
        return self.verdict.availability

    @property
    def fleet_mttf(self) -> Optional[float]:
        return self._mean("observed_mttf")

    @property
    def fleet_mttr(self) -> Optional[float]:
        return self._mean("observed_mttr")

    @property
    def total_faults(self) -> int:
        return sum(row["faults"] for row in self.trials)

    @property
    def total_compile_failures(self) -> int:
        return sum(row["compile_failures"] for row in self.trials)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic report body: a pure function of the config —
        no wall-clock, no executor/job topology, so thread and process
        runs of the same config serialize to identical bytes."""

        def r(x: Optional[float]) -> Optional[float]:
            return None if x is None else round(x, 9)

        rows = []
        for row in self.trials:
            out = dict(row)
            for key in (
                "availability", "up_time", "down_time", "observed_mttf",
                "observed_mttr", "min_connectivity", "mean_connectivity",
            ):
                out[key] = r(out[key])
            out["repair_latencies"] = [
                round(x, 9) for x in out["repair_latencies"]
            ]
            rows.append(out)
        return {
            "config": self.config.as_dict(),
            "verdict": self.verdict.as_dict(),
            "fleet": {
                "availability": r(self.availability),
                "mttf": r(self.fleet_mttf),
                "mttr": r(self.fleet_mttr),
                "faults": self.total_faults,
                "compile_failures": self.total_compile_failures,
                "min_connectivity": r(
                    min(row["min_connectivity"] for row in self.trials)
                ),
            },
            "accounting": {
                "trials_expected": self.accounting.trials_expected,
                "trials_completed": self.accounting.trials_completed,
                "all_accounted": self.accounting.all_accounted,
            },
            "trials": rows,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary_lines(self) -> List[str]:
        """Human-readable SLO report for the CLI."""
        v = self.verdict
        cfg = self.config
        process = (
            f"poisson(rate={cfg.rate})"
            if cfg.arrival == "poisson"
            else f"weibull(shape={cfg.shape}, scale={cfg.scale})"
        )
        status = (
            "PASS (confident)" if v.confident_pass
            else "FAIL (confident)" if v.confident_fail
            else ("PASS (inconclusive — run more trials)" if v.met
                  else "FAIL (inconclusive — run more trials)")
        )
        lines = [
            f"reliability campaign: {cfg.mesh_spec()} k={cfg.k} "
            f"{process} repair={cfg.repair}(mttr={cfg.mttr}) "
            f"horizon={cfg.horizon} trials={cfg.trials}",
            f"  availability {v.availability:.6f} "
            f"(wilson [{v.lower:.6f}, {v.upper:.6f}], "
            f"epochs {v.epochs_up}/{v.epochs_total} up)",
            f"  faults {self.total_faults}, "
            f"mttf {self.fleet_mttf if self.fleet_mttf is None else round(self.fleet_mttf, 4)}, "
            f"mttr {self.fleet_mttr if self.fleet_mttr is None else round(self.fleet_mttr, 4)}, "
            f"compile failures {self.total_compile_failures}",
            f"  SLO availability>={v.target.availability} @ "
            f"connectivity>={v.target.connectivity}: {status}",
            f"  accounting: {self.accounting.trials_completed}/"
            f"{self.accounting.trials_expected} trials, "
            f"all_accounted={self.accounting.all_accounted}",
        ]
        return lines


def run_campaign(
    config: CampaignConfig,
    jobs: Optional[int] = None,
    executor: Optional[str] = None,
) -> CampaignReport:
    """Run one campaign, fanned over the trial engine.

    ``jobs``/``executor`` pick the fan-out (``None`` = ambient engine /
    environment); they change wall-clock only, never the report.  The
    run is instrumented into the ambient telemetry registry: a
    campaign span, per-epoch up/down counters, and a repair-latency
    histogram (recorded by the parent from the returned rows — worker
    processes do not share the registry).

    Raises :class:`~repro.experiments.parallel.WorkerCrashError` if a
    chunk cannot be completed; short of that, the returned report's
    ``accounting`` proves every trial was counted exactly once.
    """
    reg = get_registry()
    engine, owned = resolve_engine(jobs, executor)
    try:
        with reg.span(
            "reliability.campaign",
            mesh=config.mesh_spec(),
            trials=config.trials,
            arrival=config.arrival,
        ):
            rows = engine.run_trials(
                _campaign_trial_worker,
                config.trials,
                {"config": config},
            )
        accounting = engine.last_run
    finally:
        if owned:
            engine.close()
    rows = [row for row in rows if row is not None]
    epochs_up = sum(row["epochs_up"] for row in rows)
    epochs_total = sum(row["epochs"] for row in rows)
    up_time = sum(row["up_time"] for row in rows)
    availability = (
        up_time / (config.horizon * len(rows)) if rows else 0.0
    )
    reg.inc("reliability_trials_total", len(rows))
    reg.inc("reliability_epochs_up_total", epochs_up)
    reg.inc("reliability_epochs_down_total", epochs_total - epochs_up)
    reg.inc(
        "reliability_faults_total",
        sum(row["faults"] for row in rows),
    )
    reg.inc(
        "reliability_compile_failures_total",
        sum(row["compile_failures"] for row in rows),
    )
    for row in rows:
        for latency in row["repair_latencies"]:
            reg.observe("reliability_repair_latency", latency)
    verdict = SLOVerdict.judge(
        config.slo, availability, epochs_up, epochs_total
    )
    return CampaignReport(
        config=config,
        verdict=verdict,
        trials=rows,
        accounting=accounting,
    )
