"""Fleet-scale reliability campaigns.

Turns the repro from a one-shot fault evaluator into a fleet
testbed: stochastic fault arrival/repair processes
(:mod:`repro.reliability.processes`) generate renewal-process fault
timelines; the Monte Carlo campaign engine
(:mod:`repro.reliability.campaign`) drives every sampled fault
configuration through the PR-4 reconfiguration compiler (content-
addressed cache and degradation ladder included) and scores survivor
connectivity per epoch; verdicts (:mod:`repro.reliability.slo`) carry
Wilson-interval confidence bounds.

Entry points: :func:`run_campaign` (library), ``repro reliability``
(CLI), ``make reliability-smoke`` (CI determinism gate).  See
``docs/reliability.md``.
"""

from .campaign import CampaignConfig, CampaignReport, run_campaign
from .processes import (
    ArrivalProcess,
    DeterministicRepair,
    ExponentialRepair,
    FaultTimeline,
    FaultTransition,
    PoissonProcess,
    RepairModel,
    WeibullProcess,
    arrival_process,
    generate_timeline,
    repair_model,
)
from .slo import SLOTarget, SLOVerdict, wilson_interval

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "WeibullProcess",
    "RepairModel",
    "DeterministicRepair",
    "ExponentialRepair",
    "FaultTransition",
    "FaultTimeline",
    "generate_timeline",
    "arrival_process",
    "repair_model",
    "SLOTarget",
    "SLOVerdict",
    "wilson_interval",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
]
