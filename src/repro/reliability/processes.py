"""Stochastic fault arrival and repair processes.

The paper's evaluation (Section 8) measures lamb counts against
*one-shot* fault sets: kill ``f`` nodes, reconfigure once, count the
lambs.  A fleet does not fail that way — routers die at a *rate* and
get repaired with an MTTR, so the machine's fault set is a renewal
process over time.  This module supplies the stochastic layer:

- :class:`PoissonProcess` / :class:`WeibullProcess` — inter-arrival
  distributions for fault *arrivals* (Poisson is the classic constant
  hazard; Weibull's ``shape`` bends the hazard for infant-mortality
  ``shape < 1`` or wear-out ``shape > 1`` fleets, the model
  arXiv:1301.5993 assumes for router failures);
- :class:`DeterministicRepair` / :class:`ExponentialRepair` — MTTR
  models for the repair side;
- :func:`generate_timeline` — an event-driven sampler that turns one
  ``(arrival, repair)`` pair into a :class:`FaultTimeline`: a sorted
  sequence of fail/repair :class:`FaultTransition`\\ s over a horizon,
  with the piecewise-constant down-set exposed via
  :meth:`FaultTimeline.intervals`;
- :meth:`FaultTimeline.to_fault_schedule` — the bridge to the PR-1
  :class:`~repro.wormhole.chaos.ChaosEngine`: fail transitions become
  time-stamped :class:`~repro.wormhole.chaos.FaultEvent`\\ s (the live
  simulator has no repair notion — hardware stays dead — so repairs
  are dropped in the translation and only matter to the availability
  estimator).

Determinism contract: every draw comes from the caller's seeded
``np.random.Generator`` in a *fixed order* per fault (inter-arrival,
then victim, then repair duration), so a timeline is a pure function
of ``(process parameters, seed)`` — the campaign layer derives that
generator from ``(seed, tag, t)`` exactly like every other trial in
the repo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..mesh.geometry import Mesh, Node
from ..wormhole.chaos import FaultEvent, FaultSchedule

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "WeibullProcess",
    "RepairModel",
    "DeterministicRepair",
    "ExponentialRepair",
    "FaultTransition",
    "FaultTimeline",
    "generate_timeline",
    "arrival_process",
    "repair_model",
]


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class ArrivalProcess:
    """Inter-arrival distribution of fault events (renewal process)."""

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        """One inter-arrival time (time units > 0)."""
        raise NotImplementedError

    @property
    def mean_interarrival(self) -> float:
        """Analytic mean inter-arrival time (the design MTTF input)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonProcess(ArrivalProcess):
    """Constant-hazard arrivals: exponential inter-arrival at ``rate``
    faults per time unit (the memoryless baseline)."""

    rate: float

    def __post_init__(self) -> None:
        if not self.rate > 0.0:
            raise ValueError(f"Poisson rate must be > 0, got {self.rate}")

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    @property
    def mean_interarrival(self) -> float:
        return 1.0 / self.rate


@dataclass(frozen=True)
class WeibullProcess(ArrivalProcess):
    """Weibull inter-arrival: ``scale * W(shape)``.

    ``shape < 1`` models infant mortality (hazard decays), ``shape > 1``
    wear-out (hazard grows), ``shape == 1`` degenerates to Poisson with
    rate ``1/scale``.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if not self.shape > 0.0:
            raise ValueError(f"Weibull shape must be > 0, got {self.shape}")
        if not self.scale > 0.0:
            raise ValueError(f"Weibull scale must be > 0, got {self.scale}")

    def sample_interarrival(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    @property
    def mean_interarrival(self) -> float:
        from math import gamma

        return self.scale * gamma(1.0 + 1.0 / self.shape)


# ----------------------------------------------------------------------
# Repair models
# ----------------------------------------------------------------------
class RepairModel:
    """Time-to-repair distribution for a failed node."""

    def sample_repair(self, rng: np.random.Generator) -> float:
        """One repair duration (time units >= 0)."""
        raise NotImplementedError


@dataclass(frozen=True)
class DeterministicRepair(RepairModel):
    """Fixed MTTR: every repair takes exactly ``mttr`` time units
    (``mttr = inf`` means faults are permanent — the paper's one-shot
    regime recovered as a special case)."""

    mttr: float

    def __post_init__(self) -> None:
        if not self.mttr >= 0.0:
            raise ValueError(f"MTTR must be >= 0, got {self.mttr}")

    def sample_repair(self, rng: np.random.Generator) -> float:
        return float(self.mttr)


@dataclass(frozen=True)
class ExponentialRepair(RepairModel):
    """Exponential time-to-repair with mean ``mttr``."""

    mttr: float

    def __post_init__(self) -> None:
        if not self.mttr > 0.0:
            raise ValueError(f"MTTR must be > 0, got {self.mttr}")

    def sample_repair(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mttr))


def arrival_process(
    kind: str, rate: float = 1.0, shape: float = 1.0, scale: float = 1.0
) -> ArrivalProcess:
    """CLI/config factory: ``"poisson"`` (uses ``rate``) or
    ``"weibull"`` (uses ``shape``/``scale``)."""
    if kind == "poisson":
        return PoissonProcess(rate=rate)
    if kind == "weibull":
        return WeibullProcess(shape=shape, scale=scale)
    raise ValueError(
        f"unknown arrival process {kind!r}; expected 'poisson' or 'weibull'"
    )


def repair_model(kind: str, mttr: float) -> RepairModel:
    """CLI/config factory: ``"deterministic"`` or ``"exponential"``."""
    if kind == "deterministic":
        return DeterministicRepair(mttr=mttr)
    if kind == "exponential":
        return ExponentialRepair(mttr=mttr)
    raise ValueError(
        f"unknown repair model {kind!r}; expected 'deterministic' or "
        "'exponential'"
    )


# ----------------------------------------------------------------------
# Timelines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultTransition:
    """One state change: node ``node`` fails or is repaired at ``time``."""

    time: float
    node: Node
    kind: str  # "fail" | "repair"

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ValueError("transitions cannot predate t=0")
        if self.kind not in ("fail", "repair"):
            raise ValueError(f"unknown transition kind {self.kind!r}")
        object.__setattr__(
            self, "node", tuple(int(x) for x in self.node)
        )


class FaultTimeline:
    """A sampled fail/repair history over ``[0, horizon]``.

    ``transitions`` are time-sorted (repairs before fails at equal
    times, so an instantly re-failed node stays down for the zero-width
    instant rather than flickering up).  ``interarrivals`` and
    ``repair_durations`` keep the *sampled* values — including repairs
    truncated by the horizon — so observed MTTF/MTTR estimates are not
    biased by the observation window's edge.
    """

    __slots__ = ("transitions", "horizon", "interarrivals", "repair_durations")

    def __init__(
        self,
        transitions: Iterable[FaultTransition],
        horizon: float,
        interarrivals: Sequence[float] = (),
        repair_durations: Sequence[float] = (),
    ):
        if not horizon > 0.0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        self.horizon = float(horizon)
        order = {"repair": 0, "fail": 1}
        self.transitions: Tuple[FaultTransition, ...] = tuple(
            sorted(
                transitions,
                key=lambda tr: (tr.time, order[tr.kind], tr.node),
            )
        )
        for tr in self.transitions:
            if tr.time > self.horizon:
                raise ValueError(
                    f"transition at t={tr.time} beyond horizon {self.horizon}"
                )
        self.interarrivals: Tuple[float, ...] = tuple(
            float(x) for x in interarrivals
        )
        self.repair_durations: Tuple[float, ...] = tuple(
            float(x) for x in repair_durations
        )

    def __len__(self) -> int:
        return len(self.transitions)

    def __iter__(self) -> Iterator[FaultTransition]:
        return iter(self.transitions)

    @property
    def num_faults(self) -> int:
        return sum(1 for tr in self.transitions if tr.kind == "fail")

    @property
    def num_repairs(self) -> int:
        return sum(1 for tr in self.transitions if tr.kind == "repair")

    @property
    def observed_mttf(self) -> Optional[float]:
        """Mean sampled inter-arrival time (None with no arrivals)."""
        if not self.interarrivals:
            return None
        return sum(self.interarrivals) / len(self.interarrivals)

    @property
    def observed_mttr(self) -> Optional[float]:
        """Mean sampled repair duration (None with no repairs)."""
        if not self.repair_durations:
            return None
        return sum(self.repair_durations) / len(self.repair_durations)

    # ------------------------------------------------------------------
    def intervals(self) -> Iterator[Tuple[float, float, Tuple[Node, ...]]]:
        """Piecewise-constant down-set: yields ``(t0, t1, down_nodes)``
        covering ``[0, horizon]`` with ``down_nodes`` sorted; zero-width
        pieces (coincident transitions) are skipped."""
        down: set = set()
        t0 = 0.0
        i = 0
        n = len(self.transitions)
        while i <= n:
            t1 = self.transitions[i].time if i < n else self.horizon
            if t1 > t0:
                yield t0, t1, tuple(sorted(down))
                t0 = t1
            if i == n:
                break
            tr = self.transitions[i]
            if tr.kind == "fail":
                down.add(tr.node)
            else:
                down.discard(tr.node)
            i += 1

    def to_fault_schedule(
        self, cycles_per_unit: float = 1000.0, start_cycle: int = 20
    ) -> FaultSchedule:
        """Translate fail transitions into a simulator
        :class:`~repro.wormhole.chaos.FaultSchedule`.

        One timeline unit maps to ``cycles_per_unit`` simulator cycles,
        offset by ``start_cycle`` so the earliest fault lands after the
        simulator's initial-route warmup (matching the default
        ``cycle_span`` floor of ``FaultSchedule.random``).  Repairs are
        dropped: the live simulator models hardware as staying dead,
        and repairs only matter to the availability estimator.
        """
        if not cycles_per_unit > 0.0:
            raise ValueError(
                f"cycles_per_unit must be > 0, got {cycles_per_unit}"
            )
        events = [
            FaultEvent(
                start_cycle + int(tr.time * cycles_per_unit), (tr.node,), ()
            )
            for tr in self.transitions
            if tr.kind == "fail"
        ]
        return FaultSchedule(events)


def generate_timeline(
    mesh: Mesh,
    arrival: ArrivalProcess,
    repair: RepairModel,
    horizon: float,
    rng: np.random.Generator,
    avoid: Iterable[Sequence[int]] = (),
) -> FaultTimeline:
    """Sample one fail/repair timeline for ``mesh`` over ``[0, horizon]``.

    Event-driven renewal sampling with a *fixed draw order* per fault —
    inter-arrival gap, then victim (an index into the currently-healthy
    node list in mesh enumeration order), then repair duration — so the
    timeline is a pure function of the processes and the generator's
    seed.  Victims are drawn among nodes currently up and outside
    ``avoid``; a fault arriving while every node is down consumes its
    draws and is skipped (the fleet cannot lose a node it no longer
    has).  Repairs completing after the horizon are clipped (the node
    stays down to the edge of the observation window) but their sampled
    duration still lands in ``repair_durations``.
    """
    if not horizon > 0.0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    taken = {tuple(int(x) for x in v) for v in avoid}
    nodes: List[Node] = [v for v in mesh.nodes() if v not in taken]
    down: set = set()
    pending: List[Tuple[float, Node]] = []  # (repair time, node)
    transitions: List[FaultTransition] = []
    interarrivals: List[float] = []
    repair_durations: List[float] = []
    t = 0.0
    while True:
        gap = arrival.sample_interarrival(rng)
        t += gap
        if t >= horizon:
            break
        interarrivals.append(gap)
        # Apply repairs that completed before this arrival.
        matured = sorted(p for p in pending if p[0] <= t)
        for when, node in matured:
            down.discard(node)
            transitions.append(FaultTransition(when, node, "repair"))
        pending = [p for p in pending if p[0] > t]
        healthy = [v for v in nodes if v not in down]
        if not healthy:
            # Nothing left to kill; still consume the victim/repair
            # draws so the stream stays aligned across parameterizations.
            rng.integers(1)
            repair.sample_repair(rng)
            continue
        victim = healthy[int(rng.integers(len(healthy)))]
        duration = repair.sample_repair(rng)
        repair_durations.append(duration)
        down.add(victim)
        transitions.append(FaultTransition(t, victim, "fail"))
        back = t + duration
        if back < horizon:
            pending.append((back, victim))
    for when, node in sorted(pending):
        transitions.append(FaultTransition(when, node, "repair"))
    return FaultTimeline(
        transitions, horizon,
        interarrivals=interarrivals,
        repair_durations=repair_durations,
    )
