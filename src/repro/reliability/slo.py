"""Availability-SLO targets, verdicts, and Wilson confidence bounds.

A reliability campaign estimates the probability that the machine is
"up" — reconfigured with the surviving fabric still connected above a
floor — from a finite number of sampled epochs.  A point estimate
alone overstates what ``n`` trials can support, so verdicts carry a
Wilson score interval: unlike the naive normal approximation it stays
inside ``[0, 1]`` and behaves sensibly at the extremes that matter
here (availability near 1, small samples).

SLO semantics ("sustains λ faults/kcycle at 99.9% connectivity"):

- an epoch is **up** when the compile succeeded and survivor
  connectivity — the largest connected component of non-faulty,
  non-lamb nodes, as a fraction of the full machine — meets
  ``SLOTarget.connectivity``;
- **availability** is the time-weighted fraction of the horizon spent
  up, pooled across trials;
- the verdict is a *confident pass* only when the Wilson lower bound
  clears ``SLOTarget.availability``, a *confident fail* when the upper
  bound misses it, and inconclusive in between (run more trials).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["wilson_interval", "SLOTarget", "SLOVerdict"]


def wilson_interval(
    successes: int, total: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(lower, upper)``; with ``total == 0`` the data say
    nothing and the interval is the vacuous ``(0.0, 1.0)``.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if successes < 0 or successes > total:
        raise ValueError(
            f"successes must be in [0, total], got {successes}/{total}"
        )
    if z <= 0.0:
        raise ValueError(f"z must be > 0, got {z}")
    if total == 0:
        return 0.0, 1.0
    p = successes / total
    z2 = z * z
    denom = 1.0 + z2 / total
    centre = p + z2 / (2.0 * total)
    spread = z * math.sqrt(
        p * (1.0 - p) / total + z2 / (4.0 * total * total)
    )
    lo = (centre - spread) / denom
    hi = (centre + spread) / denom
    return max(0.0, lo), min(1.0, hi)


@dataclass(frozen=True)
class SLOTarget:
    """The bar a campaign is judged against.

    ``connectivity`` is the per-epoch survivor-connectivity floor (an
    epoch below it is down); ``availability`` is the required
    time-weighted fraction of up-time.
    """

    connectivity: float = 0.999
    availability: float = 0.999

    def __post_init__(self) -> None:
        for name in ("connectivity", "availability"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(
                    f"{name} SLO must be in (0, 1], got {value}"
                )


@dataclass(frozen=True)
class SLOVerdict:
    """Measured availability against a target, with Wilson bounds.

    ``met`` is the point-estimate comparison; ``confident_pass`` /
    ``confident_fail`` fold in the sampling uncertainty (both False
    means the sample is too small to call — run more trials).
    """

    target: SLOTarget
    availability: float
    lower: float
    upper: float
    epochs_up: int
    epochs_total: int

    @property
    def met(self) -> bool:
        return self.availability >= self.target.availability

    @property
    def confident_pass(self) -> bool:
        return self.lower >= self.target.availability

    @property
    def confident_fail(self) -> bool:
        return self.upper < self.target.availability

    @property
    def conclusive(self) -> bool:
        return self.confident_pass or self.confident_fail

    def as_dict(self) -> Dict[str, Any]:
        return {
            "target": {
                "connectivity": self.target.connectivity,
                "availability": self.target.availability,
            },
            "availability": round(self.availability, 9),
            "wilson_lower": round(self.lower, 9),
            "wilson_upper": round(self.upper, 9),
            "epochs_up": self.epochs_up,
            "epochs_total": self.epochs_total,
            "met": self.met,
            "confident_pass": self.confident_pass,
            "confident_fail": self.confident_fail,
            "conclusive": self.conclusive,
        }

    @classmethod
    def judge(
        cls,
        target: SLOTarget,
        availability: float,
        epochs_up: int,
        epochs_total: int,
        z: float = 1.96,
    ) -> "SLOVerdict":
        """Build a verdict: availability is the time-weighted estimate,
        the Wilson interval comes from the epoch up/total counts."""
        lo, hi = wilson_interval(epochs_up, epochs_total, z=z)
        return cls(
            target=target,
            availability=availability,
            lower=lo,
            upper=hi,
            epochs_up=epochs_up,
            epochs_total=epochs_total,
        )
