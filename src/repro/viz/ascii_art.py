"""ASCII rendering of 2D faulty meshes — the library's Figures 1-10.

The paper communicates everything about the worked example through
pictures of a 12x12 mesh: faults (Fig. 2), SES/DES partitions with
labels (Figs. 3-6), spanning trees / routes (Figs. 7-8) and the chosen
lambs (Fig. 10).  These helpers render the same views as fixed-width
text so examples and docs can show them inline.

Coordinate convention matches the paper: node (0, 0) at the upper
left, x growing rightward, y growing downward.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh, Node
from ..mesh.regions import Rect

__all__ = [
    "render_mesh",
    "render_partition",
    "render_route",
    "render_lambs",
]

_FAULT = "X"
_GOOD = "."
_LAMB = "L"
#: Label alphabet for partition rendering (62 distinguishable sets).
_LABELS = "123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _check_2d(mesh: Mesh) -> None:
    if mesh.d != 2:
        raise ValueError("ASCII rendering supports 2D meshes only")


def _grid(mesh: Mesh, fill: str = _GOOD) -> List[List[str]]:
    nx, ny = mesh.widths
    return [[fill for _ in range(nx)] for _ in range(ny)]


def _emit(mesh: Mesh, grid: List[List[str]], axes: bool) -> str:
    nx, ny = mesh.widths
    lines = []
    if axes:
        header = "    " + " ".join(f"{x % 10}" for x in range(nx))
        lines.append(header)
    for y in range(ny):
        prefix = f"{y:>3} " if axes else ""
        lines.append(prefix + " ".join(grid[y][x] for x in range(nx)))
    return "\n".join(lines) + "\n"


def render_mesh(faults: FaultSet, axes: bool = True) -> str:
    """Fig. 2-style view: good nodes '.' and faults 'X'.

    >>> from repro.mesh import Mesh, FaultSet
    >>> print(render_mesh(FaultSet(Mesh((3, 3)), [(1, 1)]), axes=False))
    . . .
    . X .
    . . .
    <BLANKLINE>
    """
    _check_2d(faults.mesh)
    grid = _grid(faults.mesh)
    for (x, y) in faults.node_faults:
        grid[y][x] = _FAULT
    return _emit(faults.mesh, grid, axes)


def render_partition(
    faults: FaultSet,
    rects: Sequence[Rect],
    show_representatives: bool = False,
    axes: bool = True,
) -> str:
    """Figs. 3-6-style view: each partition set drawn with its own
    label character; faults 'X'; representatives upper-cased (or '@'
    for digit labels) when ``show_representatives``."""
    mesh = faults.mesh
    _check_2d(mesh)
    if len(rects) > len(_LABELS):
        raise ValueError(f"cannot label more than {len(_LABELS)} sets")
    grid = _grid(mesh, fill=" ")
    for (x, y) in faults.node_faults:
        grid[y][x] = _FAULT
    for i, r in enumerate(rects):
        label = _LABELS[i]
        for (x, y) in r.nodes():
            grid[y][x] = label
        if show_representatives:
            rx, ry = r.lo
            grid[ry][rx] = label.upper() if label.isalpha() else "@"
    return _emit(mesh, grid, axes)


def render_route(
    faults: FaultSet,
    paths: Sequence[Sequence[Node]],
    axes: bool = True,
) -> str:
    """Figs. 7-8-style view of a k-round route: round ``t`` drawn with
    digit ``t + 1``, source 'S', destination 'D', faults 'X'."""
    mesh = faults.mesh
    _check_2d(mesh)
    if not paths or not paths[0]:
        raise ValueError("need at least one non-empty round path")
    grid = _grid(mesh)
    for (x, y) in faults.node_faults:
        grid[y][x] = _FAULT
    for t, path in enumerate(paths):
        mark = str((t + 1) % 10)
        for (x, y) in path:
            grid[y][x] = mark
    sx, sy = paths[0][0]
    dx, dy = paths[-1][-1]
    grid[sy][sx] = "S"
    grid[dy][dx] = "D"
    return _emit(mesh, grid, axes)


def render_lambs(
    faults: FaultSet,
    lambs: Iterable[Node],
    axes: bool = True,
) -> str:
    """Fig. 10-style view: faults 'X', lamb nodes 'L', survivors '.'."""
    mesh = faults.mesh
    _check_2d(mesh)
    grid = _grid(mesh)
    for (x, y) in faults.node_faults:
        grid[y][x] = _FAULT
    for (x, y) in lambs:
        if grid[y][x] == _FAULT:
            raise ValueError(f"lamb ({x}, {y}) is faulty")
        grid[y][x] = _LAMB
    return _emit(mesh, grid, axes)
