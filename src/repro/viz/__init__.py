"""ASCII visualization of 2D faulty meshes (the paper's figure style)."""

from .ascii_art import render_lambs, render_mesh, render_partition, render_route

__all__ = ["render_mesh", "render_partition", "render_route", "render_lambs"]
