"""Command-line interface.

``python -m repro <command>`` exposes the main workflows:

- ``lamb``        compute a lamb set for a (random or loaded) fault set
- ``partition``   show the SES/DES partitions for a fault set
- ``simulate``    push wormhole traffic through a reconfigured mesh
- ``chaos``       live-fault chaos run: mid-flight fault injection with
  rollback/reconfigure epochs and graceful degradation
- ``figure``      regenerate one of the paper's figures
- ``reconfigure`` replay fault epochs from a JSON script
- ``collective``  run a collective among the survivors
- ``worked-example``  print the Section 5 artifacts (Tables 1-2, Λ)
- ``analyze``     run the domain lint suite over Python sources
- ``prove``       statically prove a routing configuration deadlock-free
  (channel-dependency-graph acyclicity)
- ``serve``       run the reconfiguration control plane (asyncio TCP
  route-query service with a content-addressed compile cache)
- ``query``       resolve routes / fetch stats from a running server
- ``stats``       run the seeded telemetry smoke and print the unified
  metrics registry (Prometheus / JSON / NDJSON)
- ``workflow``    list/run/resume declarative campaign presets with
  content-addressed checkpoint-resume (``workflow run chaos-campaign
  --store DIR`` survives a SIGKILL; ``workflow resume`` picks up from
  the last completed step)
- ``store``       artifact-store maintenance (``store gc`` LRU-evicts
  the disk tier down to a byte budget)

``simulate``, ``experiments``, ``serve`` and ``stats`` accept
``--telemetry PREFIX`` to write the process's telemetry registry to
``PREFIX.prom`` / ``PREFIX.ndjson`` / ``PREFIX.json`` on exit.

Examples
--------
::

    python -m repro lamb --mesh 32x32x32 --percent 3 --seed 1
    python -m repro lamb --mesh 16x16 --faults 10 --render --out state.json
    python -m repro partition --mesh 12x12 --fault 9,1 --fault 11,6 --fault 10,10
    python -m repro simulate --mesh 16x16 --faults 8 --messages 200
    python -m repro simulate --mesh 8x8 --messages 50 --inject-fault 30:4,4
    python -m repro chaos --mesh 8x8 --faults 2 --events 3 --seed 1
    python -m repro figure fig17 --trials 20
    python -m repro worked-example
    python -m repro analyze src/ tests/
    python -m repro prove --mesh 16x16 --faults 8 --rounds 2
    python -m repro serve --mesh 16x16 --faults 5 --seed 4 --port 7420
    python -m repro serve --smoke
    python -m repro query --port 7420 --source 0,0 --dest 9,9
    python -m repro workflow run chaos-campaign --store /tmp/ckpt --json
    python -m repro workflow resume chaos-campaign --store /tmp/ckpt
    python -m repro store gc --root /tmp/ckpt --max-bytes 1000000
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

import numpy as np

from .wormhole.simulator import SIM_ENGINES

__all__ = ["main", "build_parser"]


def _parse_mesh(text: str):
    from .mesh import Mesh, Torus

    torus = text.startswith("torus:")
    if torus:
        text = text[len("torus:"):]
    try:
        widths = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad mesh spec {text!r}; use e.g. 32x32x32")
    cls = Torus if torus else Mesh
    return cls(widths)


def _parse_node(text: str):
    try:
        return tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad node {text!r}; use e.g. 9,1")


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mesh", type=_parse_mesh,
                   help="mesh spec, e.g. 32x32x32 or torus:8x8")
    p.add_argument("--faults", type=int, default=0,
                   help="number of random node faults")
    p.add_argument("--percent", type=float, default=0.0,
                   help="random node faults as %% of N")
    p.add_argument("--fault", type=_parse_node, action="append", default=[],
                   help="explicit faulty node (repeatable), e.g. --fault 9,1")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for random faults")
    p.add_argument("--load", type=str, default=None,
                   help="load a fault-set JSON instead")


def _build_faults(args):
    from .mesh import FaultSet, random_node_faults
    from .mesh.serialization import faults_from_dict, loads

    if args.load:
        with open(args.load) as fh:
            return faults_from_dict(loads(fh.read()))
    if args.mesh is None:
        raise SystemExit("either --mesh or --load is required")
    mesh = args.mesh
    explicit = list(args.fault)
    count = args.faults
    if args.percent:
        count = max(1, int(round(mesh.num_nodes * args.percent / 100.0)))
    if count and explicit:
        raise SystemExit("use either random faults or explicit --fault, not both")
    if count:
        return random_node_faults(mesh, count, np.random.default_rng(args.seed))
    return FaultSet(mesh, explicit)


def _orderings(args, d: int):
    from .routing import ascending, repeated

    return repeated(ascending(d), args.rounds)


def _export_telemetry(args) -> None:
    """Write the ambient registry to ``<prefix>.{prom,ndjson,json}``
    when the command was given ``--telemetry <prefix>``."""
    prefix = getattr(args, "telemetry", None)
    if not prefix:
        return
    from .obs import export_all, get_registry

    written = export_all(
        get_registry(), prefix,
        redact_timings=bool(getattr(args, "redact_timings", False)),
    )
    for fmt in sorted(written):
        print(f"telemetry: wrote {written[fmt]}")


def cmd_lamb(args) -> int:
    from .core import find_lamb_set, is_lamb_set
    from .mesh.serialization import dumps, lamb_outcome_to_dict

    faults = _build_faults(args)
    mesh = faults.mesh
    orderings = _orderings(args, mesh.d)
    result = find_lamb_set(
        faults, orderings, method=args.method, engine=args.engine
    )
    print(f"mesh {mesh} | faults {faults.f} | rounds {orderings.k}")
    print(f"SES/DES sets: {result.num_ses} / {result.num_des}")
    print(f"lambs: {result.size} "
          f"({100.0 * result.size / mesh.num_nodes:.3f}% of N, "
          f"additional damage {100.0 * result.additional_damage():.1f}%)")
    print("pipeline seconds: "
          + ", ".join(f"{k} {v:.3f}" for k, v in result.timings.items()))
    if args.show_lambs:
        for v in sorted(result.lambs):
            print(f"  lamb {v}")
    if args.render:
        from .viz import render_lambs

        print(render_lambs(faults, result.lambs), end="")
    if args.verify:
        ok = is_lamb_set(faults, orderings, result.lambs)
        print(f"definition-level verification: {'OK' if ok else 'FAILED'}")
        if not ok:
            return 1
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(dumps(lamb_outcome_to_dict(result)))
        print(f"wrote {args.out}")
    return 0


def cmd_partition(args) -> int:
    from .core import find_des_partition, find_ses_partition
    from .core.bounds import partition_size_bound
    from .routing import ascending

    faults = _build_faults(args)
    mesh = faults.mesh
    pi = ascending(mesh.d)
    ses = find_ses_partition(faults, pi)
    des = find_des_partition(faults, pi)
    bound = partition_size_bound(mesh.widths, faults.f)
    print(f"mesh {mesh} | faults {faults.f}")
    print(f"SES partition: {len(ses)} sets (Theorem 6.4 bound {bound})")
    print(f"DES partition: {len(des)} sets")
    if args.list:
        for r in ses:
            print(f"  SES {r.spec()}  size {r.size}  rep {r.lo}")
        for r in des:
            print(f"  DES {r.spec()}  size {r.size}  rep {r.lo}")
    if args.render:
        from .viz import render_partition

        print("SES partition:")
        print(render_partition(faults, ses), end="")
        print("DES partition:")
        print(render_partition(faults, des), end="")
    return 0


def cmd_simulate(args) -> int:
    from .core import find_lamb_set
    from .wormhole import FaultSchedule, WormholeSimulator, uniform_random_traffic

    faults = _build_faults(args)
    mesh = faults.mesh
    orderings = _orderings(args, mesh.d)
    result = find_lamb_set(faults, orderings)
    endpoints = [v for v in mesh.nodes() if result.is_survivor(v)]
    rng = np.random.default_rng(args.seed)
    schedule = (
        FaultSchedule.from_specs(args.inject_fault)
        if args.inject_fault
        else None
    )
    sim = WormholeSimulator(
        faults, orderings, buffer_flits=args.buffers, policy=args.policy,
        seed=args.seed, schedule=schedule, engine=args.engine,
    )
    for inj in uniform_random_traffic(
        endpoints, args.messages, rng, num_flits=args.flits,
        inject_window=args.window,
    ):
        sim.send(inj.source, inj.dest, inj.num_flits, inj.inject_cycle)
    stats = sim.run(max_cycles=args.max_cycles)
    print(f"mesh {mesh} | faults {faults.f} | lambs {result.size} | "
          f"survivors {len(endpoints)}")
    print(f"messages {stats.delivered}/{stats.total_messages} in "
          f"{stats.cycles} cycles")
    print(f"latency avg {stats.avg_latency:.1f}  p95 {stats.p95_latency:.1f}  "
          f"max {stats.max_latency}")
    print(f"throughput {stats.throughput_flits_per_cycle:.2f} flits/cycle  "
          f"avg hops {stats.avg_hops:.1f}  max turns {stats.max_turns}")
    if schedule is not None:
        print(f"live faults: {sim.fault_events_applied} event(s) applied  "
              f"retried-then-delivered {stats.retried_delivered}  "
              f"aborted {stats.aborted}")
        if stats.abort_reasons:
            print("abort reasons: "
                  + ", ".join(f"{r} x{n}" for r, n in stats.abort_reasons))
    _export_telemetry(args)
    return 0 if stats.all_accounted else 1


def cmd_chaos(args) -> int:
    from .wormhole import ChaosEngine, FaultSchedule

    faults = _build_faults(args)
    mesh = faults.mesh
    orderings = _orderings(args, mesh.d)
    rng = np.random.default_rng(args.seed)
    if args.inject_fault:
        schedule = FaultSchedule.from_specs(args.inject_fault)
    elif args.arrival:
        # Renewal-process schedule: faults arrive at --rate per
        # kilocycle over the event window (repairs do not exist in the
        # live simulator, so the repair model is "never").
        from .reliability import (
            DeterministicRepair,
            arrival_process,
            generate_timeline,
        )

        horizon = max(args.event_end - args.event_start, 1) / 1000.0
        timeline = generate_timeline(
            mesh,
            arrival_process(
                args.arrival, rate=args.rate,
                shape=args.arrival_shape, scale=args.arrival_scale,
            ),
            DeterministicRepair(float("inf")),
            horizon,
            rng,
            avoid=faults.node_faults,
        )
        schedule = timeline.to_fault_schedule(
            cycles_per_unit=1000.0, start_cycle=args.event_start
        )
    else:
        schedule = FaultSchedule.random(
            mesh, args.events, rng,
            cycle_span=(args.event_start, args.event_end),
            nodes_per_event=args.kills_per_event,
            links_per_event=args.link_kills_per_event,
            avoid=faults.node_faults,
        )
    engine = ChaosEngine(
        faults, orderings, schedule,
        lamb_budget=args.budget,
        max_extra_rounds=args.extra_rounds,
        buffer_flits=args.buffers,
        policy=args.policy,
        seed=args.seed,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
    )
    engine.load_uniform_traffic(
        args.messages, rng, num_flits=args.flits, inject_window=args.window
    )
    report = engine.run(max_cycles=args.max_cycles)
    print(f"mesh {mesh} | initial faults {faults.f} | "
          f"scheduled events {len(schedule)} ({schedule.total_faults} fault(s))")
    print(report.summary())
    s = report.stats
    print(f"latency avg {s.avg_latency:.1f} (incl. retries {s.avg_total_latency:.1f})"
          f"  cycles {s.cycles}")
    if not report.fully_accounted:
        print("WARNING: message accounting incomplete")
        return 1
    return 0


def cmd_figure(args) -> int:
    from .experiments import figures, render_sweep
    from .experiments.parallel import engine_jobs

    fn = getattr(figures, args.name, None)
    if fn is None or not args.name.startswith(("fig", "section")):
        raise SystemExit(
            f"unknown figure {args.name!r}; try fig17..fig26 or "
            "section3_one_vs_two_rounds"
        )
    if args.jobs or args.executor:
        with engine_jobs(args.jobs, executor=args.executor):
            result = fn(trials=args.trials, seed=args.seed)
    else:
        result = fn(trials=args.trials, seed=args.seed)
    print(render_sweep(result), end="")
    return 0


def cmd_experiments(args) -> int:
    from .experiments.generate import ALL_SECTIONS, run_cli

    sections = args.section or None
    if sections is not None:
        unknown = set(sections) - set(ALL_SECTIONS)
        if unknown:
            raise SystemExit(
                f"unknown sections {sorted(unknown)}; "
                f"choose from {', '.join(ALL_SECTIONS)}"
            )
    rc = run_cli(
        args.out, seed=args.seed, sections=sections, jobs=args.jobs,
        executor=args.executor,
    )
    _export_telemetry(args)
    return rc


def cmd_reliability(args) -> int:
    from .mesh import Torus
    from .reliability import CampaignConfig, SLOTarget, run_campaign

    mesh = args.mesh

    config = CampaignConfig(
        widths=mesh.widths,
        torus=isinstance(mesh, Torus),
        k=args.rounds,
        arrival=args.arrival,
        rate=args.rate,
        shape=args.arrival_shape,
        scale=args.arrival_scale,
        repair=args.repair,
        mttr=args.mttr,
        horizon=args.horizon,
        trials=args.trials,
        seed=args.seed,
        tag=args.tag,
        lamb_budget=args.budget,
        max_extra_rounds=args.extra_rounds,
        slo=SLOTarget(
            connectivity=args.connectivity,
            availability=args.availability,
        ),
    )
    report = run_campaign(config, jobs=args.jobs, executor=args.executor)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"wrote {args.json}")
    print("\n".join(report.summary_lines()))
    _export_telemetry(args)
    if not report.accounting.all_accounted:
        print("WARNING: trial accounting incomplete")
        return 1
    if args.require_slo and not report.verdict.met:
        return 1
    return 0


def cmd_reconfigure(args) -> int:
    import json as _json

    from .core import ReconfigurationManager

    with open(args.script) as fh:
        spec = _json.load(fh)
    mesh = _parse_mesh(spec["mesh"])
    from .routing import ascending, repeated

    orderings = repeated(ascending(mesh.d), int(spec.get("rounds", 2)))
    mgr = ReconfigurationManager(
        mesh, orderings, sticky_lambs=bool(spec.get("sticky_lambs", True))
    )
    print(f"machine {mesh} | rounds {orderings.k} | "
          f"sticky lambs {mgr.sticky_lambs}")
    for spec_epoch in spec["epochs"]:
        epoch = mgr.report_faults(
            node_faults=[tuple(v) for v in spec_epoch.get("node_faults", [])],
            link_faults=[
                (tuple(u), tuple(w))
                for (u, w) in spec_epoch.get("link_faults", [])
            ],
        )
        print(f"epoch {epoch.index}: faults {epoch.num_faults} "
              f"lambs {epoch.num_lambs} survivors {epoch.num_survivors} "
              f"({epoch.result.timings['total'] * 1e3:.0f} ms)")
    if args.out and mgr.current is not None:
        from .mesh.serialization import dumps, lamb_outcome_to_dict

        with open(args.out, "w") as fh:
            fh.write(dumps(lamb_outcome_to_dict(mgr.current.result)))
        print(f"wrote {args.out}")
    return 0


def cmd_collective(args) -> int:
    from .collectives import (
        binomial_broadcast,
        binomial_gather,
        linear_alltoone,
        recursive_doubling_allgather,
        ring_allgather,
        run_collective,
    )
    from .core import find_lamb_set

    faults = _build_faults(args)
    orderings = _orderings(args, faults.mesh.d)
    result = find_lamb_set(faults, orderings)
    survivors = result.survivors()
    p = min(args.ranks, len(survivors)) if args.ranks else len(survivors)
    builders = {
        "broadcast": lambda: binomial_broadcast(p, flits=args.flits),
        "gather": lambda: binomial_gather(p, flits=args.flits),
        "allgather": lambda: recursive_doubling_allgather(p, flits=args.flits),
        "ring-allgather": lambda: ring_allgather(p, flits=args.flits),
        "all-to-one": lambda: linear_alltoone(p, flits=args.flits),
    }
    sched = builders[args.algorithm]()
    stats = run_collective(result, sched, survivors[:p], seed=args.seed)
    print(f"{args.algorithm} over {p} ranks on {faults.mesh} "
          f"({faults.f} faults, {result.size} lambs)")
    print(f"phases {stats.num_phases} | messages {stats.total_messages} | "
          f"makespan {stats.makespan_cycles} cycles")
    print(f"per-phase cycles: {stats.phase_cycles}")
    return 0


def cmd_worked_example(args) -> int:
    from .experiments import render_matrix, worked_example
    from .viz import render_lambs, render_partition

    we = worked_example()
    print("Fig. 2 faults:", list(we.faults.node_faults))
    print("\nSES partition (Fig. 3):")
    print(render_partition(we.faults, we.ses, show_representatives=True), end="")
    print("\nDES partition (Fig. 4):")
    print(render_partition(we.faults, we.des, show_representatives=True), end="")
    print("\nTable 1 (R):")
    print(render_matrix(we.R), end="")
    print("\nTable 2 (R^(2)):")
    print(render_matrix(we.R2), end="")
    print("\nLamb set (Fig. 10):")
    print(render_lambs(we.faults, we.result.lambs), end="")
    print(f"\nmatches the paper exactly: {we.matches_paper()}")
    return 0


def cmd_analyze(args) -> int:
    import sys

    from .analysis.static.lint import LintEngine, format_violations
    from .analysis.static.rules import ALL_RULES, CONCURRENCY_RULES

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name}")
            print(f"        {rule.description}")
        for rule_id, name, description in CONCURRENCY_RULES:
            print(f"{rule_id}  {name}")
            print(f"        {description}")
        return 0
    if not args.paths:
        raise SystemExit("give at least one file or directory to analyze")
    if args.concurrency:
        return _analyze_concurrency(args)
    engine = LintEngine()
    violations = engine.check_paths(args.paths)
    for warning in engine.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if violations:
        print(format_violations(violations, fmt=args.format))
    if args.format == "text":
        n = len(violations)
        print(f"{n} violation(s)" if n else "clean: no violations")
    return 1 if violations else 0


def _analyze_concurrency(args) -> int:
    """``repro analyze --concurrency``: the interprocedural REP2xx
    pass, with optional baseline gating and JSON artifact output."""
    import json as _json

    from .analysis.static.concurrency import (
        analyze_concurrency,
        apply_baseline,
        load_baseline,
    )

    report = analyze_concurrency(args.paths)
    if args.out:
        report.write_artifact(args.out)
    findings = list(report.findings)
    stale = []
    if args.baseline:
        entries = load_baseline(args.baseline)
        findings, stale = apply_baseline(findings, entries)
    if args.format == "json":
        payload = report.to_dict()
        payload["new_findings"] = [f.to_dict() for f in findings]
        payload["stale_suppressions"] = stale
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.describe())
        if args.baseline:
            print(
                f"baseline: {len(report.findings) - len(findings)} "
                f"suppressed, {len(findings)} new, {len(stale)} stale"
            )
            for f in findings:
                print(f"NEW {f.render()}")
            for entry in stale:
                print(
                    "STALE suppression "
                    f"{entry['rule']} {entry['path']} {entry['symbol']}"
                )
    failed = bool(findings) or bool(stale) or bool(report.cycles)
    return 1 if failed else 0


def cmd_prove(args) -> int:
    from .analysis.static import prove_deadlock_free

    faults = _build_faults(args)
    mesh = faults.mesh
    orderings = _orderings(args, mesh.d)
    vc_of_round = None
    num_vcs: Optional[int] = None
    if args.single_vc:
        vc_of_round = lambda t: 0  # noqa: E731
        num_vcs = 1
    report = prove_deadlock_free(
        faults, orderings, vc_of_round=vc_of_round, num_vcs=num_vcs
    )
    print(report.describe())
    if args.out:
        report.write_artifact(args.out)
        print(f"wrote {args.out}")
    return 0 if report.deadlock_free else 1


def cmd_serve(args) -> int:
    import asyncio
    import json as _json

    from .obs import get_registry
    from .routing import ascending, repeated
    from .service import ArtifactStore, ReconfigurationCompiler
    from .service.metrics import ServiceMetrics
    from .service.server import RouteQueryServer
    from .service.smoke import default_smoke_faults, serve_smoke, shard_smoke

    if args.shard_smoke:
        return shard_smoke(num_shards=args.shards or 3)
    if args.shards:
        return _serve_sharded(args)
    if args.smoke:
        if args.mesh is None and not args.fault and not args.faults \
                and not args.percent and not args.load:
            faults = default_smoke_faults()
        else:
            faults = _build_faults(args)
        return serve_smoke(
            faults,
            rounds=args.rounds,
            queries=args.queries,
            seed=args.seed,
            verify=args.verify,
            store_root=args.store,
        )

    faults = _build_faults(args)
    mesh = faults.mesh
    orderings = repeated(ascending(mesh.d), args.rounds)
    compiler = ReconfigurationCompiler(
        mesh,
        orderings,
        store=ArtifactStore(root=args.store),
        # Publish the control-plane series into the ambient registry so
        # --telemetry exports one coherent snapshot for the process.
        metrics=ServiceMetrics(registry=get_registry()),
        method=args.method,
        policy=args.policy,
        verify=args.verify,
        lamb_budget=args.budget,
        max_extra_rounds=args.extra_rounds,
    )

    async def _run() -> int:
        server = RouteQueryServer(
            compiler, host=args.host, port=args.port,
            request_timeout=args.request_timeout,
        )
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        artifact, source = await loop.run_in_executor(
            None, compiler.compile, faults
        )
        print(f"serving {mesh} on {host}:{port} | epoch {artifact.epoch} "
              f"digest {artifact.digest[:12]} ({source})")
        print(f"faults {faults.f} | lambs {artifact.num_lambs} | "
              f"survivors {artifact.num_survivors} | k {artifact.k}"
              + (" | DEGRADED" if artifact.degraded else ""))
        try:
            await server.serve_until_shutdown()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            await server.stop()
        print(f"drained: orphaned compiles {server.orphaned_compiles}")
        return 1 if server.orphaned_compiles else 0

    rc = asyncio.run(_run())
    # The metrics snapshot is written after the loop has exited: the
    # counters are final once the server drains, and a sync open() in
    # the async body would stall the loop (REP202: async-blocking-call).
    if args.metrics_json:
        snapshot = {
            "stats": compiler.metrics.snapshot(),
            "store": compiler.store.stats(),
        }
        with open(args.metrics_json, "w") as fh:
            _json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_json}")
    _export_telemetry(args)
    return rc


def _serve_sharded(args) -> int:
    """``repro serve --shards N``: the replicated worker-pool plane."""
    import asyncio

    from .service.shard import ShardRouter

    faults = _build_faults(args)
    mesh = faults.mesh

    async def _run() -> int:
        router = ShardRouter(
            dims=mesh.widths,
            rounds=args.rounds,
            num_shards=args.shards,
            host=args.host,
            port=args.port,
            store_root=args.store,
            request_timeout=args.request_timeout,
            verify=args.verify,
        )
        host, port = await router.start()
        client = await router.client()
        compiled = await client.compile(faults, timeout=300.0)
        await client.close()
        print(
            f"serving {mesh} on {host}:{port} | {args.shards} shard "
            f"workers | epoch {compiled['epoch']} digest "
            f"{compiled['digest'][:12]}"
        )
        print(
            f"faults {faults.f} | lambs {compiled['lambs']} | "
            f"survivors {compiled['survivors']} | codecs ndjson+binary"
        )
        try:
            await router.serve_until_shutdown()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            await router.stop()
        stats = router.router_stats()
        print(
            f"drained: reads {stats['reads_forwarded']} mutations "
            f"{stats['mutations']} respawns {stats['respawns']}"
        )
        return 0

    return asyncio.run(_run())


def cmd_loadgen(args) -> int:
    """Drive sustained mixed query/delta traffic at a running plane."""
    import json as _json

    from .service.loadgen import LoadgenConfig, loadgen

    cfg = LoadgenConfig(
        host=args.host,
        port=args.port,
        codec=args.codec,
        connections=args.connections,
        batches=args.batches,
        batch_size=args.batch_size,
        pool_pairs=args.pool_pairs,
        warmup_batches=args.warmup_batches,
        delta_every=args.delta_every,
        delta_offset=args.delta_offset,
        seed=args.seed,
        dims=args.mesh.widths if args.mesh is not None else (16, 16),
        fault_count=args.faults,
        fault_seed=args.fault_seed,
        rounds=args.rounds,
        timeout=args.timeout,
    )
    report = loadgen(cfg)
    if args.deterministic:
        print(_json.dumps(report["snapshot"], sort_keys=True))
    else:
        print(_json.dumps(report, indent=2, sort_keys=True))
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    ok = report["snapshot"]["ok"] == report["snapshot"]["queries"]
    return 0 if ok else 1


def cmd_stats(args) -> int:
    """Run the seeded telemetry smoke and print/export the registry."""
    from .obs import (
        events_to_ndjson,
        export_all,
        run_telemetry_smoke,
        snapshot_to_json,
        to_prometheus,
    )

    reg = run_telemetry_smoke(
        seed=args.seed,
        messages=args.messages,
        sim_engine=args.sim_engine,
    )
    redact = bool(args.redact_timings)
    renders = {
        "prom": to_prometheus,
        "json": snapshot_to_json,
        "ndjson": events_to_ndjson,
    }
    print(renders[args.format](reg, redact_timings=redact), end="")
    if args.telemetry:
        written = export_all(reg, args.telemetry, redact_timings=redact)
        for fmt in sorted(written):
            print(f"telemetry: wrote {written[fmt]}")
    return 0


def cmd_query(args) -> int:
    import asyncio
    import json as _json

    from .service.client import RouteQueryClient
    from .service.errors import ServiceError

    async def _run() -> int:
        client = await RouteQueryClient.connect(
            args.host, args.port, default_timeout=args.timeout
        )
        try:
            if args.stats:
                reply = await client.stats()
                print(_json.dumps(reply["stats"], indent=2, sort_keys=True))
                return 0
            if args.shutdown:
                await client.shutdown()
                print("server draining")
                return 0
            if args.source is None or args.dest is None:
                raise SystemExit(
                    "give --source and --dest (or --stats / --shutdown)"
                )
            reply = await client.query(
                args.source, args.dest, epoch=args.epoch
            )
            inter = " via " + " -> ".join(
                str(tuple(v)) for v in reply["intermediates"]
            ) if reply["intermediates"] else ""
            print(f"epoch {reply['epoch']}: {tuple(reply['source'])} -> "
                  f"{tuple(reply['dest'])}{inter}")
            print(f"rounds {reply['rounds_used']} | hops {reply['hops']} | "
                  f"turns {reply['turns']}")
            return 0
        except ServiceError as exc:
            print(f"error [{exc.code}]: {exc}")
            return 1
        finally:
            await client.close()

    return asyncio.run(_run())


def _parse_override(text: str):
    """``step.key=value`` -> ``(step, key, value)`` with JSON values."""
    import json as _json

    target, sep, raw = text.partition("=")
    step, dot, key = target.partition(".")
    if not sep or not dot or not step or not key:
        raise argparse.ArgumentTypeError(
            f"bad override {text!r}; use step.key=value "
            "(e.g. run-campaign.trials=100)"
        )
    try:
        value = _json.loads(raw)
    except ValueError:
        value = raw
    return step, key, value


def cmd_workflow_list(args) -> int:
    """Catalog dump: presets and registered step types."""
    import json as _json

    from .workflow import PRESETS, STEPS, preset_digest

    if args.json:
        payload = {
            "presets": [
                {
                    "name": name,
                    "digest": preset_digest(PRESETS[name]),
                    "steps": list(PRESETS[name].step_names()),
                    "description": PRESETS[name].description,
                }
                for name in sorted(PRESETS)
            ],
            "steps": [
                {
                    "name": name,
                    "version": STEPS.get(name).version,
                    "description": STEPS.get(name).description,
                }
                for name in STEPS.names()
            ],
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{'preset':<18} {'steps':<6} description")
    for name in sorted(PRESETS):
        preset = PRESETS[name]
        print(f"{name:<18} {len(preset.steps):<6} {preset.description}")
    print()
    print(f"{'step':<18} {'v':<3} description")
    for name in STEPS.names():
        step = STEPS.get(name)
        print(f"{name:<18} {step.version:<3} {step.description}")
    return 0


def _run_workflow(args, resuming: bool) -> int:
    import json as _json

    from .service.store import ArtifactStore
    from .workflow import (
        EXIT_INTERRUPTED,
        EXIT_PAUSED,
        WorkflowError,
        WorkflowInterrupted,
        WorkflowRunner,
    )

    if resuming and not args.store:
        raise SystemExit(
            "workflow resume needs --store DIR (the checkpoint root "
            "the interrupted run wrote into)"
        )
    overrides: dict = {}
    for step, key, value in args.set or []:
        overrides.setdefault(step, {})[key] = value
    runner = WorkflowRunner(
        store=ArtifactStore(root=args.store),
        force=getattr(args, "force", False),
        budget_seconds=args.budget_seconds,
    )
    try:
        outcome = runner.run(args.preset, overrides=overrides)
    except WorkflowInterrupted as exc:
        print(f"interrupted: {exc}")
        _export_telemetry(args)
        return EXIT_INTERRUPTED
    except WorkflowError as exc:
        print(f"error: {exc}")
        _export_telemetry(args)
        return 1
    if args.out and outcome.report is not None:
        with open(args.out, "w") as fh:
            fh.write(outcome.report_json())
    if args.json:
        print(_json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"preset {outcome.preset}  digest {outcome.digest}")
        print(f"{'step':<20} {'type':<18} {'source':<7} "
              f"{'seconds':>9}  digest")
        for s in outcome.steps:
            print(f"{s.name:<20} {s.step:<18} {s.source:<7} "
                  f"{s.seconds:>9.3f}  {s.digest}")
        if outcome.pending:
            print("pending: " + ", ".join(outcome.pending))
        print(f"status {outcome.status} | "
              f"executed {outcome.executed_steps} | "
              f"cached {outcome.cached_steps}")
    _export_telemetry(args)
    return EXIT_PAUSED if outcome.status == "paused" else 0


def cmd_workflow_run(args) -> int:
    """Run a preset (checkpointing every step into ``--store``)."""
    return _run_workflow(args, resuming=False)


def cmd_workflow_resume(args) -> int:
    """Resume a killed/paused run: identical to ``run`` except the
    checkpoint root is mandatory (resuming without one is a no-op
    restart, which is never what the operator meant)."""
    return _run_workflow(args, resuming=True)


def cmd_store_gc(args) -> int:
    """LRU-evict the store's disk tier down to a byte budget."""
    import json as _json

    from .service.store import ArtifactStore

    store = ArtifactStore(root=args.root)
    before = store.disk_bytes()
    summary = store.prune(args.max_bytes, keep=args.keep or [])
    if args.json:
        print(_json.dumps(
            {"before_bytes": before, **summary},
            indent=2, sort_keys=True,
        ))
    else:
        print(f"store gc: removed {summary['removed']} artifact(s), "
              f"freed {summary['freed_bytes']} bytes, "
              f"{summary['remaining_bytes']} bytes remain "
              f"({summary['protected']} protected)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant wormhole routing via sacrificial lambs "
        "(Ho & Stockmeyer, IPDPS 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("lamb", help="compute a lamb set")
    _add_fault_args(p)
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--method", choices=("bipartite", "general", "general-exact"),
                   default="bipartite")
    p.add_argument("--engine", choices=("lines", "spanning", "auto"),
                   default="lines")
    p.add_argument("--show-lambs", action="store_true")
    p.add_argument("--render", action="store_true",
                   help="ASCII-render the result (2D meshes)")
    p.add_argument("--verify", action="store_true",
                   help="brute-force certify the lamb set (small meshes)")
    p.add_argument("--out", type=str, default=None,
                   help="write the outcome as JSON")
    p.set_defaults(fn=cmd_lamb)

    p = sub.add_parser("partition", help="show SES/DES partitions")
    _add_fault_args(p)
    p.add_argument("--list", action="store_true", help="list every set")
    p.add_argument("--render", action="store_true")
    p.set_defaults(fn=cmd_partition)

    p = sub.add_parser("simulate", help="wormhole traffic on a faulty mesh")
    _add_fault_args(p)
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--messages", type=int, default=100)
    p.add_argument("--flits", type=int, default=16)
    p.add_argument("--window", type=int, default=50)
    p.add_argument("--buffers", type=int, default=2)
    p.add_argument("--policy", choices=("shortest", "first", "random"),
                   default="shortest")
    p.add_argument("--engine", choices=SIM_ENGINES, default=None,
                   help="step engine (default: REPRO_SIM_ENGINE or "
                   "frontier); all three are cycle-exact")
    p.add_argument("--max-cycles", type=int, default=1_000_000)
    p.add_argument("--inject-fault", action="append", default=[],
                   metavar="CYCLE:NODE",
                   help="kill hardware mid-flight (repeatable): "
                   "CYCLE:X,Y for a node, CYCLE:X,Y-U,V for a directed link")
    p.add_argument("--telemetry", type=str, default=None, metavar="PREFIX",
                   help="write the telemetry registry to "
                   "PREFIX.{prom,ndjson,json} on exit")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "chaos",
        help="live-fault chaos run with rollback/reconfigure epochs",
    )
    _add_fault_args(p)
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--messages", type=int, default=120)
    p.add_argument("--flits", type=int, default=4)
    p.add_argument("--window", type=int, default=80)
    p.add_argument("--buffers", type=int, default=2)
    p.add_argument("--policy", choices=("shortest", "first", "random"),
                   default="shortest")
    p.add_argument("--max-cycles", type=int, default=100_000)
    p.add_argument("--inject-fault", action="append", default=[],
                   metavar="CYCLE:NODE",
                   help="explicit fault event (repeatable); otherwise "
                   "--events seeded-random events are generated")
    p.add_argument("--events", type=int, default=3,
                   help="number of seeded-random fault events")
    p.add_argument("--event-start", type=int, default=20)
    p.add_argument("--event-end", type=int, default=260)
    p.add_argument("--kills-per-event", type=int, default=1)
    p.add_argument("--link-kills-per-event", type=int, default=0)
    p.add_argument("--budget", type=int, default=None,
                   help="lamb budget before the degradation ladder "
                   "escalates (default: 25%% of the mesh)")
    p.add_argument("--extra-rounds", type=int, default=1,
                   help="max k escalation of the degradation ladder")
    p.add_argument("--max-retries", type=int, default=3)
    p.add_argument("--retry-backoff", type=int, default=8)
    p.add_argument("--arrival", choices=("poisson", "weibull"), default=None,
                   help="draw fault events from a renewal process at "
                   "--rate faults/kilocycle instead of --events "
                   "uniform-random events")
    p.add_argument("--rate", type=float, default=2.0,
                   help="Poisson arrival rate (faults per kilocycle)")
    p.add_argument("--arrival-shape", type=float, default=1.5,
                   help="Weibull shape (hazard: <1 infant mortality, "
                   ">1 wear-out)")
    p.add_argument("--arrival-scale", type=float, default=0.5,
                   help="Weibull scale (kilocycles)")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("name", help="fig17..fig26 or section3_one_vs_two_rounds")
    p.add_argument("--trials", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=None,
                   help="fan trials over N workers "
                   "(default: REPRO_JOBS, else serial)")
    p.add_argument("--executor", choices=("thread", "process"), default=None,
                   help="worker pool backend (default: REPRO_EXECUTOR, "
                   "else process); implies parallel fan-out")
    p.set_defaults(fn=cmd_figure)

    p = sub.add_parser(
        "experiments",
        help="regenerate EXPERIMENTS.md (optionally in parallel)",
    )
    p.add_argument("--out", type=str, default="EXPERIMENTS.md",
                   help="output path (default EXPERIMENTS.md)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the trial engine; 0 = "
                   "auto (REPRO_JOBS, else all CPUs); default: "
                   "REPRO_JOBS if set, else serial")
    p.add_argument("--executor", choices=("thread", "process"), default=None,
                   help="worker pool backend (default: REPRO_EXECUTOR, "
                   "else process)")
    p.add_argument("--telemetry", type=str, default=None, metavar="PREFIX",
                   help="write the telemetry registry to "
                   "PREFIX.{prom,ndjson,json} on exit")
    p.add_argument("--section", action="append", default=[],
                   metavar="NAME",
                   help="regenerate only the named section(s) "
                   "(repeatable); see repro.experiments.generate")
    p.set_defaults(fn=cmd_experiments)

    p = sub.add_parser(
        "reliability",
        help="Monte Carlo availability campaign: renewal-process "
        "faults/repairs -> compile -> survivor connectivity -> SLO "
        "verdict with Wilson bounds",
    )
    p.add_argument("--mesh", type=_parse_mesh, default="8x8",
                   help="mesh spec, e.g. 8x8 or torus:8x8 (default 8x8)")
    p.add_argument("--rounds", type=int, default=2,
                   help="routing rounds k (default 2)")
    p.add_argument("--arrival", choices=("poisson", "weibull"),
                   default="poisson")
    p.add_argument("--rate", type=float, default=1.0,
                   help="Poisson arrival rate (faults per time unit)")
    p.add_argument("--arrival-shape", type=float, default=1.5,
                   help="Weibull shape")
    p.add_argument("--arrival-scale", type=float, default=1.0,
                   help="Weibull scale (time units)")
    p.add_argument("--repair", choices=("deterministic", "exponential"),
                   default="deterministic")
    p.add_argument("--mttr", type=float, default=0.25,
                   help="mean time to repair (time units)")
    p.add_argument("--horizon", type=float, default=4.0,
                   help="simulated time units per trial")
    p.add_argument("--trials", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tag", type=int, default=0)
    p.add_argument("--budget", type=int, default=None,
                   help="lamb budget before the degradation ladder "
                   "escalates")
    p.add_argument("--extra-rounds", type=int, default=1,
                   help="max k escalation of the degradation ladder")
    p.add_argument("--connectivity", type=float, default=0.9,
                   help="per-epoch survivor-connectivity SLO floor")
    p.add_argument("--availability", type=float, default=0.99,
                   help="required time-weighted availability")
    p.add_argument("--jobs", type=int, default=None,
                   help="fan trials over N workers (0 = all CPUs)")
    p.add_argument("--executor", choices=("thread", "process"), default=None,
                   help="worker pool backend (default: REPRO_EXECUTOR, "
                   "else process)")
    p.add_argument("--json", type=str, default=None, metavar="PATH",
                   help="write the deterministic campaign report")
    p.add_argument("--require-slo", action="store_true",
                   help="exit 1 when the availability SLO is not met")
    p.add_argument("--telemetry", type=str, default=None, metavar="PREFIX",
                   help="write the telemetry registry to "
                   "PREFIX.{prom,ndjson,json} on exit")
    p.add_argument("--redact-timings", action="store_true",
                   help="zero duration fields in exported telemetry")
    p.set_defaults(fn=cmd_reliability)

    p = sub.add_parser("reconfigure", help="replay fault epochs from JSON")
    p.add_argument("script", help="JSON: {mesh, rounds?, epochs: [...]}")
    p.add_argument("--out", type=str, default=None)
    p.set_defaults(fn=cmd_reconfigure)

    p = sub.add_parser("collective", help="run a collective among survivors")
    _add_fault_args(p)
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument(
        "--algorithm",
        choices=("broadcast", "gather", "allgather", "ring-allgather",
                 "all-to-one"),
        default="allgather",
    )
    p.add_argument("--ranks", type=int, default=0,
                   help="participant count (default: all survivors)")
    p.add_argument("--flits", type=int, default=8)
    p.set_defaults(fn=cmd_collective)

    p = sub.add_parser("worked-example", help="print the Section 5 artifacts")
    p.set_defaults(fn=cmd_worked_example)

    p = sub.add_parser(
        "analyze",
        help="run the domain lint suite (exit 1 on any violation)",
    )
    p.add_argument("paths", nargs="*", help="files or directories to lint")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--concurrency", action="store_true",
                   help="run the interprocedural concurrency pass "
                   "(REP201-REP205) instead of the per-file lint rules")
    p.add_argument("--baseline", default=None,
                   help="suppression baseline JSON for --concurrency; "
                   "new findings AND stale entries both fail the gate")
    p.add_argument("--out", default=None,
                   help="write the --concurrency report artifact "
                   "(JSON) to this path")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "prove",
        help="statically prove a configuration deadlock-free "
        "(CDG acyclicity; exit 1 with a counterexample cycle otherwise)",
    )
    _add_fault_args(p)
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--single-vc", action="store_true",
                   help="map every round to VC 0 (a known-broken "
                   "discipline, useful for demonstrating a cycle)")
    p.add_argument("--out", type=str, default=None,
                   help="write the report (incl. any counterexample "
                   "cycle) as a JSON artifact")
    p.set_defaults(fn=cmd_prove)

    p = sub.add_parser(
        "serve",
        help="run the reconfiguration control plane "
        "(compile cache + route-query service)",
    )
    _add_fault_args(p)
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, printed at startup)")
    p.add_argument("--method", choices=("bipartite", "general", "general-exact"),
                   default="bipartite")
    p.add_argument("--policy", choices=("shortest", "first", "random"),
                   default="shortest")
    p.add_argument("--store", type=str, default=None,
                   help="artifact-store directory (default: in-memory only)")
    p.add_argument("--verify", action="store_true",
                   help="CDG-prove every artifact deadlock-free before "
                   "publishing")
    p.add_argument("--budget", type=int, default=None,
                   help="lamb budget before the degradation ladder escalates")
    p.add_argument("--extra-rounds", type=int, default=1)
    p.add_argument("--request-timeout", type=float, default=30.0)
    p.add_argument("--metrics-json", type=str, default=None,
                   help="write a metrics snapshot here on shutdown")
    p.add_argument("--smoke", action="store_true",
                   help="run the deterministic end-to-end acceptance "
                   "scenario and exit (default config: 16x16, 5 faults)")
    p.add_argument("--queries", type=int, default=1000,
                   help="route queries issued by --smoke")
    p.add_argument("--telemetry", type=str, default=None, metavar="PREFIX",
                   help="write the telemetry registry to "
                   "PREFIX.{prom,ndjson,json} on shutdown")
    p.add_argument("--shards", type=int, default=0,
                   help="serve through a shard router over N replica "
                   "worker processes instead of a single in-process "
                   "server")
    p.add_argument("--shard-smoke", action="store_true",
                   help="run the sharded-plane acceptance scenario "
                   "(loadgen twice + worker kill + recovery) and exit")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "stats",
        help="run the seeded telemetry smoke and print the unified "
        "metrics registry (per-phase lamb timings, simulator "
        "stall/abort counters, control-plane latencies)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--messages", type=int, default=60,
                   help="messages pushed through the smoke simulation")
    p.add_argument("--sim-engine", choices=SIM_ENGINES,
                   default="frontier")
    p.add_argument("--format", choices=("prom", "json", "ndjson"),
                   default="prom",
                   help="stdout format (Prometheus exposition, JSON "
                   "snapshot, or NDJSON event log)")
    p.add_argument("--redact-timings", action="store_true",
                   help="zero every duration field (two seeded runs "
                   "become byte-identical; used by make obs-smoke)")
    p.add_argument("--telemetry", type=str, default=None, metavar="PREFIX",
                   help="also write PREFIX.{prom,ndjson,json}")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "loadgen",
        help="drive sustained mixed query/delta traffic at a running "
        "control plane and report p50/p99 latency + queries/s",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--codec", choices=("ndjson", "binary"),
                   default="binary")
    p.add_argument("--connections", type=int, default=2)
    p.add_argument("--batches", type=int, default=50,
                   help="measured query batches (after warmup)")
    p.add_argument("--batch-size", type=int, default=100)
    p.add_argument("--pool-pairs", type=int, default=0,
                   help="distinct (src,dst) flows measured traffic "
                   "draws from (0: 4x batch size)")
    p.add_argument("--warmup-batches", type=int, default=2,
                   help="untimed batches that warm every replica's "
                   "route cache first")
    p.add_argument("--delta-every", type=int, default=0,
                   help="send a fault delta every N batches on "
                   "connection 0 (0: queries only)")
    p.add_argument("--delta-offset", type=int, default=0,
                   help="skip the first N reserved delta victims "
                   "(for back-to-back campaigns)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mesh", type=_parse_mesh, default=None,
                   help="target machine (must match the server's; "
                   "default 16x16)")
    p.add_argument("--faults", type=int, default=5,
                   help="seeded base faults compiled before traffic")
    p.add_argument("--fault-seed", type=int, default=4)
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--timeout", type=float, default=120.0)
    p.add_argument("--deterministic", action="store_true",
                   help="print only the seed-determined snapshot "
                   "(diffable across runs)")
    p.add_argument("--json", type=str, default=None,
                   help="also write the full report here")
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser(
        "query",
        help="resolve routes / fetch stats from a running control plane",
    )
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--source", type=_parse_node, default=None)
    p.add_argument("--dest", type=_parse_node, default=None)
    p.add_argument("--epoch", type=int, default=None,
                   help="pin the reconfiguration epoch (typed stale-epoch "
                   "error on mismatch)")
    p.add_argument("--timeout", type=float, default=10.0)
    p.add_argument("--stats", action="store_true",
                   help="print the stats RPC snapshot instead of querying")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the server to drain gracefully")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser(
        "workflow",
        help="declarative campaign workflows with content-addressed "
        "checkpoint-resume",
    )
    wsub = p.add_subparsers(dest="workflow_command", required=True)

    w = wsub.add_parser("list", help="list presets and registered steps")
    w.add_argument("--json", action="store_true")
    w.set_defaults(fn=cmd_workflow_list)

    for verb, fn, hlp in (
        ("run", cmd_workflow_run,
         "run a preset, checkpointing every step into --store"),
        ("resume", cmd_workflow_resume,
         "resume a killed or paused run from its --store checkpoints"),
    ):
        w = wsub.add_parser(verb, help=hlp)
        w.add_argument("preset", help="preset name (see `workflow list`)")
        w.add_argument("--store", type=str, default=None, metavar="DIR",
                       required=(verb == "resume"),
                       help="checkpoint root (ArtifactStore disk tier); "
                       "omitted = in-memory, no resume possible")
        w.add_argument("--budget-seconds", type=float, default=None,
                       help="graceful checkpoint-and-stop after this "
                       "much wall time (exit code 3)")
        w.add_argument("--set", type=_parse_override, action="append",
                       default=[], metavar="STEP.KEY=VALUE",
                       help="override a step parameter (repeatable); "
                       "enters the preset digest, so overridden runs "
                       "checkpoint under their own keys")
        w.add_argument("--out", type=str, default=None,
                       help="write the final report JSON here")
        w.add_argument("--json", action="store_true",
                       help="machine-readable outcome on stdout")
        w.add_argument("--telemetry", type=str, default=None,
                       metavar="PREFIX",
                       help="write PREFIX.{prom,ndjson,json} on exit")
        if verb == "run":
            w.add_argument("--force", action="store_true",
                           help="recompute every step, overwriting "
                           "checkpoints")
        w.set_defaults(fn=fn)

    p = sub.add_parser("store", help="artifact-store maintenance")
    ssub = p.add_subparsers(dest="store_command", required=True)
    s = ssub.add_parser(
        "gc",
        help="LRU-evict the disk tier down to a byte budget "
        "(pinned digests and --keep survive)",
    )
    s.add_argument("--root", type=str, required=True,
                   help="store root directory")
    s.add_argument("--max-bytes", type=int, required=True,
                   help="target size of the disk tier")
    s.add_argument("--keep", action="append", default=[],
                   metavar="DIGEST",
                   help="digest to protect from eviction (repeatable)")
    s.add_argument("--json", action="store_true")
    s.set_defaults(fn=cmd_store_gc)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
