"""The control-plane compiler: fault set in, routing artifact out.

``compile`` is a pure function of the canonical config (that is what
makes content-addressed caching sound), so the compiler deliberately
runs **without** sticky lambs — cross-epoch lamb stability would make
the artifact depend on compile *history* and reintroduce the
stale-cache hazard the digest exists to kill.

The compile path is the full production ladder:

1. digest the canonical config and probe the two-tier
   :class:`~repro.service.store.ArtifactStore` (live LRU, then disk);
2. on a miss, run the lamb pipeline through the PR-1 degradation
   ladder (:meth:`~repro.core.reconfigure.ReconfigurationManager.\
report_faults_degraded`: recompute, escalate ``k -> k+1``, quarantine,
   least-bad fallback);
3. optionally cross-check the result with the PR-3 CDG prover —
   an artifact is only published if its channel-dependency graph is
   acyclic;
4. publish the artifact (store + live cache) and bump the
   reconfiguration epoch.

Fault *deltas* (:meth:`ReconfigurationCompiler.apply_delta`) reuse the
current epoch's state incrementally: ``FaultSet.with_faults`` for the
fault set and a cloned ``FaultGrids`` + ``add_faults`` for the routing
grids, instead of rebuilding either from scratch.

Concurrency contract: the server offloads ``compile``/``apply_delta``
to worker threads, so **mutations are serialized** by a dedicated
mutation lock held across base-read -> compile -> activate.  Without
it two concurrent deltas could both base on the same epoch and the
second activation would silently drop the first delta's faults — the
live table would then route through known-dead hardware.  Queries
(:meth:`ReconfigurationCompiler.route`) never take the mutation lock;
they read the current artifact reference atomically and stay fast
while a compile runs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from ..core.lamb import LambResult
from ..core.reconfigure import ReconfigurationError, ReconfigurationManager
from ..core.routing_table import RouteEntry, RoutingTable
from ..mesh.faults import FaultSet
from ..mesh.geometry import Link, Mesh, Node
from ..mesh.serialization import (
    routing_table_from_dict,
    routing_table_to_dict,
)
from ..routing.multiround import FaultGrids
from ..routing.ordering import KRoundOrdering
from .errors import CompileError, MalformedRequestError, StaleEpochError
from .errors import ServiceError, ServiceUnavailableError
from .metrics import ServiceMetrics
from .store import ArtifactStore, config_digest

__all__ = ["CompiledArtifact", "ReconfigurationCompiler"]


@dataclass(frozen=True)
class CompiledArtifact:
    """One published reconfiguration: identity, epoch, and the routable
    state.

    ``epoch`` is the activation counter — it changes every time the
    machine's routing state changes (fresh compile, delta, or
    re-activation of an older cached config), which is what queries pin
    against.  ``digest`` is the content identity — it never changes for
    a given config, which is what the cache keys on.
    """

    digest: str
    epoch: int
    result: LambResult
    table: RoutingTable
    compile_seconds: float
    escalated_rounds: int = 0
    quarantined: Tuple[Node, ...] = ()
    verified: bool = False
    incremental: bool = False

    @property
    def k(self) -> int:
        return self.result.orderings.k

    @property
    def num_lambs(self) -> int:
        return self.result.size

    @property
    def num_survivors(self) -> int:
        return (
            self.result.mesh.num_nodes
            - self.result.faults.num_node_faults
            - self.result.size
        )

    @property
    def degraded(self) -> bool:
        return self.escalated_rounds > 0 or bool(self.quarantined)

    def summary(self) -> Dict[str, Any]:
        """The JSON-able body of a ``compile``/``delta`` reply."""
        return {
            "digest": self.digest,
            "epoch": self.epoch,
            "faults": self.result.faults.f,
            "k": self.k,
            "lambs": self.num_lambs,
            "lamb_nodes": sorted(list(v) for v in self.result.lambs),
            "survivors": self.num_survivors,
            "escalated_rounds": self.escalated_rounds,
            "quarantined": sorted(list(v) for v in self.quarantined),
            "degraded": self.degraded,
            "verified": self.verified,
            "incremental": self.incremental,
        }


class ReconfigurationCompiler:
    """Compile-once-serve-forever front end over the lamb pipeline.

    Parameters
    ----------
    mesh, orderings:
        The machine and its (initial) routing discipline; the ladder
        may escalate ``orderings`` and the escalated discipline is
        adopted for subsequent compiles, mirroring
        :class:`~repro.core.reconfigure.ReconfigurationManager`.
    store:
        Artifact store (default: in-memory only).
    metrics:
        Shared :class:`~repro.service.metrics.ServiceMetrics`.
    method, policy:
        Lamb method and route-selection policy — both part of the
        canonical cache identity.
    verify:
        Cross-check every fresh artifact with the CDG deadlock prover
        before publishing (a cyclic CDG is a :class:`CompileError`,
        never a published artifact).
    lamb_budget, max_extra_rounds:
        Degradation-ladder knobs (see ``report_faults_degraded``).
    """

    def __init__(
        self,
        mesh: Mesh,
        orderings: KRoundOrdering,
        store: Optional[ArtifactStore] = None,
        metrics: Optional[ServiceMetrics] = None,
        method: str = "bipartite",
        policy: str = "shortest",
        verify: bool = False,
        lamb_budget: Optional[int] = None,
        max_extra_rounds: int = 1,
        engine: str = "lines",
        slow_compile_seconds: float = 2.0,
        slow_query_seconds: float = 0.05,
    ) -> None:
        self.mesh = mesh
        self.orderings = orderings
        self.store = store if store is not None else ArtifactStore()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.method = method
        self.policy = policy
        self.verify = verify
        self.lamb_budget = lamb_budget
        self.max_extra_rounds = int(max_extra_rounds)
        self.engine = engine
        #: Slow-op thresholds (seconds): compiles and queries past
        #: these land in the registry's structured slow-op log.
        self.slow_compile_seconds = float(slow_compile_seconds)
        self.slow_query_seconds = float(slow_query_seconds)
        self._live: Dict[str, CompiledArtifact] = {}
        self._current: Optional[CompiledArtifact] = None
        self._next_epoch = 0
        #: Guards fast shared state (`_current`, `_live`, `_next_epoch`,
        #: ``orderings``) for readers on other threads.
        self._lock = threading.Lock()
        #: Serializes *mutations* (compile/delta) end to end: the base
        #: read, the lamb pipeline run, and the activation happen under
        #: one critical section, so every delta bases on the latest
        #: activated fault set (no lost updates between concurrent
        #: worker threads).
        self._mutation_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[CompiledArtifact]:
        return self._current

    @property
    def current_epoch(self) -> int:
        return -1 if self._current is None else self._current.epoch

    def digest_for(self, faults: FaultSet) -> str:
        with self._lock:
            orderings = self.orderings
        return config_digest(
            faults, orderings, method=self.method, policy=self.policy
        )

    # ------------------------------------------------------------------
    def compile(self, faults: FaultSet) -> Tuple[CompiledArtifact, str]:
        """Compile (or fetch) the artifact for ``faults`` and make it
        the current epoch.

        Returns ``(artifact, source)`` where ``source`` is ``"current"``
        (identical to the live epoch — a cache hit that does *not* bump
        the epoch), ``"memory"``/``"store"`` (cache hit re-activated
        under a fresh epoch), or ``"compiled"`` (cache miss).
        """
        if faults.mesh != self.mesh:
            raise MalformedRequestError(
                f"fault set targets {faults.mesh}, server machine is "
                f"{self.mesh}"
            )
        with self._mutation_lock:
            digest = self.digest_for(faults)
            cached = self._cached(digest)
            if cached is not None:
                return cached
            self.metrics.cache_misses.inc()
            artifact = self._compile_miss(digest, faults, grids=None)
            with self._lock:
                return self._activate(artifact), "compiled"

    def apply_delta(
        self,
        node_faults: Iterable[Sequence[int]] = (),
        link_faults: Iterable[Tuple[Sequence[int], Sequence[int]]] = (),
    ) -> Tuple[CompiledArtifact, str]:
        """Incremental recompile: extend the current epoch's fault set
        with newly detected faults and activate the result.

        The new fault set comes from ``FaultSet.with_faults`` and the
        routing grids from a clone of the current epoch's grids updated
        in place via ``FaultGrids.add_faults`` — O(delta) state
        transfer, no from-scratch rebuild of either.

        The base epoch is read *inside* the mutation lock: two
        concurrent deltas serialize, and the second bases on the first
        one's activated fault set instead of overwriting it.
        """
        new_nodes = tuple(tuple(int(x) for x in v) for v in node_faults)
        new_links: Tuple[Link, ...] = tuple(
            (tuple(int(x) for x in u), tuple(int(x) for x in w))
            for (u, w) in link_faults
        )
        if not new_nodes and not new_links:
            raise MalformedRequestError("a fault delta must name faults")
        with self._mutation_lock:
            base = self._current
            if base is None:
                raise ServiceUnavailableError(
                    "no current artifact; compile a base config before "
                    "applying fault deltas"
                )
            faults = base.result.faults.with_faults(new_nodes, new_links)
            self.metrics.incremental_compiles.inc()
            digest = self.digest_for(faults)
            cached = self._cached(digest)
            if cached is not None:
                return cached  # "current" when the delta was redundant
            self.metrics.cache_misses.inc()
            grids = base.table.grids.clone()
            grids.add_faults(new_nodes, new_links)
            artifact = self._compile_miss(
                digest, faults, grids=grids, incremental=True
            )
            with self._lock:
                return self._activate(artifact), "compiled"

    def _cached(
        self, digest: str
    ) -> Optional[Tuple[CompiledArtifact, str]]:
        """Cache probe (caller holds the mutation lock): the current
        epoch, then the live LRU, then the disk store."""
        with self._lock:
            if self._current is not None and self._current.digest == digest:
                self.metrics.cache_hits.inc()
                return self._current, "current"
            artifact = self._live.get(digest)
            if artifact is not None:
                self.metrics.cache_hits.inc()
                return self._activate(artifact), "memory"
        record = self.store.get(digest)
        if record is not None:
            restored = self._restore(digest, record)
            if restored is not None:
                self.metrics.cache_hits.inc()
                with self._lock:
                    return self._activate(restored), "store"
        return None

    # ------------------------------------------------------------------
    def route(
        self,
        source: Sequence[int],
        dest: Sequence[int],
        epoch: Optional[int] = None,
    ) -> RouteEntry:
        """Resolve a route against the current epoch.

        ``epoch`` pins the reconfiguration the caller believes is live;
        a mismatch is a :class:`StaleEpochError` (the fast data path
        must never be served routes from a superseded configuration).
        """
        current = self._current
        if current is None:
            raise ServiceUnavailableError(
                "no current artifact; compile a config first"
            )
        if epoch is not None and int(epoch) != current.epoch:
            self.metrics.stale_epoch_rejections.inc()
            raise StaleEpochError(int(epoch), current.epoch)
        self.metrics.queries.inc()
        t0 = time.perf_counter()
        try:
            entry = current.table.lookup(source, dest)
        except ValueError as exc:  # non-survivor endpoint
            raise MalformedRequestError(str(exc))
        except RuntimeError as exc:  # unreachable => invalid lamb set
            raise ServiceError(str(exc))
        elapsed = time.perf_counter() - t0
        self.metrics.query_latency.observe(elapsed)
        self.metrics.registry.slow_op(
            "service.query", elapsed,
            threshold=self.slow_query_seconds, epoch=current.epoch,
        )
        return entry

    # ------------------------------------------------------------------
    def persist_current(self) -> None:
        """Re-publish the current artifact with its warmed route
        entries (called on graceful drain so the next process starts
        with a hot table)."""
        current = self._current
        if current is None:
            return
        self.store.put(current.digest, self._record(current))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _activate(self, artifact: CompiledArtifact) -> CompiledArtifact:
        """Make ``artifact`` the current epoch (caller holds the lock
        for cached paths; fresh compiles pass a brand-new object)."""
        if self._current is not None and artifact.digest == self._current.digest:
            return self._current
        activated = replace(artifact, epoch=self._next_epoch)
        self._next_epoch += 1
        self._live[artifact.digest] = activated
        self._current = activated
        self.metrics.epoch.set(activated.epoch)
        return activated

    def _compile_miss(
        self,
        digest: str,
        faults: FaultSet,
        grids: Optional[FaultGrids],
        incremental: bool = False,
    ) -> CompiledArtifact:
        t0 = time.perf_counter()
        mgr = ReconfigurationManager(
            self.mesh,
            self.orderings,
            sticky_lambs=False,
            method=self.method,
            engine=self.engine,
        )
        try:
            epoch = mgr.report_faults_degraded(
                node_faults=faults.node_faults,
                link_faults=faults.link_faults,
                lamb_budget=self.lamb_budget,
                max_extra_rounds=self.max_extra_rounds,
            )
        except ReconfigurationError as exc:
            raise CompileError(str(exc))
        result = epoch.result
        alias: Optional[str] = None
        if epoch.escalated_rounds > 0:
            # Adopt the escalated discipline, as the ladder contract
            # prescribes; later digests include the extra rounds.  The
            # update is lock-guarded (readers on other threads), and
            # the artifact is *re-keyed* under the post-escalation
            # digest so an immediately repeated compile of the same
            # fault set — which now digests with the adopted orderings
            # — hits the 'current' fast path instead of recompiling
            # and bumping the epoch for an unchanged machine.  The
            # pre-escalation digest is kept as a store alias so a
            # restarted server with the initial discipline still warm
            # starts from the cached record.
            with self._lock:
                self.orderings = mgr.orderings
            rekeyed = self.digest_for(faults)
            if rekeyed != digest:
                alias = digest
                digest = rekeyed
        if epoch.degraded:
            self.metrics.degraded_compiles.inc()
        if self.verify:
            self._cross_check(result)
        # Degradation may have quarantined nodes (extra faults beyond
        # the delta), in which case the cloned grids are stale — fall
        # back to a rebuild for correctness.
        if grids is not None and result.faults != faults:
            grids = None
        table = RoutingTable(result, policy=self.policy, grids=grids)
        wall = time.perf_counter() - t0
        self.metrics.compiles.inc()
        self.metrics.compile_latency.observe(wall)
        self.metrics.registry.slow_op(
            "service.compile", wall,
            threshold=self.slow_compile_seconds,
            digest=digest, incremental=incremental,
            degraded=epoch.degraded,
        )
        artifact = CompiledArtifact(
            digest=digest,
            epoch=-1,  # assigned at activation
            result=result,
            table=table,
            compile_seconds=wall,
            escalated_rounds=epoch.escalated_rounds,
            quarantined=epoch.quarantined,
            verified=self.verify,
            incremental=incremental,
        )
        record = self._record(artifact)
        self.store.put(digest, record)
        if alias is not None:
            self.store.put(alias, record)
        return artifact

    def _cross_check(self, result: LambResult) -> None:
        from ..analysis.static.cdg import StaticDeadlockError, assert_deadlock_free

        try:
            assert_deadlock_free(result.faults, result.orderings)
        except StaticDeadlockError as exc:
            raise CompileError(
                f"CDG cross-check refused to publish the artifact: {exc}"
            )

    def _record(self, artifact: CompiledArtifact) -> Dict[str, Any]:
        record = routing_table_to_dict(artifact.table)
        record["service"] = {
            "compile_seconds": round(artifact.compile_seconds, 6),
            "escalated_rounds": artifact.escalated_rounds,
            "quarantined": sorted(list(v) for v in artifact.quarantined),
            "verified": artifact.verified,
        }
        return record

    def _restore(
        self, digest: str, record: Dict[str, Any]
    ) -> Optional[CompiledArtifact]:
        """Rebuild a :class:`CompiledArtifact` from a disk record, or
        ``None`` when the record does not validate (a corrupt artifact
        is a cache miss, never a crash)."""
        try:
            table = routing_table_from_dict(record)
        except (KeyError, TypeError, ValueError):
            return None
        meta = record.get("service") or {}
        return CompiledArtifact(
            digest=digest,
            epoch=-1,
            result=table.result,
            table=table,
            compile_seconds=float(meta.get("compile_seconds", 0.0)),
            escalated_rounds=int(meta.get("escalated_rounds", 0)),
            quarantined=tuple(
                tuple(int(x) for x in v)
                for v in meta.get("quarantined", [])
            ),
            verified=bool(meta.get("verified", False)),
        )
