"""Control-plane metrics, fronting the shared telemetry registry.

:class:`ServiceMetrics` keeps its historical attribute API — named
counters (``metrics.compiles.inc()``), latency histograms, an epoch
gauge, and the deterministic JSON snapshot served by the ``stats``
RPC — but since the unified observability layer landed it *allocates*
every primitive through a :class:`repro.obs.TelemetryRegistry` instead
of owning private ones.  The primitives themselves (``Counter``,
``Gauge``, ``Histogram``) were promoted to :mod:`repro.obs.metrics`;
they are re-exported here for backward compatibility.

By default each :class:`ServiceMetrics` gets a *private* fresh
registry, so unit tests that assert exact counts stay isolated.  Pass
``registry=repro.obs.get_registry()`` (the CLI's ``serve`` path does)
to publish the control-plane series into the ambient process-wide
registry alongside the lamb-pipeline spans and simulator counters.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..obs.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram
from ..obs.registry import TelemetryRegistry

__all__ = ["Counter", "Gauge", "Histogram", "ServiceMetrics"]

#: Kept for backward compatibility with pre-obs imports.
_DEFAULT_BUCKETS = DEFAULT_BUCKETS


class ServiceMetrics:
    """Everything the control plane measures about itself.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.TelemetryRegistry` to allocate the
        primitives through.  ``None`` (default) creates a private
        fresh registry — exact-count isolation for tests; the serve
        CLI passes the ambient registry so ``stats`` and the
        ``--telemetry`` exporters see one coherent set of series.
    """

    def __init__(self, registry: Optional[TelemetryRegistry] = None) -> None:
        reg = TelemetryRegistry() if registry is None else registry
        self.registry = reg
        self.requests = reg.counter("service_requests_total")
        self.replies_ok = reg.counter("service_replies_total", status="ok")
        self.replies_error = reg.counter(
            "service_replies_total", status="error"
        )
        self.cache_hits = reg.counter("service_cache_total", result="hit")
        self.cache_misses = reg.counter("service_cache_total", result="miss")
        self.compiles = reg.counter("service_compiles_total")
        self.incremental_compiles = reg.counter(
            "service_incremental_compiles_total"
        )
        self.degraded_compiles = reg.counter("service_degraded_compiles_total")
        self.queries = reg.counter("service_queries_total")
        self.stale_epoch_rejections = reg.counter(
            "service_stale_epoch_rejections_total"
        )
        self.malformed_requests = reg.counter(
            "service_malformed_requests_total"
        )
        self.timeouts = reg.counter("service_timeouts_total")
        self.connections_ndjson = reg.counter(
            "service_connections_total", codec="ndjson"
        )
        self.connections_binary = reg.counter(
            "service_connections_total", codec="binary"
        )
        self.wire_protocol_errors = reg.counter(
            "service_wire_protocol_errors_total"
        )
        self.compile_latency = reg.histogram("service_compile_seconds")
        self.query_latency = reg.histogram("service_query_seconds")
        self.epoch = reg.gauge("service_epoch", value=-1.0)

    def hit_rate(self) -> float:
        total = self.cache_hits.value + self.cache_misses.value
        return self.cache_hits.value / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-able readout (the ``stats`` RPC body)."""
        return {
            "cache": {
                "hit_rate": round(self.hit_rate(), 4),
                "hits": self.cache_hits.value,
                "misses": self.cache_misses.value,
            },
            "compile_latency": self.compile_latency.snapshot(),
            "counters": {
                "compiles": self.compiles.value,
                "connections_binary": self.connections_binary.value,
                "connections_ndjson": self.connections_ndjson.value,
                "degraded_compiles": self.degraded_compiles.value,
                "incremental_compiles": self.incremental_compiles.value,
                "malformed_requests": self.malformed_requests.value,
                "queries": self.queries.value,
                "replies_error": self.replies_error.value,
                "replies_ok": self.replies_ok.value,
                "requests": self.requests.value,
                "stale_epoch_rejections": self.stale_epoch_rejections.value,
                "timeouts": self.timeouts.value,
                "wire_protocol_errors": self.wire_protocol_errors.value,
            },
            "epoch": int(self.epoch.value),
            "query_latency": self.query_latency.snapshot(),
        }
