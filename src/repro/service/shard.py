"""Sharded, replicated route-query plane: a front router over N
worker processes.

Topology
--------

::

    clients (ndjson or binary)
        |
    ShardRouter  -- one asyncio process, no routing state of its own
        |  binary frames, one channel per worker
        +-- shard worker 0:  RouteQueryServer + warmed RoutingTable
        +-- shard worker 1:  RouteQueryServer + warmed RoutingTable
        +-- ...
      shared on-disk ArtifactStore root (the replication channel)

Every worker holds the **full** routing state (replica model), so any
in-sync worker can answer any read.  Content digests still partition
the *expensive* work: a mutation's home shard — chosen by hashing the
request content with the same canonical-JSON discipline the
:mod:`~repro.service.store` digests use — runs the lamb pipeline
(cache miss); the broadcast to the remaining workers then re-activates
the artifact out of the shared disk store (cache hit), so equal
configs always pay the compile once and always land it on the same
worker's warm LRU.

Consistency contract: the router serializes mutations under one lock
and broadcasts each to every in-sync worker (home first) before
replying.  All workers therefore apply the same activation sequence,
which keeps their epoch counters **equal** — an epoch-pinned query is
valid on any in-sync replica, and the epoch-vs-digest split from the
compiler carries over unchanged.  Reads fan out round-robin; a worker
that dies mid-read is marked out of sync, the read retries on a
surviving replica (no lost replies), and a bounded respawn rebuilds
the worker and replays the mutation log (store hits make the replay
cheap) before it rejoins the read rotation.

Relay fast path: a read-only message is forwarded to the chosen
worker as its **original payload bytes** (an NDJSON line body is a
valid frame body), and a binary client gets the worker's reply frame
relayed verbatim — the router never re-serializes the hot path.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing as mp
import tempfile
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..mesh.geometry import Mesh
from ..routing.ordering import ascending, repeated
from .client import RouteQueryClient
from .errors import (
    MalformedRequestError,
    ServiceError,
    ServiceUnavailableError,
    WireProtocolError,
    to_wire,
)
from . import wire
from .compiler import ReconfigurationCompiler
from .server import RouteQueryServer
from .store import ArtifactStore

__all__ = [
    "ShardWorkerSpec",
    "ShardRouter",
    "home_shard",
    "run_shard_worker",
]

#: Ops the router may serve from any in-sync replica.
_READ_OPS = frozenset({"ping", "query", "stats"})

#: Ops the router must broadcast to every replica.
_MUTATION_OPS = frozenset({"compile", "delta"})

_READY_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class ShardWorkerSpec:
    """Plain-data recipe for one shard worker process.

    Every field is picklable primitive data: the spec crosses the
    process boundary under the ``spawn`` start method, and nothing
    live (locks, registries, sockets) may ride along with it.
    """

    shard_id: int
    dims: Tuple[int, ...]
    rounds: int
    store_root: str
    host: str = "127.0.0.1"
    request_timeout: float = 30.0
    drain_timeout: float = 5.0
    verify: bool = False


def shard_key(payload: Dict[str, Any]) -> str:
    """Deterministic content key for routing a request to its home
    shard — same canonical-JSON discipline as the artifact digests
    (sorted keys, no whitespace), so equal configs always map to the
    same shard regardless of field order."""
    scrubbed = {k: v for k, v in payload.items() if k != "id"}
    blob = json.dumps(
        scrubbed, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=20).hexdigest()


def home_shard(payload: Dict[str, Any], num_shards: int) -> int:
    """Which worker owns the expensive compile for this request."""
    return int(shard_key(payload)[:8], 16) % max(1, num_shards)


async def _shard_worker_main(
    spec: ShardWorkerSpec,
    conn: Connection,
    compiler: ReconfigurationCompiler,
) -> None:
    server = RouteQueryServer(
        compiler,
        host=spec.host,
        port=0,
        request_timeout=spec.request_timeout,
        drain_timeout=spec.drain_timeout,
    )
    host, port = await server.start()
    conn.send(
        {"event": "ready", "shard_id": spec.shard_id,
         "host": host, "port": int(port)}
    )
    conn.close()
    await server.serve_until_shutdown()


def run_shard_worker(spec: ShardWorkerSpec, conn: Connection) -> None:
    """Process entry point for one shard worker (spawn-safe).

    The compiler (and the store-root mkdir inside it) is built here,
    before the event loop exists, so no blocking setup call ever runs
    on the loop.
    """
    mesh = Mesh(spec.dims)
    compiler = ReconfigurationCompiler(
        mesh,
        repeated(ascending(mesh.d), spec.rounds),
        store=ArtifactStore(root=spec.store_root),
        verify=spec.verify,
    )
    asyncio.run(_shard_worker_main(spec, conn, compiler))


@dataclass
class _WorkerHandle:
    """Router-side view of one worker slot."""

    shard_id: int
    process: Optional[BaseProcess] = None
    host: str = ""
    port: int = 0
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None
    lock: "asyncio.Lock" = field(default_factory=asyncio.Lock)
    in_sync: bool = False
    respawns: int = 0

    async def roundtrip(self, payload: bytes) -> bytes:
        """One framed request/reply exchange on this worker's channel.

        The lock pairs request and reply by order — concurrent reads
        interleave whole exchanges, never halves of them.
        """
        assert self.reader is not None and self.writer is not None
        async with self.lock:
            self.writer.write(wire.frame_header(len(payload)))
            self.writer.write(memoryview(payload))
            await self.writer.drain()
            body = await wire.read_frame(self.reader)
        if body is None:
            raise ConnectionError(
                f"shard worker {self.shard_id} closed its channel"
            )
        return body

    async def close_channel(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self.reader = None
        self.writer = None


class ShardRouter:
    """Front process of the sharded route-query plane.

    Speaks both wire codecs to clients (the same per-connection
    negotiation as :class:`~repro.service.server.RouteQueryServer`)
    and binary frames to its workers.

    Parameters
    ----------
    dims, rounds:
        The machine every worker compiles for.
    num_shards:
        Worker process count.
    store_root:
        Shared on-disk artifact store (the replication channel).
        ``None`` creates a private temporary root for the router's
        lifetime.
    max_respawns:
        Per-slot ceiling on crash recoveries; a slot that exhausts it
        stays out of the read rotation.
    """

    def __init__(
        self,
        dims: Sequence[int],
        rounds: int = 2,
        num_shards: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        store_root: Optional[str] = None,
        request_timeout: float = 30.0,
        drain_timeout: float = 5.0,
        max_respawns: int = 3,
        verify: bool = False,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.dims = tuple(int(d) for d in dims)
        self.rounds = int(rounds)
        self.num_shards = int(num_shards)
        self.host = host
        self.port = int(port)
        self.request_timeout = float(request_timeout)
        self.drain_timeout = float(drain_timeout)
        self.max_respawns = int(max_respawns)
        self.verify = bool(verify)
        self._tmp: Optional[tempfile.TemporaryDirectory[str]] = None
        if store_root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-shards-")
            store_root = self._tmp.name
        self.store_root = store_root
        self._ctx = mp.get_context("spawn")
        self._workers: List[_WorkerHandle] = [
            _WorkerHandle(shard_id=i) for i in range(self.num_shards)
        ]
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._respawn_tasks: Set["asyncio.Task[None]"] = set()
        self._mutation_lock: Optional[asyncio.Lock] = None
        self._mutation_log: List[Dict[str, Any]] = []
        self._shutdown_event: Optional[asyncio.Event] = None
        self._draining = False
        self._rr = 0
        # Deterministic router-level accounting (the router_stats op).
        self.reads_forwarded = 0
        self.read_retries = 0
        self.mutations = 0
        self.respawns = 0
        self.epoch_divergences = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Spawn the workers, connect channels, bind the front port."""
        self._mutation_lock = asyncio.Lock()
        self._shutdown_event = asyncio.Event()
        await asyncio.gather(
            *(self._launch_worker(h) for h in self._workers)
        )
        self._server = await asyncio.start_server(
            self._on_connect,
            self.host,
            self.port,
            limit=wire.MAX_FRAME_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    def _spawn_sync(
        self, handle: _WorkerHandle
    ) -> Tuple[BaseProcess, Dict[str, Any]]:
        """Blocking spawn + ready handshake (runs in an executor)."""
        spec = ShardWorkerSpec(
            shard_id=handle.shard_id,
            dims=self.dims,
            rounds=self.rounds,
            store_root=self.store_root,
            request_timeout=self.request_timeout,
            drain_timeout=self.drain_timeout,
            verify=self.verify,
        )
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=run_shard_worker,
            args=(spec, send),
            daemon=True,
            name=f"repro-shard-{handle.shard_id}",
        )
        proc.start()
        send.close()
        try:
            if not recv.poll(_READY_TIMEOUT_S):
                raise ServiceUnavailableError(
                    f"shard worker {handle.shard_id} did not report "
                    f"ready within {_READY_TIMEOUT_S}s"
                )
            ready = recv.recv()
        except EOFError:
            raise ServiceUnavailableError(
                f"shard worker {handle.shard_id} died before reporting "
                f"ready (exitcode {proc.exitcode})"
            )
        finally:
            recv.close()
        if not isinstance(ready, dict) or ready.get("event") != "ready":
            raise ServiceUnavailableError(
                f"shard worker {handle.shard_id} sent a malformed ready "
                f"message: {ready!r}"
            )
        return proc, ready

    async def _launch_worker(self, handle: _WorkerHandle) -> None:
        loop = asyncio.get_running_loop()
        proc, ready = await loop.run_in_executor(
            None, self._spawn_sync, handle
        )
        handle.process = proc
        handle.host = str(ready["host"])
        handle.port = int(ready["port"])
        reader, writer = await asyncio.open_connection(
            handle.host, handle.port, limit=wire.MAX_FRAME_BYTES
        )
        handle.reader = reader
        handle.writer = writer
        handle.in_sync = True

    async def serve_until_shutdown(self) -> None:
        """Block until a client sends ``shutdown``, then stop."""
        assert self._shutdown_event is not None, "call start() first"
        await self._shutdown_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Drain: stop accepting, shut workers down, reap processes."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._respawn_tasks:
            await asyncio.gather(
                *self._respawn_tasks, return_exceptions=True
            )
        await self._shutdown_workers()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    async def _shutdown_workers(self) -> None:
        loop = asyncio.get_running_loop()
        for handle in self._workers:
            if handle.writer is not None:
                try:
                    await asyncio.wait_for(
                        handle.roundtrip(
                            wire.encode_payload(
                                {"id": None, "op": "shutdown"}
                            )
                        ),
                        timeout=self.drain_timeout,
                    )
                except (ServiceError, ConnectionError, OSError,
                        asyncio.IncompleteReadError, asyncio.TimeoutError):
                    pass
            await handle.close_channel()
            handle.in_sync = False
        for handle in self._workers:
            proc = handle.process
            if proc is None:
                continue
            await loop.run_in_executor(None, proc.join, self.drain_timeout)
            if proc.is_alive():
                proc.terminate()
                await loop.run_in_executor(None, proc.join, 5.0)
            handle.process = None

    # ------------------------------------------------------------------
    # Client connections (same negotiation as RouteQueryServer)
    # ------------------------------------------------------------------
    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            first = await reader.readexactly(len(wire.MAGIC))
        except asyncio.IncompleteReadError as exc:
            first = exc.partial
            if not first:
                return
        if first == wire.MAGIC:
            await self._serve_codec(reader, writer, "binary", first)
        else:
            await self._serve_codec(reader, writer, "ndjson", first)

    async def _serve_codec(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        codec: str,
        prefix: bytes,
    ) -> None:
        while not self._draining:
            if codec == "binary":
                try:
                    body = await wire.read_frame(
                        reader, first_header_bytes=prefix
                    )
                except asyncio.IncompleteReadError:
                    return
                except WireProtocolError as exc:
                    self._emit(
                        writer, codec,
                        [self._error_obj(None, exc)], batch=False,
                    )
                    await writer.drain()
                    if not exc.data.get("recoverable"):
                        return
                    prefix = b""
                    continue
                prefix = b""
                if body is None:
                    return
            else:
                try:
                    body = prefix + await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as eof:
                    body = prefix + eof.partial
                except (ValueError, asyncio.LimitOverrunError):
                    self._emit(
                        writer, codec,
                        [self._error_obj(
                            None,
                            WireProtocolError(
                                "request exceeds the router stream "
                                "limit",
                                {"recoverable": False},
                            ),
                        )],
                        batch=False,
                    )
                    await writer.drain()
                    return
                prefix = b""
                if not body.strip():
                    if not body:
                        return
                    continue
                body = body.strip()
            shutdown = await self._dispatch(writer, codec, body)
            if shutdown:
                assert self._shutdown_event is not None
                self._shutdown_event.set()
                return

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, writer: asyncio.StreamWriter, codec: str, body: bytes
    ) -> bool:
        """Route one client message; returns True on shutdown."""
        try:
            payload = json.loads(body)
        except ValueError:
            self._emit(
                writer, codec,
                [self._error_obj(
                    None, MalformedRequestError("request is not valid JSON")
                )],
                batch=False,
            )
            await writer.drain()
            return False
        is_batch = isinstance(payload, list)
        requests = payload if is_batch else [payload]
        if not requests:
            self._emit(
                writer, codec,
                [self._error_obj(
                    None, MalformedRequestError("empty request batch")
                )],
                batch=False,
            )
            await writer.drain()
            return False
        ops = [
            r.get("op") if isinstance(r, dict) else None for r in requests
        ]
        if requests and all(op in _READ_OPS for op in ops):
            # Fast lane: the whole message is read-only — forward the
            # original bytes to one replica, relay its reply.
            try:
                reply_body = await self._forward_read(body)
            except ServiceError as exc:
                self._emit(
                    writer, codec, [self._error_obj(None, exc)],
                    batch=False,
                )
                await writer.drain()
                return False
            self._relay(writer, codec, reply_body, is_batch)
            await writer.drain()
            return False
        replies: List[Dict[str, Any]] = []
        shutdown = False
        for req in requests:
            if not isinstance(req, dict):
                replies.append(self._error_obj(
                    None,
                    MalformedRequestError(
                        "each request must be a JSON object"
                    ),
                ))
                continue
            reply, is_shutdown = await self._reply_for(req)
            replies.append(reply)
            shutdown = shutdown or is_shutdown
        self._emit(writer, codec, replies, batch=is_batch)
        await writer.drain()
        return shutdown

    async def _reply_for(
        self, req: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], bool]:
        req_id = req.get("id")
        op = req.get("op")
        try:
            if op in _MUTATION_OPS:
                return await self._broadcast_mutation(req), False
            if op == "shutdown":
                return {"id": req_id, "ok": True, "draining": True}, True
            if op == "router_stats":
                return {
                    "id": req_id, "ok": True,
                    "router": self.router_stats(),
                }, False
            if op in _READ_OPS:
                body = await self._forward_read(
                    wire.encode_payload(req)
                )
                reply = json.loads(body)
                if not isinstance(reply, dict):
                    raise ServiceError(
                        f"worker sent a non-object reply: {reply!r}"
                    )
                return reply, False
            return self._error_obj(
                req_id,
                MalformedRequestError(f"unknown operation {op!r}"),
            ), False
        except ServiceError as exc:
            return self._error_obj(req_id, exc), False

    # ------------------------------------------------------------------
    # Read fan-out
    # ------------------------------------------------------------------
    def _in_sync_workers(self) -> List[_WorkerHandle]:
        return [h for h in self._workers if h.in_sync]

    def _next_replica(self) -> Optional[_WorkerHandle]:
        live = self._in_sync_workers()
        if not live:
            return None
        self._rr = (self._rr + 1) % len(live)
        return live[self._rr]

    async def _forward_read(self, payload: bytes) -> bytes:
        """Forward raw payload bytes to one in-sync replica; retry on
        a surviving replica if the worker dies mid-exchange."""
        for _attempt in range(2 * self.num_shards):
            handle = self._next_replica()
            if handle is None:
                break
            try:
                body = await handle.roundtrip(payload)
            except (ConnectionError, OSError,
                    asyncio.IncompleteReadError):
                self.read_retries += 1
                self._mark_dead(handle)
                continue
            self.reads_forwarded += 1
            return body
        raise ServiceUnavailableError(
            "no in-sync shard replica is available"
        )

    def _mark_dead(self, handle: _WorkerHandle) -> None:
        if not handle.in_sync:
            return
        handle.in_sync = False
        task = asyncio.get_running_loop().create_task(
            self._respawn(handle)
        )
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    async def _broadcast_mutation(
        self, req: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Serialize one compile/delta across every in-sync worker.

        Home shard first: it pays the compile (cache miss) and its
        store write turns every other worker's apply into a cache
        hit.  All workers see the same mutation sequence, so epochs
        stay equal across replicas.
        """
        assert self._mutation_lock is not None
        async with self._mutation_lock:
            home = home_shard(req, self.num_shards)
            ordered = [h for h in self._workers if h.shard_id == home]
            ordered += [h for h in self._workers if h.shard_id != home]
            self._mutation_log.append(
                {k: v for k, v in req.items() if k != "id"}
            )
            self.mutations += 1
            payload = wire.encode_payload(req)
            home_reply: Optional[Dict[str, Any]] = None
            epochs: List[Tuple[int, Any]] = []
            for handle in ordered:
                if not handle.in_sync:
                    continue
                try:
                    body = await handle.roundtrip(payload)
                    reply = json.loads(body)
                except (ConnectionError, OSError, ValueError,
                        asyncio.IncompleteReadError):
                    self._mark_dead(handle)
                    continue
                if not isinstance(reply, dict):
                    self._mark_dead(handle)
                    continue
                if home_reply is None:
                    home_reply = reply
                if reply.get("ok"):
                    epochs.append((handle.shard_id, reply.get("epoch")))
            if home_reply is None:
                raise ServiceUnavailableError(
                    "no shard worker accepted the mutation"
                )
            self._check_epochs(epochs)
            return home_reply

    def _check_epochs(self, epochs: List[Tuple[int, Any]]) -> None:
        """Replicas that diverge from the quorum epoch leave the read
        rotation (and get respawned into a log replay)."""
        if len(epochs) < 2:
            return
        want = epochs[0][1]
        for shard_id, got in epochs[1:]:
            if got != want:
                self.epoch_divergences += 1
                for handle in self._workers:
                    if handle.shard_id == shard_id:
                        self._mark_dead(handle)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    async def _respawn(self, handle: _WorkerHandle) -> None:
        """Rebuild a dead worker slot and replay the mutation log."""
        if self._draining or handle.respawns >= self.max_respawns:
            return
        handle.respawns += 1
        self.respawns += 1
        loop = asyncio.get_running_loop()
        await handle.close_channel()
        proc = handle.process
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            await loop.run_in_executor(None, proc.join, 5.0)
            handle.process = None
        try:
            await self._launch_worker(handle)
        except (ServiceError, ConnectionError, OSError):
            handle.in_sync = False
            return
        # Replay under the mutation lock so no new mutation interleaves
        # with the catch-up; shared-store hits make each step cheap.
        assert self._mutation_lock is not None
        handle.in_sync = False
        async with self._mutation_lock:
            try:
                for entry in self._mutation_log:
                    await handle.roundtrip(
                        wire.encode_payload({"id": None, **entry})
                    )
            except (ServiceError, ConnectionError, OSError,
                    asyncio.IncompleteReadError):
                await handle.close_channel()
                return
            handle.in_sync = True

    # ------------------------------------------------------------------
    # Reply emission
    # ------------------------------------------------------------------
    def _error_obj(self, req_id: Any, err: Exception) -> Dict[str, Any]:
        return {"id": req_id, "ok": False, "error": to_wire(err)}

    @staticmethod
    def _emit(
        writer: asyncio.StreamWriter,
        codec: str,
        replies: List[Dict[str, Any]],
        batch: bool,
    ) -> None:
        """Write locally-built replies in the client's codec."""
        if codec == "binary":
            obj: Any = replies if batch else replies[0]
            payload = wire.encode_payload(obj)
            header, view = wire.reply_views(payload)
            writer.write(header)
            writer.write(view)
        else:
            for reply in replies:
                writer.write(wire.encode_payload(reply) + b"\n")

    @staticmethod
    def _relay(
        writer: asyncio.StreamWriter,
        codec: str,
        reply_body: bytes,
        is_batch: bool,
    ) -> None:
        """Relay a worker reply frame body to the client verbatim
        (binary) or re-lined (ndjson batch)."""
        if codec == "binary":
            header, view = wire.reply_views(reply_body)
            writer.write(header)
            writer.write(view)
        elif not is_batch:
            writer.write(reply_body + b"\n")
        else:
            replies = json.loads(reply_body)
            for reply in replies:
                writer.write(wire.encode_payload(reply) + b"\n")

    # ------------------------------------------------------------------
    def kill_worker(self, shard_id: int) -> bool:
        """Chaos hook: SIGKILL one worker process (the router finds
        out the same way it would in production — a failed exchange).
        Returns whether a live process was killed."""
        for handle in self._workers:
            if handle.shard_id == shard_id:
                proc = handle.process
                if proc is not None and proc.is_alive():
                    proc.kill()
                    return True
        return False

    # ------------------------------------------------------------------
    def router_stats(self) -> Dict[str, Any]:
        """Deterministic router-level accounting."""
        return {
            "shards": self.num_shards,
            "in_sync": len(self._in_sync_workers()),
            "mutations": self.mutations,
            "reads_forwarded": self.reads_forwarded,
            "read_retries": self.read_retries,
            "respawns": self.respawns,
            "epoch_divergences": self.epoch_divergences,
        }

    # ------------------------------------------------------------------
    async def client(
        self, codec: str = "binary", default_timeout: float = 30.0
    ) -> RouteQueryClient:
        """Convenience: a connected client for this router."""
        return await RouteQueryClient.connect(
            self.host, self.port,
            default_timeout=default_timeout, codec=codec,
        )
