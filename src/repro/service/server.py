"""Asyncio route-query server: the slow control path as a service.

Two codecs share the listening port, negotiated per connection by the
first four bytes (see :mod:`repro.service.wire`):

- **ndjson**: one JSON request per line; a line may also carry a JSON
  *array* of requests — the server processes them in order and writes
  one reply line per element before flushing (a single round trip for
  the whole batch).
- **binary**: length-prefixed frames whose body is the same JSON; a
  batch frame gets **one** reply frame carrying the array of replies,
  serialized once and written zero-copy.

Batches are processed against live state, so a ``delta`` inside a
batch bumps the epoch for the requests behind it (queries pinned to
the old epoch then get typed ``stale-epoch`` replies).  Replies echo
the request ``id``: ``{"id": 7, "ok": true, ...}`` on success,
``{"id": 7, "ok": false, "error": {"code", "message", "data"}}`` on a
typed failure (see :mod:`repro.service.errors`).  A request line over
the stream limit is consumed in full and answered with a typed
``wire-protocol`` reply (``id: null``) — the connection stays usable.

Operations: ``ping``, ``compile``, ``delta``, ``query``, ``stats``,
``shutdown``.

Compiles are offloaded to a worker thread so queries on other
connections keep flowing while the lamb pipeline runs.  Shutdown is a
**graceful drain**: the listener closes, in-flight requests (including
running compiles) are awaited to completion, the warmed routing table
is persisted, and only then do connections drop —
:attr:`RouteQueryServer.orphaned_compiles` stays 0 unless the drain
timeout expires.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Set, Tuple

from ..mesh.serialization import faults_from_dict
from . import wire
from .compiler import ReconfigurationCompiler
from .errors import (
    MalformedRequestError,
    RequestTimeoutError,
    ServiceError,
    ServiceUnavailableError,
    UnknownOperationError,
    WireProtocolError,
    to_wire,
)
from .metrics import ServiceMetrics

__all__ = ["RouteQueryServer", "WIRE_VERSION"]

WIRE_VERSION = 1

#: Refuse absurd lines/frames early (a malformed client should get a
#: typed error, not OOM the control plane).  Large enough that a
#: many-thousand-query pipelined batch is *valid* traffic — the old
#: 4 MiB limit plus the asyncio default 64 KiB client limit silently
#: dropped big batches.
_MAX_LINE_BYTES = 16 * 1024 * 1024

#: Floor for the drain waits in :meth:`RouteQueryServer.stop`.  An
#: already-expired deadline must still wait a beat: ``asyncio.wait(...,
#: timeout=0.0)`` means "poll once", which reports compile threads as
#: orphaned even though they finish microseconds later.
_DRAIN_WAIT_FLOOR_S = 0.1


def _encode(reply: Dict[str, Any]) -> bytes:
    """One NDJSON reply line (body bytes shared with the binary codec
    so the two framings are byte-equivalent)."""
    return wire.encode_payload(reply) + b"\n"


class RouteQueryServer:
    """Serve compile/query traffic for one machine.

    Parameters
    ----------
    compiler:
        The :class:`~repro.service.compiler.ReconfigurationCompiler`
        owning artifact state.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`port` after :meth:`start`).
    request_timeout:
        Per-request deadline in seconds; an expired request gets a
        typed ``request-timeout`` reply instead of a hung connection.
    drain_timeout:
        How long :meth:`stop` waits for in-flight work before cutting
        connections loose.
    max_line_bytes:
        Ceiling on one NDJSON request line *and* one binary frame
        body.  An oversized message is consumed and answered with a
        typed ``wire-protocol`` error; the connection survives.
    """

    def __init__(
        self,
        compiler: ReconfigurationCompiler,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = 30.0,
        drain_timeout: float = 10.0,
        max_line_bytes: int = _MAX_LINE_BYTES,
    ) -> None:
        self.compiler = compiler
        self.metrics: ServiceMetrics = compiler.metrics
        self.host = host
        self.port = port
        self.request_timeout = float(request_timeout)
        self.drain_timeout = float(drain_timeout)
        self.max_line_bytes = int(max_line_bytes)
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        #: Executor futures of running compiles.  These track the
        #: worker *threads* — a request timeout abandons the awaiting
        #: coroutine but never the thread, so drain bookkeeping must
        #: hang off the future itself.
        self._compile_futures: Set["asyncio.Future[Any]"] = set()
        self._inflight_compiles = 0
        self.orphaned_compiles = 0
        self._draining = False
        self._shutdown_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connect,
            self.host,
            self.port,
            limit=self.max_line_bytes,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request arrives, then drain."""
        assert self._shutdown_event is not None, "call start() first"
        await self._shutdown_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish in-flight requests
        *and compile threads*, persist the warmed artifact, close
        connections.

        Compiles whose awaiting request already timed out keep running
        in their worker thread and will still activate an epoch when
        they finish — the drain waits for those threads too (within
        ``drain_timeout``), so :attr:`orphaned_compiles` counts threads
        actually left running, and ``persist_current`` cannot race a
        compile that is about to publish.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        # The floor matters when the deadline has already elapsed:
        # ``timeout=0.0`` is "poll once" to asyncio.wait, which counts
        # a compile thread finishing microseconds later as orphaned.
        pending = {t for t in self._conn_tasks if not t.done()}
        if pending:
            done, still = await asyncio.wait(
                pending,
                timeout=max(_DRAIN_WAIT_FLOOR_S, deadline - loop.time()),
            )
            for t in still:
                t.cancel()
            if still:
                await asyncio.gather(*still, return_exceptions=True)
        compiles = {f for f in self._compile_futures if not f.done()}
        if compiles:
            _, orphaned = await asyncio.wait(
                compiles,
                timeout=max(_DRAIN_WAIT_FLOOR_S, deadline - loop.time()),
            )
            self.orphaned_compiles = len(orphaned)
        else:
            self.orphaned_compiles = 0
        # Persisting the warmed table hits the disk tier of the store;
        # hand it to a worker thread so the drain never blocks the loop
        # (REP202: async-blocking-call).
        await loop.run_in_executor(None, self.compiler.persist_current)

    # ------------------------------------------------------------------
    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Codec negotiation: peek at the first four bytes.  The binary
        # magic starts with 0xAB (never valid JSON text), so the peek
        # is unambiguous.  Any valid NDJSON request is longer than four
        # bytes, so a partial read here only happens at (or right
        # before) EOF.
        try:
            first = await reader.readexactly(len(wire.MAGIC))
        except asyncio.IncompleteReadError as exc:
            first = exc.partial
            if not first:
                return
        if first == wire.MAGIC:
            self.metrics.connections_binary.inc()
            await self._serve_binary(reader, writer, first)
        else:
            self.metrics.connections_ndjson.inc()
            await self._serve_ndjson(reader, writer, first)

    # ------------------------------------------------------------------
    # NDJSON codec
    # ------------------------------------------------------------------
    async def _serve_ndjson(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        pending: bytes,
    ) -> None:
        while not self._draining:
            line, oversized = await self._read_line(reader, pending)
            pending = b""
            if oversized:
                self.metrics.wire_protocol_errors.inc()
                writer.write(
                    _encode(self._error_obj(None, self._oversize_error()))
                )
                await writer.drain()
                continue
            if not line:
                return  # peer closed
            stripped = line.strip()
            if not stripped:
                continue
            requests, is_batch, decode_error = self._decode_payload(stripped)
            if decode_error is not None:
                self.metrics.malformed_requests.inc()
                writer.write(_encode(self._error_obj(None, decode_error)))
                await writer.drain()
                continue
            shutdown = False
            for req in requests:
                reply, is_shutdown = await self._reply_for(req)
                writer.write(_encode(reply))
                shutdown = shutdown or is_shutdown
            await writer.drain()  # one flush per batch
            if shutdown:
                assert self._shutdown_event is not None
                self._shutdown_event.set()
                return

    async def _read_line(
        self, reader: asyncio.StreamReader, pending: bytes
    ) -> Tuple[Optional[bytes], bool]:
        """One request line, resilient to the stream limit.

        Returns ``(line, False)`` normally (``line`` empty at EOF) or
        ``(None, True)`` after an oversized line has been consumed
        through its terminating newline — the caller replies with a
        typed error and the connection stays in sync.

        ``pending`` carries bytes the codec negotiation already read;
        it is at most four bytes, so a *valid* request can never be
        split across it (a newline inside it only merges fragments of
        garbage that would each have drawn a malformed-request reply).
        """
        try:
            return pending + await reader.readuntil(b"\n"), False
        except asyncio.IncompleteReadError as exc:
            return pending + exc.partial, False  # EOF (maybe mid-line)
        except asyncio.LimitOverrunError as exc:
            consumed = exc.consumed
            while True:
                try:
                    await reader.readexactly(consumed)
                except asyncio.IncompleteReadError:
                    return b"", False  # peer died mid-oversized-line
                try:
                    await reader.readuntil(b"\n")
                    return None, True  # resynced past the newline
                except asyncio.LimitOverrunError as more:
                    consumed = more.consumed
                except asyncio.IncompleteReadError:
                    return b"", False

    def _oversize_error(self) -> WireProtocolError:
        return WireProtocolError(
            f"request exceeds the {self.max_line_bytes}-byte stream "
            f"limit; it was discarded (split the batch, or switch to "
            f"the binary codec)",
            {"recoverable": True, "limit_bytes": self.max_line_bytes},
        )

    # ------------------------------------------------------------------
    # Binary codec
    # ------------------------------------------------------------------
    async def _serve_binary(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first_magic: bytes,
    ) -> None:
        header_prefix = first_magic
        while not self._draining:
            try:
                body = await wire.read_frame(
                    reader,
                    max_frame_bytes=self.max_line_bytes,
                    first_header_bytes=header_prefix,
                )
            except asyncio.IncompleteReadError:
                return  # truncated frame: the peer died mid-message
            except WireProtocolError as exc:
                self.metrics.wire_protocol_errors.inc()
                self._write_frame(writer, self._error_obj(None, exc))
                await writer.drain()
                if not exc.data.get("recoverable"):
                    return  # corrupt header: no next frame boundary
                header_prefix = b""
                continue
            header_prefix = b""
            if body is None:
                return  # clean EOF
            requests, is_batch, decode_error = self._decode_payload(body)
            if decode_error is not None:
                self.metrics.malformed_requests.inc()
                self._write_frame(writer, self._error_obj(None, decode_error))
                await writer.drain()
                continue
            shutdown = False
            replies: List[Dict[str, Any]] = []
            for req in requests:
                reply, is_shutdown = await self._reply_for(req)
                replies.append(reply)
                shutdown = shutdown or is_shutdown
            self._write_frame(writer, replies if is_batch else replies[0])
            await writer.drain()
            if shutdown:
                assert self._shutdown_event is not None
                self._shutdown_event.set()
                return

    @staticmethod
    def _write_frame(writer: asyncio.StreamWriter, obj: Any) -> None:
        """Serialize once, write header + body view (no copy)."""
        header, view = wire.reply_views(wire.encode_payload(obj))
        writer.write(header)
        writer.write(view)

    # ------------------------------------------------------------------
    def _decode_payload(
        self, raw: bytes
    ) -> Tuple[List[Dict[str, Any]], bool, Optional[ServiceError]]:
        """Parse one message into ``(requests, is_batch, error)``."""
        try:
            payload = json.loads(raw)
        except ValueError:
            return [], False, MalformedRequestError(
                "request is not valid JSON"
            )
        is_batch = isinstance(payload, list)
        batch = payload if is_batch else [payload]
        if not batch:
            return [], True, MalformedRequestError("empty request batch")
        for req in batch:
            if not isinstance(req, dict):
                return [], is_batch, MalformedRequestError(
                    "each request must be a JSON object"
                )
        return batch, is_batch, None

    # ------------------------------------------------------------------
    async def _reply_for(
        self, req: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], bool]:
        """One reply object for one request (never raises)."""
        req_id = req.get("id")
        self.metrics.requests.inc()
        op = req.get("op")
        if not isinstance(op, str):
            self.metrics.malformed_requests.inc()
            return (
                self._error_obj(
                    req_id, MalformedRequestError("request is missing 'op'")
                ),
                False,
            )
        try:
            body = await asyncio.wait_for(
                self._handle(op, req), timeout=self.request_timeout
            )
        except asyncio.TimeoutError:
            self.metrics.timeouts.inc()
            return (
                self._error_obj(
                    req_id,
                    RequestTimeoutError(
                        f"'{op}' exceeded the server deadline of "
                        f"{self.request_timeout}s"
                    ),
                ),
                False,
            )
        except ServiceError as exc:
            if isinstance(exc, MalformedRequestError):
                self.metrics.malformed_requests.inc()
            return self._error_obj(req_id, exc), False
        except Exception as exc:  # defensive: typed even when surprised
            return self._error_obj(req_id, ServiceError(str(exc))), False
        self.metrics.replies_ok.inc()
        reply = {"id": req_id, "ok": True}
        reply.update(body)
        return reply, op == "shutdown"

    def _error_obj(self, req_id: Any, err: Exception) -> Dict[str, Any]:
        self.metrics.replies_error.inc()
        return {"id": req_id, "ok": False, "error": to_wire(err)}

    # ------------------------------------------------------------------
    async def _handle(self, op: str, req: Dict[str, Any]) -> Dict[str, Any]:
        if op == "ping":
            return {
                "pong": True,
                "epoch": self.compiler.current_epoch,
                "wire_version": WIRE_VERSION,
            }
        if op == "compile":
            return await self._handle_compile(req)
        if op == "delta":
            return await self._handle_delta(req)
        if op == "query":
            return self._handle_query(req)
        if op == "stats":
            return {
                "stats": self.metrics.snapshot(),
                "store": self.compiler.store.stats(),
                "telemetry": self.metrics.registry.snapshot(),
            }
        if op == "shutdown":
            return {"draining": True}
        raise UnknownOperationError(f"unknown operation {op!r}")

    async def _handle_compile(self, req: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            raise ServiceUnavailableError("server is draining")
        spec = req.get("faults")
        if not isinstance(spec, dict):
            raise MalformedRequestError(
                "'compile' needs a 'faults' fault-set record"
            )
        try:
            faults = faults_from_dict(spec)
        except (KeyError, TypeError, ValueError) as exc:
            raise MalformedRequestError(f"bad fault-set record: {exc}")
        artifact, source = await self._run_compile(
            self.compiler.compile, faults
        )
        body = artifact.summary()
        body["cache_hit"] = source != "compiled"
        body["source"] = source
        return body

    async def _handle_delta(self, req: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            raise ServiceUnavailableError("server is draining")
        try:
            nodes = [
                tuple(int(x) for x in v)
                for v in req.get("node_faults", [])
            ]
            links = [
                (tuple(int(x) for x in u), tuple(int(x) for x in w))
                for (u, w) in req.get("link_faults", [])
            ]
        except (TypeError, ValueError) as exc:
            raise MalformedRequestError(f"bad fault delta: {exc}")
        artifact, source = await self._run_compile(
            self.compiler.apply_delta, nodes, links
        )
        body = artifact.summary()
        body["cache_hit"] = source != "compiled"
        body["source"] = source
        return body

    async def _run_compile(self, fn: Any, *args: Any) -> Any:
        """Offload a compile to a worker thread, tracked for drain.

        The bookkeeping hangs off the executor *future*, not the
        awaiting coroutine: when a request timeout cancels the await,
        the thread keeps running, so ``_inflight_compiles`` must only
        drop when the thread actually finishes.  ``asyncio.shield``
        keeps the cancellation from reaching the future itself (a
        cancelled future would fire the done-callback while the thread
        is still alive — exactly the undercount being prevented).
        """
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(None, fn, *args)
        self._inflight_compiles += 1
        self._compile_futures.add(future)

        def _on_done(fut: "asyncio.Future[Any]") -> None:
            self._inflight_compiles -= 1
            self._compile_futures.discard(fut)
            if not fut.cancelled():
                # Mark a late failure as retrieved: after a timeout
                # nobody awaits this future any more, and its typed
                # error was already reported to the client as a
                # request-timeout reply.
                fut.exception()

        future.add_done_callback(_on_done)
        return await asyncio.shield(future)

    def _handle_query(self, req: Dict[str, Any]) -> Dict[str, Any]:
        source = req.get("source")
        dest = req.get("dest")
        if not isinstance(source, list) or not isinstance(dest, list):
            raise MalformedRequestError(
                "'query' needs 'source' and 'dest' coordinate lists"
            )
        epoch = req.get("epoch")
        if epoch is not None and not isinstance(epoch, int):
            raise MalformedRequestError("'epoch' must be an integer")
        try:
            src = tuple(int(x) for x in source)
            dst = tuple(int(x) for x in dest)
        except (TypeError, ValueError) as exc:
            raise MalformedRequestError(f"bad coordinates: {exc}")
        entry = self.compiler.route(src, dst, epoch=epoch)
        current = self.compiler.current
        assert current is not None  # route() guarantees
        return {
            "epoch": current.epoch,
            "source": list(entry.source),
            "dest": list(entry.dest),
            "intermediates": [list(v) for v in entry.intermediates],
            "rounds_used": entry.rounds_used,
            "hops": entry.hops,
            "turns": entry.turns,
        }
