"""Typed control-plane failures, wired into the existing
:class:`repro.wormhole.SimulationError` taxonomy.

Every error the route-query service can send over the wire has (1) a
Python exception class raised client-side, (2) a stable wire ``code``,
and (3) a structured ``data`` payload.  ``to_wire`` / ``from_wire``
round-trip between the two so a server-side raise becomes the *same*
typed exception in the client process.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from ..wormhole.deadlock import SimulationError

__all__ = [
    "ServiceError",
    "MalformedRequestError",
    "UnknownOperationError",
    "StaleEpochError",
    "CompileError",
    "RequestTimeoutError",
    "ServiceUnavailableError",
    "WireProtocolError",
    "ERROR_CODES",
    "to_wire",
    "from_wire",
]


class ServiceError(SimulationError):
    """Base class for typed control-plane failures."""

    code: str = "service-error"

    def __init__(self, message: str, data: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.data: Dict[str, Any] = dict(data or {})


class MalformedRequestError(ServiceError):
    """The request line was not valid JSON or missed required fields."""

    code = "malformed-request"


class UnknownOperationError(ServiceError):
    """The request named an ``op`` the server does not implement."""

    code = "unknown-operation"


class StaleEpochError(ServiceError):
    """A query referenced a reconfiguration epoch that has since been
    superseded by a fault delta — the routes it would have answered
    with may run through hardware that is now dead."""

    code = "stale-epoch"

    def __init__(self, requested: int, current: int):
        super().__init__(
            f"epoch {requested} is stale; the machine reconfigured to "
            f"epoch {current} (recompile or re-query without an epoch pin)",
            {"requested": int(requested), "current": int(current)},
        )
        self.requested = int(requested)
        self.current = int(current)


class CompileError(ServiceError):
    """The compiler could not produce a publishable artifact (every
    rung of the degradation ladder failed, or the CDG cross-check
    refuted the configuration)."""

    code = "compile-failed"


class RequestTimeoutError(ServiceError):
    """A request did not complete within its deadline."""

    code = "request-timeout"


class ServiceUnavailableError(ServiceError):
    """The server is draining and no longer accepts new work, or the
    requested artifact/endpoint does not exist."""

    code = "service-unavailable"


class WireProtocolError(ServiceError):
    """The byte stream itself violated the wire protocol: an NDJSON
    request line over the stream limit, a binary frame with a bad
    magic/version header, or a frame body larger than the negotiated
    maximum.

    ``data["recoverable"]`` tells the peer whether the connection is
    still usable: an oversized line/frame is fully consumed before the
    reply (the stream stays in sync), while a corrupt header leaves no
    way to find the next message boundary."""

    code = "wire-protocol"


ERROR_CODES: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        MalformedRequestError,
        UnknownOperationError,
        StaleEpochError,
        CompileError,
        RequestTimeoutError,
        ServiceUnavailableError,
        WireProtocolError,
    )
}


def to_wire(err: Exception) -> Dict[str, Any]:
    """The ``error`` object of a typed error reply."""
    if isinstance(err, ServiceError):
        return {
            "code": err.code,
            "message": str(err),
            "data": err.data,
        }
    return {
        "code": ServiceError.code,
        "message": f"{type(err).__name__}: {err}",
        "data": {},
    }


def from_wire(error: Dict[str, Any]) -> ServiceError:
    """Rebuild the typed exception a server-side error reply encodes."""
    code = str(error.get("code", ServiceError.code))
    message = str(error.get("message", "unknown service error"))
    data = error.get("data") or {}
    cls = ERROR_CODES.get(code, ServiceError)
    if cls is StaleEpochError:
        return StaleEpochError(
            int(data.get("requested", -1)), int(data.get("current", -1))
        )
    err = cls(message, dict(data))
    return err
