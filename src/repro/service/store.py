"""Canonical configuration identity and the content-addressed
artifact store.

The lamb pipeline is deterministic: the artifact produced for a
``(mesh, FaultSet, k-round ordering, method, policy)`` configuration is
a pure function of that configuration.  The control plane therefore
keys compiled artifacts by a **blake2b digest of the canonicalized
config** — compile once, serve forever.

Canonicalization is the load-bearing part (the stale-cache hazard
class): two configs that describe the same machine **must** hash
identically, so

- node faults are deduplicated and sorted,
- directed link faults are deduplicated, sorted, and stripped of links
  already implied by a node fault (matching the
  :class:`~repro.mesh.faults.FaultSet` constructor's convention),
- every coordinate is forced to a plain ``int`` (``np.int64`` et al.
  would change the JSON encoding),
- round orderings are normalized to their permutation tuples — however
  the :class:`~repro.routing.ordering.Ordering` objects were built,
- the JSON encoding is key-sorted with fixed separators.

The store itself is two-tier: an in-memory LRU of live records in
front of a sharded on-disk directory of versioned JSON artifacts
(``<root>/<digest[:2]>/<digest>.json``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..mesh.faults import FaultSet
from ..mesh.serialization import mesh_to_dict
from ..routing.ordering import KRoundOrdering

__all__ = [
    "canonical_config",
    "config_digest",
    "ArtifactStore",
    "STORE_FORMAT_VERSION",
]

STORE_FORMAT_VERSION = 1

#: blake2b digest size in bytes (40 hex chars — comfortably
#: collision-free for a cache while keeping artifact paths short).
_DIGEST_SIZE = 20


def canonical_config(
    faults: FaultSet,
    orderings: KRoundOrdering,
    method: str = "bipartite",
    policy: str = "shortest",
) -> Dict[str, Any]:
    """The canonical JSON-able form of a compile configuration.

    Equivalent configurations — same machine, same fault set, same
    routing discipline — canonicalize to the *same* dict regardless of
    fault enumeration order, duplicate reports, numpy integer types, or
    how the ordering objects were constructed.
    """
    node_faults: List[List[int]] = [
        [int(x) for x in v] for v in sorted(set(faults.node_faults))
    ]
    faulty = {tuple(v) for v in node_faults}
    link_faults: List[List[List[int]]] = [
        [[int(x) for x in u], [int(x) for x in w]]
        for (u, w) in sorted(set(faults.link_faults))
        if tuple(int(x) for x in u) not in faulty
        and tuple(int(x) for x in w) not in faulty
    ]
    return {
        "schema": STORE_FORMAT_VERSION,
        "mesh": mesh_to_dict(faults.mesh),
        "node_faults": node_faults,
        "link_faults": link_faults,
        "rounds": [[int(x) for x in pi.perm] for pi in orderings],
        "method": str(method),
        "policy": str(policy),
    }


def config_digest(
    faults: FaultSet,
    orderings: KRoundOrdering,
    method: str = "bipartite",
    policy: str = "shortest",
) -> str:
    """Content address of a compile configuration (hex blake2b)."""
    canon = canonical_config(faults, orderings, method=method, policy=policy)
    payload = json.dumps(
        canon, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).hexdigest()


class ArtifactStore:
    """Two-tier content-addressed store for compiled artifacts.

    Parameters
    ----------
    root:
        Directory for the on-disk tier; ``None`` keeps the store purely
        in-memory (tests, ephemeral servers).
    max_memory_entries:
        LRU capacity of the in-memory tier.

    Records are plain dicts (JSON-able); the store wraps them in a
    versioned envelope ``{"store_version", "digest", "record"}`` on
    disk and verifies both on load.  Writes are atomic
    (temp-file + ``os.replace``) so a crashed server never leaves a
    torn artifact behind.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        max_memory_entries: int = 128,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        self.root = root
        self.max_memory_entries = int(max_memory_entries)
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: The compiler calls get/put from worker threads (possibly
        #: several compilers sharing one store), so the memory tier and
        #: the counters are lock-guarded — an unguarded OrderedDict
        #: ``move_to_end``/``popitem`` race can corrupt LRU order or
        #: raise outright.
        self._lock = threading.Lock()
        #: Digests exempt from :meth:`prune` eviction (live epochs,
        #: in-flight workflow checkpoints).
        self._pinned: Set[str] = set()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0
        if root is not None:
            os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, digest[:2], f"{digest}.json")

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            if digest in self._memory:
                return True
        return self.root is not None and os.path.exists(self._path(digest))

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # ------------------------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The record stored under ``digest``, or ``None``.

        Memory tier first; a disk hit is promoted into the LRU.
        Thread-safe (called from compile worker threads).
        """
        with self._lock:
            record = self._memory.get(digest)
            if record is not None:
                self._memory.move_to_end(digest)
                self.memory_hits += 1
        if record is not None:
            if self.root is not None:
                try:
                    # A memory-tier hit must refresh the disk envelope
                    # too: prune() orders eviction by mtime, and an
                    # artifact that is hot in RAM is exactly the one
                    # gc must not drop from disk.
                    os.utime(self._path(digest), None)
                except OSError:
                    pass
            return record
        if self.root is not None:
            path = self._path(digest)
            try:
                with open(path) as fh:
                    envelope = json.load(fh)
            except (OSError, ValueError):
                envelope = None
            if (
                isinstance(envelope, dict)
                and envelope.get("store_version") == STORE_FORMAT_VERSION
                and envelope.get("digest") == digest
                and isinstance(envelope.get("record"), dict)
            ):
                record = envelope["record"]
                try:
                    # Refresh mtime so prune()'s LRU order tracks real
                    # access recency, not just write time.
                    os.utime(path, None)
                except OSError:
                    pass
                with self._lock:
                    self._remember(digest, record)
                    self.disk_hits += 1
                return record
        with self._lock:
            self.misses += 1
        return None

    def put(self, digest: str, record: Dict[str, Any]) -> None:
        """Publish a record under its content address (both tiers).
        Thread-safe; the disk write stays atomic (temp + replace)."""
        with self._lock:
            self._remember(digest, record)
            self.writes += 1
        if self.root is None:
            return
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        envelope = {
            "store_version": STORE_FORMAT_VERSION,
            "digest": digest,
            "record": record,
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(envelope, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _remember(self, digest: str, record: Dict[str, Any]) -> None:
        """LRU insert/refresh.  Caller holds ``self._lock``."""
        self._memory[digest] = record
        self._memory.move_to_end(digest)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # Pinning and disk-tier garbage collection
    # ------------------------------------------------------------------
    def pin(self, digest: str) -> None:
        """Exempt ``digest`` from :meth:`prune` eviction."""
        with self._lock:
            self._pinned.add(digest)

    def unpin(self, digest: str) -> None:
        """Make ``digest`` evictable again (no-op if not pinned)."""
        with self._lock:
            self._pinned.discard(digest)

    def pinned(self) -> Tuple[str, ...]:
        """Currently pinned digests, sorted."""
        with self._lock:
            return tuple(sorted(self._pinned))

    def _disk_entries(self) -> List[Tuple[str, str, int, float]]:
        """``(digest, path, size_bytes, mtime)`` for every disk
        artifact (unsorted; callers order as needed)."""
        entries: List[Tuple[str, str, int, float]] = []
        if self.root is None:
            return entries
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                entries.append(
                    (name[: -len(".json")], path, st.st_size, st.st_mtime)
                )
        return entries

    def disk_bytes(self) -> int:
        """Total bytes in the on-disk tier (0 for memory-only)."""
        return sum(size for _d, _p, size, _m in self._disk_entries())

    def prune(
        self, max_bytes: int, keep: Iterable[str] = ()
    ) -> Dict[str, int]:
        """LRU-evict disk artifacts until the tier fits ``max_bytes``.

        Least-recently-*used* first — :meth:`get` refreshes an
        artifact's mtime on every disk hit, so hot artifacts survive.
        Digests that are pinned (:meth:`pin`) or listed in ``keep``
        are never evicted, even if the tier stays over budget.
        Evicted digests are dropped from the memory tier too, so a
        pruned artifact is gone, not lingering in the LRU.

        Returns a summary: ``removed`` / ``freed_bytes`` /
        ``remaining_bytes`` / ``protected`` (counts, stable keys).
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        protected: Set[str] = set(keep)
        with self._lock:
            protected |= self._pinned
        entries = self._disk_entries()
        total = sum(size for _d, _p, size, _m in entries)
        removed = 0
        freed = 0
        # Oldest access first; digest tiebreak keeps the order
        # deterministic when mtimes collide (same-second writes).
        for digest, path, size, _mtime in sorted(
            entries, key=lambda e: (e[3], e[0])
        ):
            if total - freed <= max_bytes:
                break
            if digest in protected:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            freed += size
            removed += 1
            with self._lock:
                self._memory.pop(digest, None)
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining_bytes": total - freed,
            "protected": len(protected),
        }

    # ------------------------------------------------------------------
    def digests(self) -> Tuple[str, ...]:
        """Every digest currently known (memory + disk), sorted."""
        with self._lock:
            known = set(self._memory)
        if self.root is not None:
            for shard in sorted(os.listdir(self.root)):
                shard_dir = os.path.join(self.root, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if name.endswith(".json"):
                        known.add(name[: -len(".json")])
        return tuple(sorted(known))

    def stats(self) -> Dict[str, int]:
        """Counters snapshot (stable key order for JSON encoding)."""
        with self._lock:
            return {
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "memory_entries": len(self._memory),
                "memory_hits": self.memory_hits,
                "misses": self.misses,
                "writes": self.writes,
            }
