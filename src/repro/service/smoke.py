"""End-to-end control-plane smoke scenario (the acceptance script).

One process, real TCP on an ephemeral localhost port:

1. start a server for a seeded faulty mesh and compile the base config
   (cache miss);
2. issue a batch of route queries from the client;
3. re-issue the identical compile — must be a cache hit, verified via
   the ``stats`` RPC;
4. apply a mid-run fault delta — must trigger an incremental recompile
   and an epoch bump;
5. query against the superseded epoch — must come back as a typed
   ``stale-epoch`` reply;
6. drain gracefully — no orphaned compile tasks.

Every printed line is deterministic for a fixed seed (no wall-clock
values), so ``make serve-smoke`` runs the scenario twice and diffs the
transcripts to prove determinism.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..mesh.faults import FaultSet, random_node_faults
from ..mesh.geometry import Mesh, Node
from ..routing.ordering import ascending, repeated
from .client import RouteQueryClient, raise_typed
from .compiler import ReconfigurationCompiler
from .errors import StaleEpochError, from_wire
from .loadgen import LoadgenConfig, run_loadgen
from .server import RouteQueryServer
from .shard import ShardRouter
from .store import ArtifactStore

__all__ = ["serve_smoke", "shard_smoke"]


def _pick_pairs(
    faults: FaultSet,
    excluded: Sequence[Sequence[int]],
    count: int,
    rng: np.random.Generator,
) -> List[Tuple[Node, Node]]:
    """Deterministic survivor pairs for query traffic (``excluded``
    covers lambs and quarantined nodes)."""
    lamb_set = {tuple(int(x) for x in v) for v in excluded}
    survivors = [
        v
        for v in faults.mesh.nodes()
        if not faults.node_is_faulty(v) and v not in lamb_set
    ]
    pairs: List[Tuple[Node, Node]] = []
    while len(pairs) < count:
        i = int(rng.integers(len(survivors)))
        j = int(rng.integers(len(survivors)))
        if i != j:
            pairs.append((survivors[i], survivors[j]))
    return pairs


async def _smoke(
    faults: FaultSet,
    rounds: int,
    queries: int,
    seed: int,
    verify: bool,
    store_root: Optional[str],
    emit: Callable[[str], None],
) -> int:
    mesh = faults.mesh
    orderings = repeated(ascending(mesh.d), rounds)
    compiler = ReconfigurationCompiler(
        mesh,
        orderings,
        store=ArtifactStore(root=store_root),
        verify=verify,
    )
    server = RouteQueryServer(compiler)
    host, port = await server.start()
    client = await RouteQueryClient.connect(host, port, default_timeout=60.0)
    rng = np.random.default_rng(seed)
    failures = 0

    # 1. Base compile (must be a miss: the store is cold).
    compiled = await client.compile(faults, timeout=120.0)
    emit(
        f"compile: digest {compiled['digest'][:12]} epoch "
        f"{compiled['epoch']} lambs {compiled['lambs']} "
        f"survivors {compiled['survivors']} cache_hit "
        f"{compiled['cache_hit']}"
    )
    if compiled["cache_hit"]:
        emit("FAIL: first compile reported a cache hit")
        failures += 1
    epoch0 = int(compiled["epoch"])

    # 2. Route-query traffic, pipelined in batches.
    pairs = _pick_pairs(
        faults,
        list(compiled["lamb_nodes"]) + list(compiled["quarantined"]),
        queries,
        rng,
    )
    lambs_reply = await client.query(
        pairs[0][0], pairs[0][1], epoch=epoch0, timeout=60.0
    )
    ok = 1 if lambs_reply else 0
    hops = int(lambs_reply["hops"])
    batch = 100
    for at in range(1, len(pairs), batch):
        replies = await client.query_batch(
            pairs[at:at + batch], epoch=epoch0, timeout=60.0
        )
        for reply in replies:
            raise_typed(reply)
            ok += 1
            hops += int(reply["hops"])
    emit(f"queries: {ok}/{queries} resolved, total hops {hops}")

    # 3. Identical compile again: must hit the cache.
    again = await client.compile(faults, timeout=120.0)
    stats = (await client.stats())["stats"]
    emit(
        f"recompile: cache_hit {again['cache_hit']} "
        f"(source {again['source']}) epoch {again['epoch']} | "
        f"stats hits {stats['cache']['hits']} "
        f"misses {stats['cache']['misses']}"
    )
    if not again["cache_hit"] or stats["cache"]["hits"] < 1:
        emit("FAIL: identical compile was not served from the cache")
        failures += 1
    if int(again["epoch"]) != epoch0:
        emit("FAIL: cache-hit compile must not bump the epoch")
        failures += 1

    # 4. Mid-run fault delta: kill a surviving node.
    victim = pairs[0][0]
    deltad = await client.delta(node_faults=[victim], timeout=120.0)
    emit(
        f"delta: +1 node fault -> epoch {deltad['epoch']} "
        f"(incremental {deltad['incremental']}, cache_hit "
        f"{deltad['cache_hit']}) faults {deltad['faults']} "
        f"lambs {deltad['lambs']}"
    )
    if int(deltad["epoch"]) == epoch0:
        emit("FAIL: fault delta did not bump the epoch")
        failures += 1

    # 5. Querying the superseded epoch must be refused, typed.
    safe = next(
        p for p in pairs[1:]
        if p[0] != victim and p[1] != victim
    )
    stale = await client.query_batch([safe], epoch=epoch0, timeout=60.0)
    err = stale[0].get("error") or {}
    typed = from_wire(err) if not stale[0].get("ok") else None
    if isinstance(typed, StaleEpochError):
        emit(
            f"stale query: typed {err.get('code')} "
            f"(requested {typed.requested}, current {typed.current})"
        )
    else:
        emit(f"FAIL: stale-epoch query got {stale[0]!r}")
        failures += 1

    # 6. Graceful drain.
    await client.shutdown(timeout=60.0)
    await client.close()
    await server.serve_until_shutdown()
    emit(
        f"drain: orphaned compiles {server.orphaned_compiles} "
        f"epoch {compiler.current_epoch}"
    )
    if server.orphaned_compiles:
        emit("FAIL: drain left orphaned compile tasks")
        failures += 1
    emit("smoke FAILED" if failures else "smoke OK")
    return 1 if failures else 0


def serve_smoke(
    faults: FaultSet,
    rounds: int = 2,
    queries: int = 1000,
    seed: int = 0,
    verify: bool = False,
    store_root: Optional[str] = None,
    emit: Callable[[str], None] = print,
) -> int:
    """Run the acceptance scenario; returns a process exit code."""
    return asyncio.run(
        _smoke(faults, rounds, queries, seed, verify, store_root, emit)
    )


async def _shard_smoke(
    num_shards: int, emit: Callable[[str], None]
) -> int:
    """Shard-plane acceptance scenario (run twice and diffed by
    ``make shard-smoke``):

    1. start 1 router + ``num_shards`` workers over a shared store;
    2. run a mixed query/delta loadgen campaign (binary codec, two
       connections) and print its deterministic snapshot;
    3. run a second campaign and SIGKILL one worker as soon as its
       traffic is flowing — every reply must still arrive (reads
       retry on surviving replicas, so nothing is lost);
    4. wait for the respawn to replay the mutation log and rejoin;
    5. prove epoch equality across replicas by cycling an
       epoch-pinned query through the read rotation.
    """
    failures = 0
    router = ShardRouter(dims=(16, 16), rounds=2, num_shards=num_shards)
    host, port = await router.start()
    emit(f"shard plane: {num_shards} workers behind 1 router")

    def campaign(seed: int, delta_offset: int) -> LoadgenConfig:
        return LoadgenConfig(
            host=host, port=port, codec="binary", connections=2,
            batches=6, batch_size=50, warmup_batches=1, delta_every=3,
            delta_offset=delta_offset, seed=seed,
        )

    report1 = await run_loadgen(campaign(seed=0, delta_offset=0))
    emit("loadgen[1]: " + json.dumps(report1["snapshot"], sort_keys=True))
    if report1["snapshot"]["ok"] != report1["snapshot"]["queries"]:
        emit("FAIL: campaign 1 lost replies")
        failures += 1

    killed = [False]

    def chaos(batch_index: int) -> None:
        # Kill against *traffic progress*, not the wall clock: the
        # first completed measured batch proves the plane is serving,
        # then one worker dies mid-campaign.
        if not killed[0]:
            killed[0] = True
            router.kill_worker(1)

    report2 = await run_loadgen(
        campaign(seed=1, delta_offset=1), progress=chaos
    )
    emit("loadgen[2]: " + json.dumps(report2["snapshot"], sort_keys=True))
    if report2["snapshot"]["ok"] != report2["snapshot"]["queries"]:
        emit("FAIL: replies were lost across the worker kill")
        failures += 1

    client = await router.client(codec="binary")
    stats = (await client.request("router_stats"))["router"]
    deadline = asyncio.get_running_loop().time() + 60.0
    while (
        stats["in_sync"] < num_shards
        and asyncio.get_running_loop().time() < deadline
    ):
        await asyncio.sleep(0.25)
        stats = (await client.request("router_stats"))["router"]
    emit(
        f"recovery: respawns {stats['respawns']} in_sync "
        f"{stats['in_sync']}/{stats['shards']} epoch_divergences "
        f"{stats['epoch_divergences']}"
    )
    if stats["in_sync"] != num_shards or stats["respawns"] != 1:
        emit("FAIL: the killed worker did not rejoin the rotation")
        failures += 1

    # Epoch-pinned queries must hold on *every* replica: cycle the
    # read rotation at least twice around.  The probe pair comes from
    # the loadgen's query pool, so it survives every delta either
    # campaign issued.
    src, dst = report2["probe"]
    epoch = int((await client.ping())["epoch"])
    pinned_ok = 0
    for _ in range(2 * num_shards):
        reply = await client.query(tuple(src), tuple(dst), epoch=epoch)
        pinned_ok += 1 if reply.get("ok") else 0
    emit(
        f"epochs: pinned epoch {epoch} resolved on "
        f"{pinned_ok}/{2 * num_shards} rotations"
    )
    if pinned_ok != 2 * num_shards:
        emit("FAIL: replicas diverged on the reconfiguration epoch")
        failures += 1

    await client.close()
    await router.stop()
    emit("smoke FAILED" if failures else "smoke OK")
    return 1 if failures else 0


def shard_smoke(
    num_shards: int = 3, emit: Callable[[str], None] = print
) -> int:
    """Run the sharded-plane acceptance scenario; returns an exit
    code."""
    return asyncio.run(_shard_smoke(num_shards, emit))


def default_smoke_faults(seed: int = 4) -> FaultSet:
    """The acceptance config: a 16x16 mesh with 5 seeded faults.

    (Seed 4 is chosen so the config actually needs a nonempty lamb
    set — the smoke then exercises lamb exclusion on the query path,
    not just plain fault avoidance.)
    """
    mesh = Mesh((16, 16))
    return random_node_faults(mesh, 5, np.random.default_rng(seed))
