"""End-to-end control-plane smoke scenario (the acceptance script).

One process, real TCP on an ephemeral localhost port:

1. start a server for a seeded faulty mesh and compile the base config
   (cache miss);
2. issue a batch of route queries from the client;
3. re-issue the identical compile — must be a cache hit, verified via
   the ``stats`` RPC;
4. apply a mid-run fault delta — must trigger an incremental recompile
   and an epoch bump;
5. query against the superseded epoch — must come back as a typed
   ``stale-epoch`` reply;
6. drain gracefully — no orphaned compile tasks.

Every printed line is deterministic for a fixed seed (no wall-clock
values), so ``make serve-smoke`` runs the scenario twice and diffs the
transcripts to prove determinism.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..mesh.faults import FaultSet, random_node_faults
from ..mesh.geometry import Mesh, Node
from ..routing.ordering import ascending, repeated
from .client import RouteQueryClient, raise_typed
from .compiler import ReconfigurationCompiler
from .errors import StaleEpochError, from_wire
from .server import RouteQueryServer
from .store import ArtifactStore

__all__ = ["serve_smoke"]


def _pick_pairs(
    faults: FaultSet,
    excluded: Sequence[Sequence[int]],
    count: int,
    rng: np.random.Generator,
) -> List[Tuple[Node, Node]]:
    """Deterministic survivor pairs for query traffic (``excluded``
    covers lambs and quarantined nodes)."""
    lamb_set = {tuple(int(x) for x in v) for v in excluded}
    survivors = [
        v
        for v in faults.mesh.nodes()
        if not faults.node_is_faulty(v) and v not in lamb_set
    ]
    pairs: List[Tuple[Node, Node]] = []
    while len(pairs) < count:
        i = int(rng.integers(len(survivors)))
        j = int(rng.integers(len(survivors)))
        if i != j:
            pairs.append((survivors[i], survivors[j]))
    return pairs


async def _smoke(
    faults: FaultSet,
    rounds: int,
    queries: int,
    seed: int,
    verify: bool,
    store_root: Optional[str],
    emit: Callable[[str], None],
) -> int:
    mesh = faults.mesh
    orderings = repeated(ascending(mesh.d), rounds)
    compiler = ReconfigurationCompiler(
        mesh,
        orderings,
        store=ArtifactStore(root=store_root),
        verify=verify,
    )
    server = RouteQueryServer(compiler)
    host, port = await server.start()
    client = await RouteQueryClient.connect(host, port, default_timeout=60.0)
    rng = np.random.default_rng(seed)
    failures = 0

    # 1. Base compile (must be a miss: the store is cold).
    compiled = await client.compile(faults, timeout=120.0)
    emit(
        f"compile: digest {compiled['digest'][:12]} epoch "
        f"{compiled['epoch']} lambs {compiled['lambs']} "
        f"survivors {compiled['survivors']} cache_hit "
        f"{compiled['cache_hit']}"
    )
    if compiled["cache_hit"]:
        emit("FAIL: first compile reported a cache hit")
        failures += 1
    epoch0 = int(compiled["epoch"])

    # 2. Route-query traffic, pipelined in batches.
    pairs = _pick_pairs(
        faults,
        list(compiled["lamb_nodes"]) + list(compiled["quarantined"]),
        queries,
        rng,
    )
    lambs_reply = await client.query(
        pairs[0][0], pairs[0][1], epoch=epoch0, timeout=60.0
    )
    ok = 1 if lambs_reply else 0
    hops = int(lambs_reply["hops"])
    batch = 100
    for at in range(1, len(pairs), batch):
        replies = await client.query_batch(
            pairs[at:at + batch], epoch=epoch0, timeout=60.0
        )
        for reply in replies:
            raise_typed(reply)
            ok += 1
            hops += int(reply["hops"])
    emit(f"queries: {ok}/{queries} resolved, total hops {hops}")

    # 3. Identical compile again: must hit the cache.
    again = await client.compile(faults, timeout=120.0)
    stats = (await client.stats())["stats"]
    emit(
        f"recompile: cache_hit {again['cache_hit']} "
        f"(source {again['source']}) epoch {again['epoch']} | "
        f"stats hits {stats['cache']['hits']} "
        f"misses {stats['cache']['misses']}"
    )
    if not again["cache_hit"] or stats["cache"]["hits"] < 1:
        emit("FAIL: identical compile was not served from the cache")
        failures += 1
    if int(again["epoch"]) != epoch0:
        emit("FAIL: cache-hit compile must not bump the epoch")
        failures += 1

    # 4. Mid-run fault delta: kill a surviving node.
    victim = pairs[0][0]
    deltad = await client.delta(node_faults=[victim], timeout=120.0)
    emit(
        f"delta: +1 node fault -> epoch {deltad['epoch']} "
        f"(incremental {deltad['incremental']}, cache_hit "
        f"{deltad['cache_hit']}) faults {deltad['faults']} "
        f"lambs {deltad['lambs']}"
    )
    if int(deltad["epoch"]) == epoch0:
        emit("FAIL: fault delta did not bump the epoch")
        failures += 1

    # 5. Querying the superseded epoch must be refused, typed.
    safe = next(
        p for p in pairs[1:]
        if p[0] != victim and p[1] != victim
    )
    stale = await client.query_batch([safe], epoch=epoch0, timeout=60.0)
    err = stale[0].get("error") or {}
    typed = from_wire(err) if not stale[0].get("ok") else None
    if isinstance(typed, StaleEpochError):
        emit(
            f"stale query: typed {err.get('code')} "
            f"(requested {typed.requested}, current {typed.current})"
        )
    else:
        emit(f"FAIL: stale-epoch query got {stale[0]!r}")
        failures += 1

    # 6. Graceful drain.
    await client.shutdown(timeout=60.0)
    await client.close()
    await server.serve_until_shutdown()
    emit(
        f"drain: orphaned compiles {server.orphaned_compiles} "
        f"epoch {compiler.current_epoch}"
    )
    if server.orphaned_compiles:
        emit("FAIL: drain left orphaned compile tasks")
        failures += 1
    emit("smoke FAILED" if failures else "smoke OK")
    return 1 if failures else 0


def serve_smoke(
    faults: FaultSet,
    rounds: int = 2,
    queries: int = 1000,
    seed: int = 0,
    verify: bool = False,
    store_root: Optional[str] = None,
    emit: Callable[[str], None] = print,
) -> int:
    """Run the acceptance scenario; returns a process exit code."""
    return asyncio.run(
        _smoke(faults, rounds, queries, seed, verify, store_root, emit)
    )


def default_smoke_faults(seed: int = 4) -> FaultSet:
    """The acceptance config: a 16x16 mesh with 5 seeded faults.

    (Seed 4 is chosen so the config actually needs a nonempty lamb
    set — the smoke then exercises lamb exclusion on the query path,
    not just plain fault avoidance.)
    """
    mesh = Mesh((16, 16))
    return random_node_faults(mesh, 5, np.random.default_rng(seed))
