"""Sustained mixed query/delta load against a route-query endpoint.

``repro loadgen`` drives the plane the way production traffic would:
pipelined query batches over N concurrent connections, with periodic
fault deltas mixed in, and reports p50/p99 latency through the
telemetry histograms plus sustained queries/s.

Determinism contract: the *traffic* and its outcome counts are a pure
function of the seed.  Query pairs are drawn from the survivor set
with a seeded :class:`random.Random`; delta victims come from a
reserved pool that query traffic never touches, so every query
resolves on every epoch and ``ok == queries`` holds exactly.  The
``snapshot`` block of the report contains only seed-determined fields
— ``make shard-smoke`` diffs it across runs — while wall-clock
figures (latency quantiles, qps) live outside it.

Traffic shape: measured batches draw from a bounded **pair pool**
(``pool_pairs`` distinct flows), matching the compile-once/query-many
production regime where a working set of flows is queried repeatedly.
The untimed warmup resolves the full pool ``warmup_batches`` times on
every connection; behind a shard router the read rotation spreads
those consecutive sends across replicas, so keeping
``warmup_batches * connections >= num_shards`` warms the pool on
*every* replica before the clock starts.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..mesh.faults import FaultSet, random_node_faults
from ..mesh.geometry import Mesh, Node
from ..obs.metrics import Histogram
from .client import RouteQueryClient, raise_typed

__all__ = ["LoadgenConfig", "run_loadgen", "loadgen"]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation campaign (all fields seed-deterministic)."""

    host: str
    port: int
    codec: str = "binary"
    connections: int = 2
    batches: int = 50
    batch_size: int = 100
    #: Distinct (src, dst) flows measured traffic draws from; 0 means
    #: ``4 * batch_size``.  Bounded so the warmup can resolve every
    #: flow on every replica before the timed phase.
    pool_pairs: int = 0
    warmup_batches: int = 2
    delta_every: int = 0
    delta_budget: int = 8
    #: Skip the first N reserved delta victims — lets back-to-back
    #: campaigns against one live plane fault *fresh* nodes instead of
    #: re-faulting (and so not epoch-bumping with) earlier victims.
    delta_offset: int = 0
    seed: int = 0
    dims: Tuple[int, ...] = (16, 16)
    fault_count: int = 5
    fault_seed: int = 4
    rounds: int = 2
    timeout: float = 120.0


def _base_faults(cfg: LoadgenConfig) -> FaultSet:
    mesh = Mesh(cfg.dims)
    return random_node_faults(
        mesh, cfg.fault_count, np.random.default_rng(cfg.fault_seed)
    )


def _survivor_pools(
    cfg: LoadgenConfig,
    faults: FaultSet,
    excluded: List[List[int]],
) -> Tuple[List[Node], List[Node]]:
    """Split survivors into (query pool, reserved delta victims).

    Delta victims never appear in query traffic, so a mid-run fault
    delta can never turn a planned query pair into a non-survivor
    error — outcome counts stay seed-deterministic.
    """
    dead = {tuple(int(x) for x in v) for v in excluded}
    survivors = [
        v for v in faults.mesh.nodes()
        if not faults.node_is_faulty(v) and v not in dead
    ]
    reserve = min(cfg.delta_budget, max(0, len(survivors) - 2))
    if reserve == 0 or cfg.delta_every <= 0:
        return survivors, []
    return survivors[:-reserve], survivors[-reserve:]


def _plan_pairs(
    rng: random.Random, pool: List[Node], count: int
) -> List[Tuple[Node, Node]]:
    pairs: List[Tuple[Node, Node]] = []
    while len(pairs) < count:
        i = rng.randrange(len(pool))
        j = rng.randrange(len(pool))
        if i != j:
            pairs.append((pool[i], pool[j]))
    return pairs


async def run_loadgen(
    cfg: LoadgenConfig,
    progress: Optional[Callable[[int], None]] = None,
) -> Dict[str, Any]:
    """Run the campaign; returns the report dict.

    ``progress`` (if given) is called with the index of each measured
    batch as it completes — the shard smoke uses it to time a worker
    kill against traffic instead of against the wall clock.
    """
    if cfg.connections < 1 or cfg.batches < 1 or cfg.batch_size < 1:
        raise ValueError("connections, batches and batch_size must be >= 1")
    faults = _base_faults(cfg)
    admin = await RouteQueryClient.connect(
        cfg.host, cfg.port, default_timeout=cfg.timeout, codec=cfg.codec
    )
    compiled = await admin.compile(faults, timeout=cfg.timeout)
    excluded = list(compiled["lamb_nodes"]) + list(compiled["quarantined"])
    query_pool, delta_pool = _survivor_pools(cfg, faults, excluded)
    rng = random.Random(cfg.seed)
    pool_size = cfg.pool_pairs if cfg.pool_pairs > 0 else 4 * cfg.batch_size
    pool = _plan_pairs(rng, query_pool, pool_size)
    measured: List[List[Tuple[Node, Node]]] = [
        [pool[rng.randrange(pool_size)] for _ in range(cfg.batch_size)]
        for _ in range(cfg.batches)
    ]

    clients: List[RouteQueryClient] = [admin]
    for _ in range(cfg.connections - 1):
        clients.append(
            await RouteQueryClient.connect(
                cfg.host, cfg.port,
                default_timeout=cfg.timeout, codec=cfg.codec,
            )
        )

    async def run_batch(
        client: RouteQueryClient,
        batch: List[Tuple[Node, Node]],
        hist: Optional[Histogram],
    ) -> int:
        t0 = time.perf_counter()
        replies = await client.query_batch(batch, timeout=cfg.timeout)
        elapsed = time.perf_counter() - t0
        ok = 0
        for reply in replies:
            raise_typed(reply)
            ok += 1
        if hist is not None and replies:
            per_query = elapsed / len(replies)
            for _ in range(len(replies)):
                hist.observe(per_query)
        return ok

    # Warm every replica's route cache before the timed phase: the
    # production regime for compile-once/query-many is steady-state
    # reads, and a cold table measures route *computation*, not the
    # serving plane.  Consecutive sends of the same chunk rotate
    # across replicas, so each chunk lands on every replica when
    # ``warmup_batches * connections >= num_shards``.
    for at in range(0, pool_size, cfg.batch_size):
        chunk = pool[at:at + cfg.batch_size]
        for _ in range(cfg.warmup_batches):
            for client in clients:
                await run_batch(client, chunk, None)

    hist = Histogram()
    deltas_sent = 0
    ok_total = 0
    next_victim = min(cfg.delta_offset, len(delta_pool))

    async def worker(conn_index: int) -> int:
        nonlocal deltas_sent, next_victim
        client = clients[conn_index]
        done = 0
        for at in range(conn_index, len(measured), cfg.connections):
            done += await run_batch(client, measured[at], hist)
            if progress is not None:
                progress(at)
            if (
                conn_index == 0
                and cfg.delta_every > 0
                and (at // cfg.connections + 1) % cfg.delta_every == 0
                and next_victim < len(delta_pool)
            ):
                victim = delta_pool[next_victim]
                next_victim += 1
                await client.delta(
                    node_faults=[victim], timeout=cfg.timeout
                )
                deltas_sent += 1
        return done

    t0 = time.perf_counter()
    counts = await asyncio.gather(
        *(worker(i) for i in range(cfg.connections))
    )
    wall = time.perf_counter() - t0
    ok_total = sum(counts)

    final = await admin.ping(timeout=cfg.timeout)
    for client in clients:
        await client.close()

    queries = len(measured) * cfg.batch_size
    snap = hist.snapshot()
    return {
        # Seed-deterministic: the shard smoke byte-diffs this block.
        "snapshot": {
            "codec": cfg.codec,
            "connections": cfg.connections,
            "batches": len(measured),
            "batch_size": cfg.batch_size,
            "pool_pairs": pool_size,
            "queries": queries,
            "ok": ok_total,
            "deltas": deltas_sent,
            "final_epoch": int(final["epoch"]),
            "seed": cfg.seed,
            "dims": list(cfg.dims),
            "base_faults": cfg.fault_count,
            "base_lambs": int(compiled["lambs"]),
        },
        # A (src, dst) pair that stays valid on every epoch this
        # campaign can produce: drawn from the query pool, which is
        # disjoint from base faults, lambs, quarantine and the
        # reserved delta victims.  The shard smoke pins its
        # epoch-equality probe to it.
        "probe": [list(query_pool[0]), list(query_pool[1])],
        # Wall-clock figures (never diffed).
        "latency": {
            "p50_s": snap["p50_s"],
            "p95_s": snap["p95_s"],
            "p99_s": snap["p99_s"],
            "mean_s": snap["mean_s"],
        },
        "throughput": {
            "wall_s": round(wall, 6),
            "qps": round(queries / wall, 2) if wall > 0 else 0.0,
        },
    }


def loadgen(
    cfg: LoadgenConfig,
    progress: Optional[Callable[[int], None]] = None,
) -> Dict[str, Any]:
    """Synchronous wrapper around :func:`run_loadgen`."""
    return asyncio.run(run_loadgen(cfg, progress))
