"""Asyncio client for the route-query service.

Mirrors the wire protocol of :mod:`repro.service.server` in either
codec: ``ndjson`` (one JSON request per line, or a JSON array for a
pipelined batch, replies in request order) or ``binary``
(length-prefixed frames, one reply frame per request frame — a batch
frame gets a single reply frame carrying the array).  Error replies
are rebuilt into the *same* typed exceptions the server raised
(:mod:`repro.service.errors`), so client code handles
:class:`~repro.service.errors.StaleEpochError` exactly as in-process
callers do.

A server-side *stream-level* error (e.g. the request exceeded the
wire limit) comes back as an ``id: null`` error reply.  The server
consumed the offending message in full before replying, so the
connection is still in sync: the client raises the typed error —
usually :class:`~repro.service.errors.WireProtocolError` — without
poisoning the connection.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..mesh.faults import FaultSet
from ..mesh.serialization import faults_to_dict
from . import wire
from .errors import (
    MalformedRequestError,
    RequestTimeoutError,
    ServiceError,
    WireProtocolError,
    from_wire,
)

__all__ = ["RouteQueryClient", "raise_typed", "CODECS"]

#: Wire codecs this client can speak.
CODECS = ("ndjson", "binary")


def raise_typed(reply: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``reply`` if ``ok``; raise its typed error otherwise."""
    if reply.get("ok"):
        return reply
    error = reply.get("error")
    if isinstance(error, dict):
        raise from_wire(error)
    raise ServiceError(f"malformed error reply: {reply!r}")


class RouteQueryClient:
    """One connection to a :class:`~repro.service.server.RouteQueryServer`.

    Use :meth:`connect`; every RPC accepts an optional per-call
    ``timeout`` (seconds) overriding ``default_timeout`` — an expired
    wait raises :class:`~repro.service.errors.RequestTimeoutError`.
    ``codec`` selects the wire framing (``"ndjson"`` or ``"binary"``);
    the server auto-detects it from the first bytes sent.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        default_timeout: float = 10.0,
        codec: str = "ndjson",
    ) -> None:
        if codec not in CODECS:
            raise ValueError(f"unknown codec {codec!r} (want one of {CODECS})")
        self._reader = reader
        self._writer = writer
        self.default_timeout = float(default_timeout)
        self.codec = codec
        self._next_id = 0
        self._broken = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        default_timeout: float = 10.0,
        connect_timeout: float = 10.0,
        codec: str = "ndjson",
    ) -> "RouteQueryClient":
        # The asyncio default stream limit is 64 KiB — far below a
        # legitimate large reply (a big stats snapshot or a pipelined
        # batch's worth of lines); match the server's ceiling instead.
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                host, port, limit=wire.MAX_FRAME_BYTES
            ),
            timeout=connect_timeout,
        )
        return cls(reader, writer, default_timeout=default_timeout,
                   codec=codec)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "RouteQueryClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    @property
    def broken(self) -> bool:
        """Whether this connection has been poisoned by a desync (a
        client-side timeout or a reply-id mismatch) and must be
        replaced with a fresh :meth:`connect`."""
        return self._broken

    def _poison(self) -> None:
        """Mark the connection unusable and close it.

        After a client-side timeout the un-consumed reply is still in
        the socket buffer; the next request would read that stale
        reply and mis-match ids forever.  A broken client fails fast
        instead of looking usable while permanently desynced.
        """
        self._broken = True
        self._writer.close()

    def _ensure_usable(self) -> None:
        if self._broken:
            raise ServiceError(
                "connection is desynchronized (an earlier request "
                "timed out or mismatched reply ids); open a new client"
            )

    def _make_request(self, op: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        req = {"id": self._next_id, "op": op}
        self._next_id += 1
        req.update(payload)
        return req

    def _send(self, message: Any) -> None:
        """Encode one request (or batch) in the connection codec."""
        if self.codec == "binary":
            self._writer.write(wire.encode_frame(message))
        else:
            self._writer.write(
                (json.dumps(message) + "\n").encode("utf-8")
            )

    async def _read_message(self, timeout: Optional[float]) -> Any:
        """One decoded reply message: a dict, or (binary batch reply)
        a list of dicts."""
        deadline = self.default_timeout if timeout is None else float(timeout)
        if self.codec == "binary":
            try:
                body = await asyncio.wait_for(
                    wire.read_frame(self._reader), timeout=deadline
                )
            except asyncio.TimeoutError:
                self._poison()
                raise RequestTimeoutError(
                    f"no reply within {deadline}s (client-side deadline); "
                    f"connection closed — reconnect to continue"
                )
            except asyncio.IncompleteReadError:
                raise ServiceError(
                    "connection closed before a full reply frame arrived"
                )
            except WireProtocolError as exc:
                if not exc.data.get("recoverable"):
                    self._poison()
                raise
            if body is None:
                raise ServiceError(
                    "connection closed before a reply arrived"
                )
            reply = wire.decode_payload(body)
            if not isinstance(reply, (dict, list)):
                raise ServiceError(f"reply is not an object: {reply!r}")
            return reply
        try:
            line = await asyncio.wait_for(
                self._reader.readline(), timeout=deadline
            )
        except asyncio.TimeoutError:
            self._poison()
            raise RequestTimeoutError(
                f"no reply within {deadline}s (client-side deadline); "
                f"connection closed — reconnect to continue"
            )
        except ValueError:
            # The reply line overran the stream limit; the stream
            # position inside that line is now unknowable.
            self._poison()
            raise WireProtocolError(
                "reply line exceeds the client stream limit; "
                "connection closed — reconnect to continue",
                {"recoverable": False},
            )
        if not line:
            raise ServiceError("connection closed before a reply arrived")
        try:
            reply = json.loads(line)
        except ValueError:
            raise ServiceError(f"unparseable reply line: {line[:80]!r}")
        if not isinstance(reply, dict):
            raise ServiceError(f"reply is not an object: {reply!r}")
        return reply

    async def _read_reply(self, timeout: Optional[float]) -> Dict[str, Any]:
        reply = await self._read_message(timeout)
        if not isinstance(reply, dict):
            self._poison()
            raise ServiceError(
                f"expected a single reply object, got a batch of "
                f"{len(reply)}"
            )
        return reply

    @staticmethod
    def _stream_level_error(reply: Dict[str, Any]) -> bool:
        """An ``id: null`` error reply reports a message-level failure
        (unparseable line, oversized message).  The server consumed
        the whole offending message before replying, so the stream is
        still in sync — raise typed, do *not* poison."""
        return reply.get("id") is None and not reply.get("ok")

    async def request(
        self,
        op: str,
        timeout: Optional[float] = None,
        **payload: Any,
    ) -> Dict[str, Any]:
        """Send one request; return the ok-reply body or raise its
        typed error."""
        self._ensure_usable()
        req = self._make_request(op, payload)
        self._send(req)
        await self._writer.drain()
        reply = await self._read_reply(timeout)
        if self._stream_level_error(reply):
            return raise_typed(reply)
        if reply.get("id") != req["id"]:
            self._poison()
            raise ServiceError(
                f"reply id {reply.get('id')!r} does not match "
                f"request id {req['id']}"
            )
        return raise_typed(reply)

    async def request_batch(
        self,
        requests: Sequence[Tuple[str, Dict[str, Any]]],
        timeout: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Pipeline a batch of ``(op, payload)`` requests as a single
        message; returns the raw reply dicts in order (errors are
        *not* raised — inspect ``reply["ok"]`` or pass through
        :func:`raise_typed` per element).  A *stream-level* failure
        (the whole batch was rejected before parsing) raises its typed
        error without poisoning the connection."""
        if not requests:
            raise MalformedRequestError("empty batch")
        self._ensure_usable()
        reqs = [self._make_request(op, payload) for op, payload in requests]
        self._send(reqs)
        await self._writer.drain()
        if self.codec == "binary":
            return self._match_batch(
                reqs, await self._read_message(timeout)
            )
        replies: List[Dict[str, Any]] = []
        for at, req in enumerate(reqs):
            reply = await self._read_reply(timeout)
            if at == 0 and self._stream_level_error(reply):
                raise_typed(reply)
            if reply.get("id") != req["id"]:
                self._poison()
                raise ServiceError(
                    f"reply id {reply.get('id')!r} does not match "
                    f"request id {req['id']}"
                )
            replies.append(reply)
        return replies

    def _match_batch(
        self, reqs: List[Dict[str, Any]], message: Any
    ) -> List[Dict[str, Any]]:
        """Validate a binary batch reply frame against the batch."""
        if isinstance(message, dict):
            if self._stream_level_error(message):
                raise_typed(message)
            self._poison()
            raise ServiceError(
                f"expected a batch reply, got a single reply with id "
                f"{message.get('id')!r}"
            )
        if len(message) != len(reqs):
            self._poison()
            raise ServiceError(
                f"batch reply has {len(message)} elements for "
                f"{len(reqs)} requests"
            )
        for req, reply in zip(reqs, message):
            if not isinstance(reply, dict) or reply.get("id") != req["id"]:
                self._poison()
                raise ServiceError(
                    f"reply id "
                    f"{reply.get('id') if isinstance(reply, dict) else reply!r}"
                    f" does not match request id {req['id']}"
                )
        return list(message)

    # ------------------------------------------------------------------
    # Typed RPCs
    # ------------------------------------------------------------------
    async def ping(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return await self.request("ping", timeout=timeout)

    async def compile(
        self, faults: FaultSet, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Compile (or cache-fetch) the artifact for ``faults``."""
        return await self.request(
            "compile", timeout=timeout, faults=faults_to_dict(faults)
        )

    async def delta(
        self,
        node_faults: Sequence[Sequence[int]] = (),
        link_faults: Sequence[Tuple[Sequence[int], Sequence[int]]] = (),
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Report newly detected faults; triggers an incremental
        recompile and an epoch bump."""
        return await self.request(
            "delta",
            timeout=timeout,
            node_faults=[list(int(x) for x in v) for v in node_faults],
            link_faults=[
                [list(int(x) for x in u), list(int(x) for x in w)]
                for (u, w) in link_faults
            ],
        )

    async def query(
        self,
        source: Sequence[int],
        dest: Sequence[int],
        epoch: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Resolve one route (optionally pinned to ``epoch``)."""
        payload: Dict[str, Any] = {
            "source": [int(x) for x in source],
            "dest": [int(x) for x in dest],
        }
        if epoch is not None:
            payload["epoch"] = int(epoch)
        return await self.request("query", timeout=timeout, **payload)

    async def query_batch(
        self,
        pairs: Sequence[Tuple[Sequence[int], Sequence[int]]],
        epoch: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """Pipeline many route queries in one round trip (raw replies,
        see :meth:`request_batch`)."""
        requests: List[Tuple[str, Dict[str, Any]]] = []
        for (source, dest) in pairs:
            payload: Dict[str, Any] = {
                "source": [int(x) for x in source],
                "dest": [int(x) for x in dest],
            }
            if epoch is not None:
                payload["epoch"] = int(epoch)
            requests.append(("query", payload))
        return await self.request_batch(requests, timeout=timeout)

    async def stats(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return await self.request("stats", timeout=timeout)

    async def shutdown(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Ask the server to drain gracefully."""
        return await self.request("shutdown", timeout=timeout)
