"""Binary wire framing for the route-query plane.

Two codecs share one TCP port:

- **ndjson** (the original): one JSON request per line, one reply line
  per request, ``\\n``-delimited.
- **binary**: length-prefixed frames.  A frame is a fixed 12-byte
  header (``!4sBBHI`` — magic, version, flags, reserved, body length)
  followed by a JSON body encoded with ``sort_keys=True``.  A batch is
  a single frame whose body is a JSON array; the reply to a batch is a
  single frame carrying the array of replies, serialized with **one**
  ``json.dumps`` call and written as a header + ``memoryview`` pair
  (no concatenation copy on the hot path).

Negotiation is per-connection and implicit: the server peeks the first
four bytes.  :data:`MAGIC` starts with ``0xAB`` — not valid UTF-8 JSON
text — so a binary client can never be mistaken for an NDJSON one (and
vice versa: JSON starts with printable ASCII).

Byte-equivalence invariant (covered by a golden test): for any reply
object ``r``, the binary frame body for ``r`` plus ``b"\\n"`` is
byte-identical to the NDJSON reply line for ``r`` — both sides call
:func:`encode_payload`.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Optional, Tuple

from .errors import WireProtocolError

__all__ = [
    "MAGIC",
    "FRAME_VERSION",
    "HEADER",
    "MAX_FRAME_BYTES",
    "encode_payload",
    "decode_payload",
    "frame_header",
    "encode_frame",
    "read_frame",
    "reply_views",
]

#: First bytes of every binary frame.  ``0xAB`` is outside printable
#: ASCII, so the stream can never be confused with NDJSON text.
MAGIC = b"\xabRQ1"

#: Bump when the header layout or body encoding changes.
FRAME_VERSION = 1

#: ``magic(4s) version(B) flags(B) reserved(H) body_length(I)``.
HEADER = struct.Struct("!4sBBHI")

#: Default ceiling on one frame body (matches the NDJSON line limit).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Discard chunk size while draining an oversized frame body.
_DRAIN_CHUNK = 64 * 1024


def encode_payload(obj: Any) -> bytes:
    """Canonical JSON body bytes — shared by both codecs so replies
    are byte-equivalent across them."""
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def decode_payload(data: bytes) -> Any:
    return json.loads(data)


def frame_header(body_length: int, flags: int = 0) -> bytes:
    """The 12-byte header for a body of ``body_length`` bytes."""
    return HEADER.pack(MAGIC, FRAME_VERSION, flags, 0, body_length)


def encode_frame(obj: Any, flags: int = 0) -> bytes:
    """One self-contained frame (header + body) for ``obj``."""
    body = encode_payload(obj)
    return frame_header(len(body), flags) + body


async def _drain_exact(reader: asyncio.StreamReader, count: int) -> bool:
    """Discard exactly ``count`` bytes; ``False`` if EOF cut it short."""
    remaining = count
    while remaining > 0:
        chunk = await reader.read(min(_DRAIN_CHUNK, remaining))
        if not chunk:
            return False
        remaining -= len(chunk)
    return True


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    first_header_bytes: bytes = b"",
) -> Optional[bytes]:
    """Read one frame; returns the raw body bytes.

    - ``None`` on a clean EOF at a frame boundary.
    - Raises :class:`asyncio.IncompleteReadError` when the peer dies
      mid-frame (truncated header or body).
    - Raises :class:`WireProtocolError` on a bad magic/version
      (``data["recoverable"] is False`` — the next boundary is lost)
      or an oversized body (``data["recoverable"] is True`` — the body
      is fully drained first, so the stream stays in sync).

    ``first_header_bytes`` lets a negotiating server pass in header
    bytes it already consumed while peeking at the codec.
    """
    need = HEADER.size - len(first_header_bytes)
    if need > 0:
        try:
            rest = await reader.readexactly(need)
        except asyncio.IncompleteReadError as exc:
            if not first_header_bytes and not exc.partial:
                return None  # clean EOF between frames
            raise
        header = first_header_bytes + rest
    else:
        header = first_header_bytes
    magic, version, _flags, _reserved, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireProtocolError(
            f"bad frame magic {magic!r}",
            {"recoverable": False},
        )
    if version != FRAME_VERSION:
        raise WireProtocolError(
            f"unsupported frame version {version} "
            f"(this peer speaks {FRAME_VERSION})",
            {"recoverable": False, "version": int(version)},
        )
    if length > max_frame_bytes:
        drained = await _drain_exact(reader, length)
        if not drained:
            raise asyncio.IncompleteReadError(b"", length)
        raise WireProtocolError(
            f"frame body of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte limit",
            {
                "recoverable": True,
                "length": int(length),
                "limit_bytes": int(max_frame_bytes),
            },
        )
    return await reader.readexactly(length)


def reply_views(payload: bytes, flags: int = 0) -> Tuple[bytes, memoryview]:
    """Header + zero-copy body view for writing a reply frame."""
    return frame_header(len(payload), flags), memoryview(payload)
