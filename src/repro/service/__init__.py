"""Reconfiguration control plane.

The paper's selling point is that lamb reconfiguration is cheap enough
— O(k d^3 f^3 + |Λ|), independent of mesh size — to rerun on every
fault event.  This package turns that in-process call into a control
plane with a slow control path and a fast data path:

- :mod:`repro.service.store` — canonical config identity (blake2
  content addressing) and a two-tier artifact store (LRU + disk);
- :mod:`repro.service.compiler` — compile-once semantics over the lamb
  pipeline with the degradation ladder and an optional CDG
  deadlock-freedom cross-check before publication;
- :mod:`repro.service.wire` — the length-prefixed binary framing that
  rides next to NDJSON on the same listener (negotiated per
  connection);
- :mod:`repro.service.server` / :mod:`repro.service.client` — an
  asyncio TCP service (NDJSON or binary frames, batching, per-request
  timeouts, graceful drain) serving route queries at high QPS;
- :mod:`repro.service.shard` — the sharded plane: a router process in
  front of N replicated worker processes over a shared artifact
  store, with crash respawn and mutation-log replay;
- :mod:`repro.service.loadgen` — seeded mixed query/delta traffic
  campaigns (``repro loadgen``) with latency quantiles;
- :mod:`repro.service.metrics` — cache/compile/query observability
  behind the ``stats`` RPC;
- :mod:`repro.service.errors` — typed wire errors under the
  :class:`repro.wormhole.SimulationError` taxonomy.

See ``docs/service.md`` for the protocols and artifact schema, and
``repro serve`` / ``repro query`` / ``repro loadgen`` for the CLI
front ends.
"""

from .compiler import CompiledArtifact, ReconfigurationCompiler
from .errors import (
    CompileError,
    MalformedRequestError,
    RequestTimeoutError,
    ServiceError,
    ServiceUnavailableError,
    StaleEpochError,
    UnknownOperationError,
    WireProtocolError,
)
from .metrics import Counter, Gauge, Histogram, ServiceMetrics
from .store import ArtifactStore, canonical_config, config_digest

__all__ = [
    "ArtifactStore",
    "canonical_config",
    "config_digest",
    "CompiledArtifact",
    "ReconfigurationCompiler",
    "ServiceMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "ServiceError",
    "MalformedRequestError",
    "UnknownOperationError",
    "StaleEpochError",
    "CompileError",
    "RequestTimeoutError",
    "ServiceUnavailableError",
    "WireProtocolError",
    "RouteQueryClient",
    "RouteQueryServer",
    "ShardRouter",
    "LoadgenConfig",
    "run_loadgen",
    "loadgen",
    "serve_smoke",
    "shard_smoke",
]


def __getattr__(name: str):
    # Server/client pull in asyncio; import lazily so the core package
    # stays light for library users.
    if name == "RouteQueryServer":
        from .server import RouteQueryServer

        return RouteQueryServer
    if name == "RouteQueryClient":
        from .client import RouteQueryClient

        return RouteQueryClient
    if name == "ShardRouter":
        from .shard import ShardRouter

        return ShardRouter
    if name == "LoadgenConfig":
        from .loadgen import LoadgenConfig

        return LoadgenConfig
    if name == "run_loadgen":
        from .loadgen import run_loadgen

        return run_loadgen
    if name == "loadgen":
        from .loadgen import loadgen

        return loadgen
    if name == "serve_smoke":
        from .smoke import serve_smoke

        return serve_smoke
    if name == "shard_smoke":
        from .smoke import shard_smoke

        return shard_smoke
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
