"""Computational-complexity artifacts: the Section 9 reduction and
the paper's adversarial instances."""

from .adversarial import (
    AdversarialInstance,
    diagonal_fault_set,
    lamb1_adversarial_instance,
    prop65_fault_set,
)
from .nphardness import (
    LambHardnessInstance,
    build_lamb_instance,
    cover_to_lamb_set,
    recover_vertex_cover,
)

__all__ = [
    "build_lamb_instance",
    "LambHardnessInstance",
    "recover_vertex_cover",
    "cover_to_lamb_set",
    "lamb1_adversarial_instance",
    "AdversarialInstance",
    "prop65_fault_set",
    "diagonal_fault_set",
]
