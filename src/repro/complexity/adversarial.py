"""Adversarial instances from the paper.

- :func:`lamb1_adversarial_instance`: the Section 6.3.1 family on
  which Lamb1 is nonoptimal by a factor ``2 - 1/(2m)`` (Fig. 15) —
  two full fault rows split the mesh into three components.
- :func:`prop65_fault_set`: Proposition 6.5's inductive construction
  on which Find-SES-Partition returns *exactly* ``B(d, f)`` sets (the
  Theorem 6.4 bound is tight).
- :func:`diagonal_fault_set`: one fault at ``(i, i, ..., i)`` for odd
  ``i`` — makes both the SEC and DEC partition sizes hit
  ``(2d - 1) f + 1`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh, Node

__all__ = [
    "AdversarialInstance",
    "lamb1_adversarial_instance",
    "prop65_fault_set",
    "diagonal_fault_set",
]


@dataclass(frozen=True)
class AdversarialInstance:
    """A fault set with its known optimal and expected Lamb1 sizes."""

    faults: FaultSet
    optimal_lamb_size: int
    lamb1_size: int

    @property
    def ratio(self) -> float:
        return self.lamb1_size / self.optimal_lamb_size


def lamb1_adversarial_instance(m: int) -> AdversarialInstance:
    """Section 6.3.1's example on ``M_2(4m + 1)``.

    Fault rows at ``y = m`` and ``y = n - m - 1`` cut the mesh into
    three components of ``m*n``, ``(2m-1)*n`` and ``m*n`` nodes.  The
    optimal lamb set is the two outer components (``2mn`` nodes) but
    Lamb1's bipartite cover takes one full side of the bipartition,
    ``(4m - 1) n`` nodes — ratio ``2 - 1/(2m)``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    n = 4 * m + 1
    mesh = Mesh((n, n))
    rows = [m, n - m - 1]
    faults = FaultSet(mesh, [(x, y) for y in rows for x in range(n)])
    return AdversarialInstance(
        faults=faults,
        optimal_lamb_size=2 * m * n,
        lamb1_size=(4 * m - 1) * n,
    )


def _prop65_place(d: int, n: int, f: int) -> List[Node]:
    """Recursive fault placement of Proposition 6.5 (node-fault case)."""
    if f == 0:
        return []
    if d == 1:
        if f > (n - 1) // 2:
            raise ValueError("too many faults for one dimension")
        return [(2 * i - 1,) for i in range(1, f + 1)]
    max_f = n ** (d - 1) * (n - 1) // 2
    if f > max_f:
        raise ValueError(f"f must be at most {max_f}")
    out: List[Node] = []
    if 2 * f <= n - 1:
        # One fault in each slab 2i - 1 for i = 1..f.
        for i in range(1, f + 1):
            for v in _prop65_place(d - 1, n, 1):
                out.append(v + (2 * i - 1,))
        return out
    # f = q n + r: r slabs get q + 1 faults, n - r slabs get q; odd
    # slabs 2i - 1 (i <= (n-1)/2) must each get at least one fault.
    q, r = divmod(f, n)
    counts = [q] * n
    odd = [2 * i - 1 for i in range(1, (n - 1) // 2 + 1)]
    extra = r
    # Give the +1 first to odd slabs that would otherwise be empty.
    order = odd + [c for c in range(n) if c not in odd]
    for c in order:
        if extra == 0:
            break
        counts[c] += 1
        extra -= 1
    for c in range(n):
        for v in _prop65_place(d - 1, n, counts[c]):
            out.append(v + (c,))
    return out


def prop65_fault_set(d: int, n: int, f: int, link_faults: bool = False) -> FaultSet:
    """Proposition 6.5's fault set: Find-SES-Partition on it returns an
    SES partition of size exactly ``B(d, f)``
    (:func:`repro.core.partition_size_bound`).

    ``n`` must be odd and at least 3; ``f <= n^(d-1) (n-1) / 2``.
    With ``link_faults=True`` the same construction uses link faults
    whose left endpoints sit at the node-fault positions.
    """
    if n < 3 or n % 2 == 0:
        raise ValueError("Proposition 6.5 requires odd n >= 3")
    mesh = Mesh.square(d, n)
    nodes = _prop65_place(d, n, f)
    if not link_faults:
        return FaultSet(mesh, nodes)
    links = []
    for v in nodes:
        # The link whose left endpoint is the node-fault position; the
        # first coordinate of the construction is always odd, hence
        # strictly below n - 1, so the +1 neighbor exists.
        w = (v[0] + 1,) + v[1:]
        links.append((v, w))
    return FaultSet(mesh, (), links)


def diagonal_fault_set(d: int, n: int, f: int) -> FaultSet:
    """One fault at ``(i, i, ..., i)`` for each odd ``i <= 2f - 1``
    (requires ``f <= (n - 1) / 2``): both the SEC and DEC partitions
    have exactly ``(2d - 1) f + 1`` classes (tightness of the loose
    Theorem 6.4 bound)."""
    if 2 * f > n - 1:
        raise ValueError("requires f <= (n - 1) / 2")
    mesh = Mesh.square(d, n)
    return FaultSet(mesh, [((2 * i - 1),) * d for i in range(1, f + 1)])
