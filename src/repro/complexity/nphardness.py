"""The NP-hardness reduction of Section 9, executable.

Theorem 9.1 reduces Vertex Cover to the (3, 2)-lamb problem: given a
graph ``G``, build a fault set on ``M_3(n)`` out of *column planes*
(Fig. 27) and *non-edge planes* (Fig. 28) such that

1. columns of non-adjacent vertices can 2-reach each other,
2. columns of adjacent vertices cannot (outside outlets),
3. every column reaches the external region and vice versa,

so a lamb set yields a vertex cover (take vertex ``u_i`` when all
non-outlet nodes of column ``i`` are lambs) whose size tracks the lamb
set's.  The paper's ``n`` is astronomically large because it must make
the *approximation ratio* transfer exact; for executable instances we
allow any ``n >= max(2|V|, 2 * #non-edges + 1)`` — the combinatorial
structure (properties 1-3 and cover recovery) is preserved at any such
``n``, which is what the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh, Node

__all__ = [
    "LambHardnessInstance",
    "build_lamb_instance",
    "recover_vertex_cover",
    "cover_to_lamb_set",
]


@dataclass
class LambHardnessInstance:
    """A (3, 2)-lamb instance encoding a vertex cover instance.

    Attributes
    ----------
    graph_n, edges:
        The original VC instance (vertices ``0..graph_n-1``).  Vertex
        ``graph_n`` is the isolated helper ``u_0`` added by the proof;
        internally vertices are re-indexed with the helper at 0.
    faults:
        The constructed fault set on ``M_3(n)``.
    column_levels:
        Levels of the column planes.
    nonedge_levels:
        Map (i, j) vertex pair (internal indexing, i < j) -> plane
        level for every *non-edge*.
    """

    graph_n: int
    edges: List[Tuple[int, int]]
    n: int
    faults: FaultSet
    column_levels: List[int]
    nonedge_levels: Dict[Tuple[int, int], int]
    num_vertices: int  # |V| including the helper

    def column_nodes(self, i: int) -> List[Node]:
        """All nodes of column-i: ``(2i, y, 2i)`` for every level."""
        return [(2 * i, y, 2 * i) for y in range(self.n)]

    def outlet_levels(self, i: int) -> Set[int]:
        """Levels at which column-i has an outlet."""
        return {
            y
            for (a, b), y in self.nonedge_levels.items()
            if i in (a, b)
        }

    def non_outlet_nodes(self, i: int) -> List[Node]:
        """The r-column (restricted) nodes of column-i."""
        outs = self.outlet_levels(i)
        return [(2 * i, y, 2 * i) for y in range(self.n) if y not in outs]

    def path_nodes(self) -> Set[Node]:
        """All internal good nodes that are neither column nodes nor
        outlets (the 'path nodes' of the proof)."""
        cols = {2 * i for i in range(self.num_vertices)}
        out: Set[Node] = set()
        V2 = 2 * self.num_vertices
        for (i, j), y in self.nonedge_levels.items():
            for v in _nonedge_plane_good(self.num_vertices, i, j):
                node = (v[0], y, v[1])
                if not (v[0] == v[1] and v[0] in cols):
                    out.add(node)
        return out

    def is_internal(self, node: Node) -> bool:
        x, _, z = node
        V2 = 2 * self.num_vertices
        return x < V2 and z < V2


def _nonedge_plane_good(V: int, i: int, j: int) -> Set[Tuple[int, int]]:
    """Good internal (x, z) cells of the non-edge plane for columns
    ``i < j`` (Fig. 28): the rectangle boundary with corners
    ``(2i, 2i)`` and ``(2j, 2j)`` plus X and Z escapes from both
    outlets to the external region."""
    V2 = 2 * V
    a, b = 2 * i, 2 * j
    good: Set[Tuple[int, int]] = set()
    # Rectangle boundary between the two outlets (both L paths).
    for z in range(a, b + 1):
        good.add((a, z))
        good.add((b, z))
    for x in range(a, b + 1):
        good.add((x, a))
        good.add((x, b))
    # Escapes to the external region (x >= V2 or z >= V2).
    for x in range(b, V2):
        good.add((x, a))
        good.add((x, b))
    for z in range(b, V2):
        good.add((a, z))
        good.add((b, z))
    return good


def build_lamb_instance(
    graph_n: int,
    edges: Iterable[Tuple[int, int]],
    n: int = 0,
) -> LambHardnessInstance:
    """Build the Theorem 9.1 fault set for a VC instance.

    Parameters
    ----------
    graph_n:
        Number of vertices of the VC instance.
    edges:
        Undirected edges ``(u, v)`` with ``0 <= u < v < graph_n``.
    n:
        Mesh width; defaults to the smallest valid value
        ``max(2|V| + 2, 2 * #non-edges + 1)`` where ``|V| = graph_n + 1``
        (the helper vertex is added automatically; the +2 leaves an
        external shell so escape paths have somewhere to go).
    """
    edges = sorted({(min(u, v), max(u, v)) for (u, v) in edges})
    for (u, v) in edges:
        if not (0 <= u < v < graph_n):
            raise ValueError(f"bad edge ({u}, {v})")
    V = graph_n + 1  # helper u_0 at internal index 0
    edge_set = {(u + 1, v + 1) for (u, v) in edges}  # internal indexing
    nonedges = [
        (i, j)
        for i in range(V)
        for j in range(i + 1, V)
        if (i, j) not in edge_set
    ]
    # Need room for external nodes (x or z >= 2|V|) and a plane per
    # non-edge with column planes between and around them.
    min_n = max(2 * V + 2, 2 * len(nonedges) + 1)
    if n == 0:
        n = min_n
    if n < min_n:
        raise ValueError(f"n must be at least {min_n}")
    mesh = Mesh.square(3, n)
    V2 = 2 * V

    # Plane schedule: non-edge planes at odd levels 1, 3, 5, ...; all
    # other levels are column planes (so every non-edge plane has
    # column planes at both adjacent levels).
    nonedge_levels: Dict[Tuple[int, int], int] = {}
    for idx, (i, j) in enumerate(nonedges):
        nonedge_levels[(i, j)] = 2 * idx + 1
    nonedge_by_level = {y: pair for pair, y in nonedge_levels.items()}
    column_levels = [y for y in range(n) if y not in nonedge_by_level]

    node_faults: List[Node] = []
    column_cells = {(2 * i, 2 * i) for i in range(V)}
    for y in range(n):
        pair = nonedge_by_level.get(y)
        if pair is None:
            good_cells = column_cells
        else:
            good_cells = _nonedge_plane_good(V, *pair) | column_cells
        for x in range(V2):
            for z in range(V2):
                if (x, z) not in good_cells:
                    node_faults.append((x, y, z))
    faults = FaultSet(mesh, node_faults)
    return LambHardnessInstance(
        graph_n=graph_n,
        edges=list(edges),
        n=n,
        faults=faults,
        column_levels=column_levels,
        nonedge_levels=nonedge_levels,
        num_vertices=V,
    )


def recover_vertex_cover(
    instance: LambHardnessInstance, lambs: Iterable[Node]
) -> Set[int]:
    """The proof's cover extraction: original vertex ``u`` is in the
    cover iff all non-outlet nodes of its column are lambs."""
    lamb_set = {tuple(v) for v in lambs}
    cover: Set[int] = set()
    for i in range(1, instance.num_vertices):  # skip the helper
        if all(v in lamb_set for v in instance.non_outlet_nodes(i)):
            cover.add(i - 1)  # back to original indexing
    return cover


def cover_to_lamb_set(
    instance: LambHardnessInstance, cover: Iterable[int]
) -> Set[Node]:
    """The proof's Λ* construction: all nodes of every covered
    vertex's column, plus all path nodes."""
    lambs: Set[Node] = set(instance.path_nodes())
    for u in cover:
        lambs.update(instance.column_nodes(u + 1))
    return lambs
