"""One-round dimension-ordered routing (Definition 2.2).

Provides route materialization (the explicit node path), the segment
decomposition used by the fault machinery, and exact one-round
``(F, pi)``-reachability tests (Definition 2.5.1) for meshes and tori.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh, Node
from ..mesh.torus import Torus
from .linefaults import LineFaultIndex, LineKey
from .ordering import Ordering

__all__ = [
    "dor_path",
    "dor_segments",
    "one_round_reachable",
    "path_is_fault_free",
    "torus_dor_path",
    "torus_one_round_reachable",
]


def dor_segments(
    pi: Ordering, v: Sequence[int], w: Sequence[int]
) -> List[Tuple[int, LineKey, int, int]]:
    """Decompose the ``pi``-route from ``v`` to ``w`` into segments.

    Returns a list of ``(dim, line_key, a, b)`` tuples, one per
    dimension in routing order, where the route travels along ``dim``
    from coordinate ``a`` to ``b`` on the line identified by
    ``line_key`` (the other coordinates, in natural order).  Zero-length
    segments (``a == b``) are included so endpoint node faults are
    always detected.
    """
    cur = list(v)
    out = []
    for j in pi:
        key = tuple(cur[:j]) + tuple(cur[j + 1 :])
        out.append((j, key, cur[j], int(w[j])))
        cur[j] = int(w[j])
    return out


def dor_path(
    mesh: Mesh, pi: Ordering, v: Sequence[int], w: Sequence[int]
) -> List[Node]:
    """The explicit node sequence of the unique ``pi``-route.

    >>> from repro.mesh import Mesh
    >>> from repro.routing import xy
    >>> dor_path(Mesh((4, 4)), xy(), (0, 0), (2, 1))
    [(0, 0), (1, 0), (2, 0), (2, 1)]
    """
    v = tuple(int(x) for x in v)
    w = tuple(int(x) for x in w)
    if not mesh.contains(v) or not mesh.contains(w):
        raise ValueError("route endpoints must be mesh nodes")
    cur = list(v)
    path = [tuple(cur)]
    for j in pi:
        step = 1 if w[j] > cur[j] else -1
        while cur[j] != w[j]:
            cur[j] += step
            path.append(tuple(cur))
    return path


def one_round_reachable(
    index: LineFaultIndex, pi: Ordering, v: Sequence[int], w: Sequence[int]
) -> bool:
    """Whether ``w`` is ``(F, pi)``-reachable from ``v`` on a mesh.

    Exact per Definition 2.5.1: the unique ``pi``-route must avoid all
    faulty nodes (including ``v`` and ``w`` themselves) and all faulty
    directed links.
    """
    for j, key, a, b in dor_segments(pi, v, w):
        if index.segment_blocked(j, key, a, b):
            return False
    return True


def path_is_fault_free(faults: FaultSet, path: Sequence[Node]) -> bool:
    """Whether an explicit path avoids all faulty nodes and links."""
    link_set = set(faults.link_faults)
    for node in path:
        if faults.node_is_faulty(node):
            return False
    for u, w in zip(path, path[1:]):
        if (u, w) in link_set:
            return False
    return True


# ----------------------------------------------------------------------
# Torus variants (Section 7 extension)
# ----------------------------------------------------------------------
def torus_dor_path(
    torus: Torus, pi: Ordering, v: Sequence[int], w: Sequence[int]
) -> List[Node]:
    """Deterministic dimension-ordered route on a torus.

    Each ring is traversed in its minimal direction (ties toward +1),
    the standard deterministic DOR convention on tori.
    """
    v = tuple(int(x) for x in v)
    w = tuple(int(x) for x in w)
    if not torus.contains(v) or not torus.contains(w):
        raise ValueError("route endpoints must be torus nodes")
    cur = list(v)
    path = [tuple(cur)]
    for j in pi:
        nj = torus.widths[j]
        step = torus.ring_step(j, cur[j], w[j])
        while cur[j] != w[j]:
            cur[j] = (cur[j] + step) % nj
            path.append(tuple(cur))
    return path


def torus_one_round_reachable(
    faults: FaultSet, pi: Ordering, v: Sequence[int], w: Sequence[int]
) -> bool:
    """Exact one-round reachability on a torus via explicit-path check.

    Suitable for the small tori used in tests and examples; the
    O(f)-space index kernel is mesh-only.
    """
    if not isinstance(faults.mesh, Torus):
        raise TypeError("torus_one_round_reachable requires a Torus fault set")
    path = torus_dor_path(faults.mesh, pi, v, w)
    return path_is_fault_free(faults, path)
