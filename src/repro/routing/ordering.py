"""Dimension orderings for dimension-ordered routing (Definition 2.2).

An ordering is a permutation ``pi`` of the dimensions ``0..d-1``
(0-indexed here; the paper uses 1-indexed).  ``pi[t]`` is the dimension
routed during hop-phase ``t``.  The ascending ordering on 2D/3D meshes
is the paper's XY / XYZ routing; on hypercubes it is e-cube routing.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

__all__ = ["Ordering", "ascending", "xy", "xyz", "KRoundOrdering", "repeated"]


class Ordering:
    """A permutation of ``{0, ..., d-1}`` giving the routing order."""

    __slots__ = ("perm", "d")

    def __init__(self, perm: Sequence[int]) -> None:
        p = tuple(int(x) for x in perm)
        if sorted(p) != list(range(len(p))):
            raise ValueError(f"{p} is not a permutation of 0..{len(p) - 1}")
        self.perm: Tuple[int, ...] = p
        self.d = len(p)

    def __iter__(self) -> Iterator[int]:
        return iter(self.perm)

    def __getitem__(self, t: int) -> int:
        return self.perm[t]

    def __len__(self) -> int:
        return self.d

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ordering) and self.perm == other.perm

    def __hash__(self) -> int:
        return hash(("Ordering", self.perm))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.d <= 3:
            names = "XYZ"
            return "Ordering(" + "".join(names[p] for p in self.perm) + ")"
        return f"Ordering{self.perm}"

    def reversed(self) -> "Ordering":
        """The reverse ordering.

        A set is a DES for ``pi`` iff it is an SES for ``pi`` reversed
        (remark before Lemma 6.2).
        """
        return Ordering(tuple(reversed(self.perm)))

    def is_ascending(self) -> bool:
        return self.perm == tuple(range(self.d))


def ascending(d: int) -> Ordering:
    """The ascending (e-cube) ordering ``(0, 1, ..., d-1)``."""
    return Ordering(range(d))


def xy() -> Ordering:
    """XY routing on a 2D mesh."""
    return ascending(2)


def xyz() -> Ordering:
    """XYZ routing on a 3D mesh."""
    return ascending(3)


class KRoundOrdering:
    """A k-round ordering ``(pi_1, ..., pi_k)`` (Definition 2.3)."""

    __slots__ = ("rounds",)

    def __init__(self, rounds: Sequence[Ordering]) -> None:
        rs = tuple(rounds)
        if not rs:
            raise ValueError("need at least one round")
        d = rs[0].d
        if any(o.d != d for o in rs):
            raise ValueError("all rounds must have the same dimensionality")
        self.rounds: Tuple[Ordering, ...] = rs

    @property
    def k(self) -> int:
        return len(self.rounds)

    @property
    def d(self) -> int:
        return self.rounds[0].d

    def __iter__(self) -> Iterator[Ordering]:
        return iter(self.rounds)

    def __getitem__(self, t: int) -> Ordering:
        return self.rounds[t]

    def __len__(self) -> int:
        return len(self.rounds)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, KRoundOrdering) and self.rounds == other.rounds

    def __hash__(self) -> int:
        return hash(("KRoundOrdering", self.rounds))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KRoundOrdering({list(self.rounds)})"

    def is_uniform(self) -> bool:
        """Whether every round uses the same ordering."""
        return all(o == self.rounds[0] for o in self.rounds)


def repeated(pi: Ordering, k: int) -> KRoundOrdering:
    """The ``pi``-ordered k-round ordering ``(pi, pi, ..., pi)``."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return KRoundOrdering((pi,) * k)
