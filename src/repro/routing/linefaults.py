"""Per-line fault indexes.

A one-round dimension-ordered route decomposes into ``d`` axis-aligned
*segments*; segment ``t`` travels along dimension ``pi[t]`` on a fixed
*line* (a 1-D slice of the mesh).  A segment is usable iff no obstacle
lies in its closed coordinate interval, where an obstacle is either

- a faulty node on the line (coordinate ``x``), or
- a faulty directed link on the line, encoded as a half-integer *cut*:
  a fault on ``<.., c, ..> -> <.., c+1, ..>`` blocks upward motion
  through ``c + 0.5`` and a fault on the reverse link blocks downward
  motion through the same position.

Keeping node faults and cuts in one sorted float array per direction
makes the segment test two ``bisect`` calls, and gives the vectorized
reachability kernel its ``searchsorted`` form (see
:mod:`repro.core.reachability`).  Only lines containing at least one
obstacle are stored, so the index costs O(d * f) space, independent of
the mesh size.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh

__all__ = ["LineFaultIndex", "LineKey"]

LineKey = Tuple[int, ...]

_INF = float("inf")


def _drop(coords: Tuple[int, ...], j: int) -> LineKey:
    return coords[:j] + coords[j + 1 :]


class LineFaultIndex:
    """Sorted per-line obstacle arrays for a fault set.

    Parameters
    ----------
    faults:
        The fault set to index.  The index is immutable; build a new
        one if the fault set changes.
    """

    __slots__ = ("faults", "mesh", "_up", "_down")

    def __init__(self, faults: FaultSet) -> None:
        self.faults = faults
        self.mesh: Mesh = faults.mesh
        d = self.mesh.d
        up: List[Dict[LineKey, List[float]]] = [dict() for _ in range(d)]
        down: List[Dict[LineKey, List[float]]] = [dict() for _ in range(d)]
        for v in faults.node_faults:
            for j in range(d):
                key = _drop(v, j)
                up[j].setdefault(key, []).append(float(v[j]))
                down[j].setdefault(key, []).append(float(v[j]))
        for (u, w) in faults.link_faults:
            j = next(i for i in range(d) if u[i] != w[i])
            key = _drop(u, j)
            if w[j] == u[j] + 1:
                up[j].setdefault(key, []).append(u[j] + 0.5)
            elif w[j] == u[j] - 1:
                down[j].setdefault(key, []).append(w[j] + 0.5)
            else:  # pragma: no cover - torus wrap links are not indexed
                raise ValueError(
                    f"link <{u}, {w}> wraps around; LineFaultIndex supports meshes only"
                )
        self._up: List[Dict[LineKey, np.ndarray]] = [
            {k: np.asarray(sorted(vals)) for k, vals in up[j].items()}
            for j in range(d)
        ]
        self._down: List[Dict[LineKey, np.ndarray]] = [
            {k: np.asarray(sorted(vals)) for k, vals in down[j].items()}
            for j in range(d)
        ]

    # ------------------------------------------------------------------
    def line_has_obstacle(self, j: int, key: LineKey) -> bool:
        """Whether the dimension-``j`` line ``key`` has any obstacle."""
        return key in self._up[j] or key in self._down[j]

    def num_faulty_lines(self, j: int) -> int:
        """Number of dimension-``j`` lines containing an obstacle."""
        return len(set(self._up[j]) | set(self._down[j]))

    def faulty_lines(
        self, j: int
    ) -> Iterator[Tuple[LineKey, np.ndarray, np.ndarray]]:
        """Iterate ``(key, up_obstacles, down_obstacles)`` for every
        dimension-``j`` line containing at least one obstacle."""
        empty = np.empty(0)
        keys = set(self._up[j]) | set(self._down[j])
        for key in sorted(keys):
            yield key, self._up[j].get(key, empty), self._down[j].get(key, empty)

    # ------------------------------------------------------------------
    def segment_blocked(self, j: int, key: LineKey, a: int, b: int) -> bool:
        """Whether traveling along dimension ``j`` on line ``key`` from
        coordinate ``a`` to ``b`` (inclusive of both endpoints for node
        faults) hits an obstacle."""
        if b >= a:
            arr = self._up[j].get(key)
            if arr is None:
                return False
            i = bisect_left(arr, float(a))
            return i < len(arr) and arr[i] <= b
        arr = self._down[j].get(key)
        if arr is None:
            return False
        i = bisect_left(arr, float(b))
        return i < len(arr) and arr[i] <= a

    def blocking_bounds(self, j: int, key: LineKey, a: int) -> Tuple[float, float]:
        """Blocking half-ranges around a *good* position ``a``.

        Returns ``(lo, hi)`` such that a segment from ``a`` to ``w`` on
        this line is blocked iff ``w <= lo`` or ``w >= hi``.  ``lo`` is
        the largest down-obstacle ``<= a`` (``-inf`` if none) and ``hi``
        the smallest up-obstacle ``>= a`` (``+inf`` if none).
        """
        lo, hi = -_INF, _INF
        arr = self._down[j].get(key)
        if arr is not None:
            i = bisect_left(arr, float(a))
            # No node fault equals a (a is good); cuts are half-integers.
            if i > 0:
                lo = float(arr[i - 1])
        arr = self._up[j].get(key)
        if arr is not None:
            i = bisect_left(arr, float(a))
            if i < len(arr):
                hi = float(arr[i])
        return lo, hi
