"""Turn counting.

One of the Blue Gene design goals motivating the lamb approach
(requirement (iv) in Section 1) is minimizing the number of *turns* —
direction changes — per route.  A k-round dimension-ordered route has
at most ``k*d - 1`` turns, whereas fault-ring schemes can take a
constant times ``n`` turns around adversarial fault regions; this
module provides the counters used to quantify that comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..mesh.geometry import Node

__all__ = ["count_turns", "count_turns_multiround", "max_turns_bound"]


def _direction(
    u: Sequence[int],
    v: Sequence[int],
    wrap_widths: Optional[Sequence[int]] = None,
) -> Tuple[int, int]:
    """(dimension, sign) of a unit hop; raises for non-adjacent nodes.

    With ``wrap_widths`` given (torus paths), a hop of ``n_j - 1``
    along dimension ``j`` is a wrap-around and its sign is normalized
    to the physical direction of travel.
    """
    diff = [(j, b - a) for j, (a, b) in enumerate(zip(u, v)) if a != b]
    if len(diff) == 1:
        j, delta = diff[0]
        if abs(delta) == 1:
            return (j, delta)
        if wrap_widths is not None and abs(delta) == wrap_widths[j] - 1:
            return (j, 1 if delta < 0 else -1)
    raise ValueError(f"{tuple(u)} -> {tuple(v)} is not a single hop")


def count_turns(
    path: Sequence[Node], wrap_widths: Optional[Sequence[int]] = None
) -> int:
    """Number of direction changes along an explicit node path.

    Pass ``wrap_widths`` (the torus widths) to accept wrap-around hops.
    """
    turns = 0
    prev: Optional[Tuple[int, int]] = None
    for u, v in zip(path, path[1:]):
        cur = _direction(u, v, wrap_widths)
        if prev is not None and cur != prev:
            turns += 1
        prev = cur
    return turns


def count_turns_multiround(paths: Sequence[Sequence[Node]]) -> int:
    """Turns of a k-round route given one path per round.

    The message is pipelined through all rounds (Section 1), so a
    direction change across a round boundary counts as a turn of the
    single physical route.
    """
    merged: List[Node] = []
    for t, path in enumerate(paths):
        if t == 0:
            merged.extend(path)
        else:
            if tuple(path[0]) != tuple(merged[-1]):
                raise ValueError("round paths are not contiguous")
            merged.extend(path[1:])
    return count_turns(merged)


def max_turns_bound(d: int, k: int) -> int:
    """Worst-case turns of a k-round dimension-ordered route: each
    round changes direction at most ``d - 1`` times within the round
    plus once at each of the ``k - 1`` round boundaries."""
    return k * (d - 1) + (k - 1)
