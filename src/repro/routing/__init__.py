"""Routing substrate: orderings, dimension-ordered routes, reachability."""

from .dor import (
    dor_path,
    dor_segments,
    one_round_reachable,
    path_is_fault_free,
    torus_dor_path,
    torus_one_round_reachable,
)
from .linefaults import LineFaultIndex
from .multiround import (
    FaultGrids,
    find_k_round_route,
    k_round_reachable,
    multi_source_reach_sets,
    reach_set_k_rounds,
    reach_set_one_round,
    reverse_reach_set_one_round,
)
from .ordering import KRoundOrdering, Ordering, ascending, repeated, xy, xyz
from .turns import count_turns, count_turns_multiround, max_turns_bound

__all__ = [
    "Ordering",
    "KRoundOrdering",
    "ascending",
    "repeated",
    "xy",
    "xyz",
    "LineFaultIndex",
    "dor_path",
    "dor_segments",
    "one_round_reachable",
    "path_is_fault_free",
    "torus_dor_path",
    "torus_one_round_reachable",
    "FaultGrids",
    "reach_set_one_round",
    "reverse_reach_set_one_round",
    "reach_set_k_rounds",
    "multi_source_reach_sets",
    "k_round_reachable",
    "find_k_round_route",
    "count_turns",
    "count_turns_multiround",
    "max_turns_bound",
]
