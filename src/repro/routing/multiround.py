"""k-round dimension-ordered reachability and route materialization.

These are the exact, whole-mesh (O(N) per query) reference semantics
for Definition 2.5.2: grid-based frontier propagation computes the set
of nodes ``(k, F, pi)``-reachable from a source, the reverse sets, and
concrete k-round routes with a choice of intermediate-node policy (the
"heuristic" remark after Definition 2.3).

The lamb algorithms never call these on large meshes — they use the
SES/DES machinery whose cost is independent of N — but this module is
the ground truth they are validated against, and it is what the
wormhole simulator uses to materialize routes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.geometry import Node
from .dor import dor_path
from .ordering import KRoundOrdering, Ordering

__all__ = [
    "FaultGrids",
    "reach_set_one_round",
    "reverse_reach_set_one_round",
    "reach_set_k_rounds",
    "multi_source_reach_sets",
    "k_round_reachable",
    "find_k_round_route",
]


class FaultGrids:
    """Dense boolean grids describing a fault set.

    Attributes
    ----------
    good:
        ``widths``-shaped bool array, True at nonfaulty nodes.
    up_cut[j], down_cut[j]:
        Arrays with extent ``n_j - 1`` along axis ``j``;
        ``up_cut[j][..., i, ...]`` is True when the directed link from
        coordinate ``i`` to ``i + 1`` along dimension ``j`` is faulty
        (and symmetrically for ``down_cut``).  Links incident to faulty
        nodes are *not* marked here; the propagation kernel already
        refuses to enter faulty nodes.
    """

    __slots__ = ("mesh", "good", "up_cut", "down_cut")

    def __init__(self, faults: FaultSet) -> None:
        mesh = faults.mesh
        self.mesh = mesh
        good = np.ones(mesh.widths, dtype=bool)
        for v in faults.node_faults:
            good[v] = False
        self.good = good
        d = mesh.d
        self.up_cut: List[np.ndarray] = []
        self.down_cut: List[np.ndarray] = []
        for j in range(d):
            shape = list(mesh.widths)
            shape[j] -= 1
            self.up_cut.append(np.zeros(shape, dtype=bool))
            self.down_cut.append(np.zeros(shape, dtype=bool))
        for (u, w) in faults.link_faults:
            self._cut_link(u, w)

    def _cut_link(self, u: Node, w: Node) -> None:
        d = self.mesh.d
        j = next(i for i in range(d) if u[i] != w[i])
        if w[j] == u[j] + 1:
            self.up_cut[j][u] = True
        else:
            idx = list(w)
            self.down_cut[j][tuple(idx)] = True

    def clone(self) -> "FaultGrids":
        """An independent copy (array-level).

        The incremental-recompile path of the control plane clones the
        current epoch's grids and applies a fault delta via
        :meth:`add_faults` instead of rebuilding from the cumulative
        :class:`~repro.mesh.faults.FaultSet` — the same O(delta) trick
        the live-fault simulator uses, without mutating the published
        epoch's state.
        """
        other = object.__new__(FaultGrids)
        other.mesh = self.mesh
        other.good = self.good.copy()
        other.up_cut = [a.copy() for a in self.up_cut]
        other.down_cut = [a.copy() for a in self.down_cut]
        return other

    def add_faults(
        self,
        node_faults: Sequence[Node] = (),
        link_faults: Sequence[Tuple[Node, Node]] = (),
    ) -> None:
        """Incrementally mark additional faults in place.

        Used by the live-fault simulator: a chaos epoch only touches a
        handful of cells, so mutating the dense grids is much cheaper
        than reconstructing them from the cumulative
        :class:`~repro.mesh.faults.FaultSet` every event.
        """
        for v in node_faults:
            self.good[tuple(v)] = False
        for (u, w) in link_faults:
            self._cut_link(tuple(u), tuple(w))


def _propagate_axis(
    frontier: np.ndarray, grids: FaultGrids, axis: int
) -> np.ndarray:
    """Extend a frontier along one axis in both directions.

    Returns the set of nodes reachable by an axis-``axis`` segment
    (possibly of length zero) starting from a frontier node, passing
    only through good nodes and non-cut links.
    """
    good = np.moveaxis(grids.good, axis, 0)
    up_cut = np.moveaxis(grids.up_cut[axis], axis, 0)
    down_cut = np.moveaxis(grids.down_cut[axis], axis, 0)
    src = np.moveaxis(frontier, axis, 0)
    n = src.shape[0]
    up = src.copy()
    for i in range(1, n):
        up[i] |= up[i - 1] & good[i] & ~up_cut[i - 1]
    down = src.copy()
    for i in range(n - 2, -1, -1):
        down[i] |= down[i + 1] & good[i] & ~down_cut[i]
    return np.moveaxis(up | down, 0, axis)


def reach_set_one_round(
    grids: FaultGrids, pi: Ordering, start: np.ndarray
) -> np.ndarray:
    """All nodes one ``pi``-round reachable from any node in ``start``.

    ``start`` is a boolean grid that must only mark good nodes.
    """
    frontier = start & grids.good
    for j in pi:
        frontier = _propagate_axis(frontier, grids, j)
    return frontier


_FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)


def _word_mask(grid: np.ndarray) -> np.ndarray:
    """uint64 lane mask of a bool grid (all-ones where True), with a
    trailing broadcast axis for the source-word lanes."""
    return np.where(grid, _FULL_WORD, np.uint64(0))[..., None]


def _propagate_axis_words(
    frontier: np.ndarray,
    good_m: np.ndarray,
    up_cut_m: np.ndarray,
    down_cut_m: np.ndarray,
    axis: int,
) -> np.ndarray:
    """Word-lane variant of :func:`_propagate_axis`: ``frontier`` has a
    trailing uint64 axis carrying 64 sources per word, so one axis scan
    advances every source at once."""
    good = np.moveaxis(good_m, axis, 0)
    up_cut = np.moveaxis(up_cut_m, axis, 0)
    down_cut = np.moveaxis(down_cut_m, axis, 0)
    src = np.moveaxis(frontier, axis, 0)
    n = src.shape[0]
    up = src.copy()
    for i in range(1, n):
        up[i] |= up[i - 1] & good[i] & ~up_cut[i - 1]
    down = src.copy()
    for i in range(n - 2, -1, -1):
        down[i] |= down[i + 1] & good[i] & ~down_cut[i]
    return np.moveaxis(up | down, 0, axis)


def multi_source_reach_sets(
    grids: FaultGrids,
    rounds: Iterable[Ordering],
    sources: Sequence[Node],
) -> np.ndarray:
    """Reach sets of many sources at once, bit-parallel.

    Packs the sources into uint64 word lanes (64 per word) and runs
    each axis scan once per word batch instead of once per source: bit
    ``s % 64`` of word ``s // 64`` at node ``w`` marks source ``s``
    having reached ``w``.  ``rounds`` is any sequence of per-round
    orderings (a :class:`KRoundOrdering` iterates as one).

    Returns an ``(len(sources), N)`` bool matrix in ``Mesh.index_of``
    column order; row ``s`` is bit-identical to
    ``reach_set_k_rounds(grids, rounds, sources[s]).reshape(-1)``
    (the sequential oracle), with faulty sources yielding all-False
    rows.
    """
    mesh = grids.mesh
    n = len(sources)
    N = mesh.num_nodes
    if n == 0:
        return np.zeros((0, N), dtype=bool)
    n_words = (n + 63) // 64
    frontier = np.zeros(mesh.widths + (n_words,), dtype=np.uint64)
    for s, v in enumerate(sources):
        v = tuple(int(x) for x in v)
        if grids.good[v]:
            frontier[v + (s // 64,)] |= np.uint64(1) << np.uint64(s % 64)
    good_m = _word_mask(grids.good)
    up_m = [_word_mask(g) for g in grids.up_cut]
    down_m = [_word_mask(g) for g in grids.down_cut]
    for pi in rounds:
        for j in pi:
            frontier = _propagate_axis_words(
                frontier, good_m, up_m[j], down_m[j], j
            )
    flat = frontier.reshape(N, n_words)
    bits = np.unpackbits(
        flat.view(np.uint8), axis=1, count=n, bitorder="little"
    )
    return bits.astype(bool).T


def _flipped(grids: FaultGrids) -> FaultGrids:
    """Grids with every directed link reversed (shares node data)."""
    out = FaultGrids.__new__(FaultGrids)
    out.mesh = grids.mesh
    out.good = grids.good
    out.up_cut = grids.down_cut
    out.down_cut = grids.up_cut
    return out


def reverse_reach_set_one_round(
    grids: FaultGrids, pi: Ordering, target: np.ndarray
) -> np.ndarray:
    """All nodes ``u`` that can one-``pi``-round reach some node in
    ``target``.

    Uses the reversal identity: ``u`` can ``pi``-reach ``w`` iff ``w``
    can reach ``u`` under the reversed ordering with all directed links
    flipped.
    """
    return reach_set_one_round(_flipped(grids), pi.reversed(), target)


def reach_set_k_rounds(
    grids: FaultGrids, orderings: KRoundOrdering, source: Sequence[int]
) -> np.ndarray:
    """The set of nodes ``(k, F, pi_vec)``-reachable from ``source``."""
    mesh = grids.mesh
    start = np.zeros(mesh.widths, dtype=bool)
    start[tuple(source)] = True
    frontier = start
    for pi in orderings:
        frontier = reach_set_one_round(grids, pi, frontier)
    return frontier


def k_round_reachable(
    grids: FaultGrids,
    orderings: KRoundOrdering,
    v: Sequence[int],
    w: Sequence[int],
) -> bool:
    """Exact Definition 2.5.2 test (O(k N) time)."""
    return bool(reach_set_k_rounds(grids, orderings, v)[tuple(w)])


def find_k_round_route(
    grids: FaultGrids,
    orderings: KRoundOrdering,
    v: Sequence[int],
    w: Sequence[int],
    policy: str = "shortest",
    rng: Optional[np.random.Generator] = None,
) -> Optional[List[List[Node]]]:
    """Materialize a concrete k-round route from ``v`` to ``w``.

    Returns one node path per round (round ``t``'s path starts where
    round ``t-1``'s ended), or ``None`` if ``w`` is not
    ``(k, F, pi_vec)``-reachable from ``v``.

    ``policy`` selects the intermediate nodes (the congestion heuristic
    discussed after Definition 2.3):

    - ``"shortest"``: minimize the total route length (sum of per-round
      L1 hops), breaking ties uniformly at random (needs ``rng``) —
      the paper's suggested heuristic;
    - ``"first"``: lexicographically smallest intermediates
      (deterministic);
    - ``"random"``: uniform choice among feasible intermediates.
    """
    mesh = grids.mesh
    v = tuple(int(x) for x in v)
    w = tuple(int(x) for x in w)
    k = orderings.k
    # Forward sets F_t = nodes reachable from v in t rounds.
    start = np.zeros(mesh.widths, dtype=bool)
    if not grids.good[v] or not grids.good[w]:
        return None
    start[v] = True
    fwd: List[np.ndarray] = [start]
    for t in range(1, k + 1):
        fwd.append(reach_set_one_round(grids, orderings[t - 1], fwd[t - 1]))
    if not fwd[k][w]:
        return None
    # Backward sets B_t = nodes that can reach w in the remaining rounds.
    target = np.zeros(mesh.widths, dtype=bool)
    target[w] = True
    bwd: List[np.ndarray] = [target]
    for t in range(k - 1, -1, -1):
        bwd.append(reverse_reach_set_one_round(grids, orderings[t], bwd[-1]))
    bwd.reverse()

    if rng is None:
        rng = np.random.default_rng(0)

    def choose(candidates: np.ndarray, prev: Node, goal: Node) -> Node:
        coords = np.argwhere(candidates)
        if policy == "first":
            order = np.lexsort(coords.T[::-1])
            return tuple(int(x) for x in coords[order[0]])
        if policy == "random":
            return tuple(int(x) for x in coords[rng.integers(len(coords))])
        if policy == "shortest":
            # The goal itself, when feasible, is always a minimum-cost
            # intermediate (triangle equality) and collapses the
            # remaining rounds to no-ops — prefer it outright.
            if candidates[goal]:
                return goal
            prev_arr = np.asarray(prev)
            goal_arr = np.asarray(goal)
            cost = np.abs(coords - prev_arr).sum(axis=1) + np.abs(
                coords - goal_arr
            ).sum(axis=1)
            best = np.flatnonzero(cost == cost.min())
            pick = best[rng.integers(len(best))]
            return tuple(int(x) for x in coords[pick])
        raise ValueError(f"unknown policy {policy!r}")

    paths: List[List[Node]] = []
    cur = v
    for t in range(k):
        if t == k - 1:
            nxt = w
        else:
            # Feasible intermediates after round t+1: one round from cur,
            # and able to finish within the remaining rounds.
            here = np.zeros(mesh.widths, dtype=bool)
            here[cur] = True
            feasible = reach_set_one_round(grids, orderings[t], here) & bwd[t + 1]
            if not feasible.any():  # pragma: no cover - fwd/bwd guarantee nonempty
                return None
            nxt = choose(feasible, cur, w)
        paths.append(dor_path(mesh, orderings[t], cur, nxt))
        cur = nxt
    return paths
