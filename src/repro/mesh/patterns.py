"""Structured fault patterns beyond uniform random (extension).

Section 8 uses uniformly random node faults.  Real machines fail in
clumps: a power/cooling event takes out a contiguous blob, a midplane
loss takes out (part of) a plane.  These generators produce such
patterns so the experiments can compare lamb costs across fault
*geometries* at equal fault counts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from .faults import FaultSet
from .geometry import Mesh, Node

__all__ = [
    "random_walk_cluster",
    "clustered_faults",
    "partial_plane_faults",
    "dust_and_clusters",
]


def random_walk_cluster(
    mesh: Mesh,
    size: int,
    rng: np.random.Generator,
    start: Optional[Node] = None,
    avoid: Sequence[Node] = (),
) -> List[Node]:
    """A connected cluster of ``size`` nodes grown by random accretion.

    Starting from ``start`` (random if omitted), repeatedly adds a
    uniformly chosen good neighbor of the current cluster — the
    Eden-growth model of a spreading failure.
    """
    if size < 1:
        raise ValueError("size must be positive")
    avoid_set: Set[Node] = {tuple(v) for v in avoid}
    if start is None:
        start = mesh.random_nodes(1, rng, exclude=avoid_set)[0]
    start = tuple(int(x) for x in start)
    if start in avoid_set:
        raise ValueError("start node is excluded")
    cluster: Set[Node] = {start}
    frontier: Set[Node] = {
        w for w in mesh.neighbors(start) if w not in avoid_set
    }
    while len(cluster) < size:
        if not frontier:
            raise ValueError(
                f"cluster cannot grow to {size} nodes from {start}"
            )
        frontier_list = sorted(frontier)
        pick = frontier_list[int(rng.integers(len(frontier_list)))]
        cluster.add(pick)
        frontier.discard(pick)
        for w in mesh.neighbors(pick):
            if w not in cluster and w not in avoid_set:
                frontier.add(w)
    return sorted(cluster)


def clustered_faults(
    mesh: Mesh,
    total: int,
    cluster_size: int,
    rng: np.random.Generator,
) -> FaultSet:
    """``total`` node faults grown as clusters of ``cluster_size``
    (the last cluster may be smaller)."""
    if total < 0 or cluster_size < 1:
        raise ValueError("bad total/cluster_size")
    faults: List[Node] = []
    while len(faults) < total:
        size = min(cluster_size, total - len(faults))
        cluster = random_walk_cluster(mesh, size, rng, avoid=faults)
        faults.extend(cluster)
    return FaultSet(mesh, faults)


def partial_plane_faults(
    mesh: Mesh,
    dim: int,
    index: int,
    fraction: float,
    rng: np.random.Generator,
) -> FaultSet:
    """A fraction of the hyperplane ``coordinate[dim] == index`` fails
    (the midplane-loss scenario on 3D machines)."""
    if not 0 <= dim < mesh.d:
        raise ValueError("bad dimension")
    if not 0 <= index < mesh.widths[dim]:
        raise ValueError("bad plane index")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    plane = [v for v in mesh.nodes() if v[dim] == index]
    count = int(round(fraction * len(plane)))
    if count == 0:
        return FaultSet(mesh)
    picks = rng.choice(len(plane), size=count, replace=False)
    return FaultSet(mesh, [plane[int(i)] for i in picks])


def dust_and_clusters(
    mesh: Mesh,
    dust: int,
    clusters: int,
    cluster_size: int,
    rng: np.random.Generator,
) -> FaultSet:
    """A realistic mix: ``dust`` isolated random faults plus
    ``clusters`` Eden clusters of ``cluster_size``."""
    faults: List[Node] = []
    for _ in range(clusters):
        faults.extend(
            random_walk_cluster(mesh, cluster_size, rng, avoid=faults)
        )
    if dust:
        faults.extend(mesh.random_nodes(dust, rng, exclude=faults))
    return FaultSet(mesh, faults)
