"""Torus topology (Section 7 extension).

A d-dimensional torus is a mesh plus "wrap-around" links between
``(..., n_j - 1, ...)`` and ``(..., 0, ...)`` in every dimension.  The
lamb machinery generalizes to tori: a one-round dimension-ordered route
on a torus may traverse each ring in either direction; this library
uses the *minimal* direction (ties broken toward increasing
coordinates), which is the standard deterministic convention for
dimension-ordered torus routing.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .geometry import Mesh, Node

__all__ = ["Torus"]


class Torus(Mesh):
    """The d-dimensional torus with the given widths."""

    __slots__ = ()

    @property
    def is_torus(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Torus{self.widths}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Torus) and self.widths == other.widths

    def __hash__(self) -> int:
        return hash(("Torus", self.widths))

    def neighbors(self, node: Sequence[int]) -> Iterator[Node]:
        node = tuple(node)
        if not self.contains(node):
            raise ValueError(f"{node} is not a node of {self}")
        for j in range(self.d):
            nj = self.widths[j]
            for delta in (-1, 1):
                w = (node[j] + delta) % nj
                neighbor = node[:j] + (w,) + node[j + 1 :]
                if neighbor != node:  # nj == 2 would self-loop twice
                    yield neighbor

    def num_links(self) -> int:
        total = 0
        for j, nj in enumerate(self.widths):
            per_line = 2 * nj if nj > 2 else 2  # nj == 2: one physical link
            total += per_line * (self.num_nodes // nj)
        return total

    def ring_step(self, j: int, a: int, b: int) -> int:
        """Direction (+1/-1) a minimal dimension-``j`` ring route takes
        from coordinate ``a`` toward ``b`` (0 if ``a == b``).

        Ties (exactly half-way around an even ring) break toward +1.
        """
        nj = self.widths[j]
        if a == b:
            return 0
        forward = (b - a) % nj
        backward = (a - b) % nj
        return 1 if forward <= backward else -1
