"""Mesh topology model.

This module defines :class:`Mesh`, the d-dimensional mesh
``M_d(n_1, ..., n_d)`` from Definition 2.1 of the paper, together with
coordinate arithmetic, link enumeration and index/coordinate
conversion helpers used throughout the library.

Nodes are represented as tuples of ``int`` in user-facing APIs and as
rows of ``numpy`` integer arrays in the vectorized kernels.  A *link*
is an ordered pair of adjacent nodes ``(u, v)``; the mesh has two
directed links per physical channel, which lets a link fail in only
one direction (footnote 1 of the paper).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

Node = Tuple[int, ...]
Link = Tuple[Node, Node]

__all__ = ["Mesh", "Node", "Link"]


class Mesh:
    """The d-dimensional mesh ``M_d(n_1, ..., n_d)``.

    Parameters
    ----------
    widths:
        Sequence of per-dimension widths ``n_1, ..., n_d``; every width
        must be at least 2 (Definition 2.1).

    Examples
    --------
    >>> m = Mesh((12, 12))
    >>> m.d, m.num_nodes
    (2, 144)
    >>> m.contains((11, 0))
    True
    >>> m.contains((12, 0))
    False
    """

    __slots__ = ("widths", "d", "num_nodes", "_strides")

    def __init__(self, widths: Sequence[int]):
        widths = tuple(int(n) for n in widths)
        if len(widths) < 1:
            raise ValueError("a mesh needs at least one dimension")
        if any(n < 2 for n in widths):
            raise ValueError(f"every width must be >= 2, got {widths}")
        self.widths: Tuple[int, ...] = widths
        self.d: int = len(widths)
        n = 1
        for w in widths:
            n *= w
        self.num_nodes: int = n
        # Row-major strides: index(v) = sum_i v_i * stride_i, with the
        # first coordinate varying slowest (C order over coordinates).
        strides = [1] * self.d
        for i in range(self.d - 2, -1, -1):
            strides[i] = strides[i + 1] * widths[i + 1]
        self._strides: Tuple[int, ...] = tuple(strides)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def square(cls, d: int, n: int) -> "Mesh":
        """The mesh ``M_d(n)`` with all widths equal to ``n``."""
        return cls((n,) * d)

    @classmethod
    def hypercube(cls, d: int) -> "Mesh":
        """The d-dimensional binary hypercube ``M_d(2)`` (Section 7)."""
        return cls((2,) * d)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mesh{self.widths}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Mesh) and self.widths == other.widths

    def __hash__(self) -> int:
        return hash(("Mesh", self.widths))

    @property
    def is_torus(self) -> bool:
        """Whether wrap-around links exist.  Overridden by Torus."""
        return False

    @property
    def bisection_width(self) -> int:
        """Node bisection width used in Section 8.

        For ``M_d(n)`` the paper takes the bisection width to be
        ``n**(d-1)``; for non-square meshes we generalize to the
        product of all widths except the largest (the size of the
        smallest axis-aligned cut).
        """
        widths = sorted(self.widths)
        out = 1
        for w in widths[:-1]:
            out *= w
        return out

    # ------------------------------------------------------------------
    # Membership, iteration
    # ------------------------------------------------------------------
    def contains(self, node: Sequence[int]) -> bool:
        """Whether ``node`` is a node of this mesh."""
        if len(node) != self.d:
            return False
        return all(0 <= v < n for v, n in zip(node, self.widths))

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in index order.

        Intended for small meshes (tests, examples); large-mesh code
        paths never materialize the node set.
        """
        return itertools.product(*(range(n) for n in self.widths))

    def links(self) -> Iterator[Link]:
        """Iterate over all directed links ``<u, v>``."""
        for u in self.nodes():
            for v in self.neighbors(u):
                yield (u, v)

    def num_links(self) -> int:
        """Total number of directed links."""
        total = 0
        for j, nj in enumerate(self.widths):
            per_line = 2 * (nj - 1)
            total += per_line * (self.num_nodes // nj)
        return total

    def neighbors(self, node: Sequence[int]) -> Iterator[Node]:
        """Iterate over the mesh neighbors of ``node``."""
        node = tuple(node)
        if not self.contains(node):
            raise ValueError(f"{node} is not a node of {self}")
        for j in range(self.d):
            for delta in (-1, 1):
                w = node[j] + delta
                if 0 <= w < self.widths[j]:
                    yield node[:j] + (w,) + node[j + 1 :]

    def degree(self, node: Sequence[int]) -> int:
        """Number of neighbors of ``node``."""
        return sum(1 for _ in self.neighbors(node))

    # ------------------------------------------------------------------
    # Index <-> coordinate conversion
    # ------------------------------------------------------------------
    def index_of(self, node: Sequence[int]) -> int:
        """Row-major linear index of a node."""
        if not self.contains(tuple(node)):
            raise ValueError(f"{tuple(node)} is not a node of {self}")
        return sum(v * s for v, s in zip(node, self._strides))

    def node_at(self, index: int) -> Node:
        """Inverse of :meth:`index_of`."""
        if not 0 <= index < self.num_nodes:
            raise ValueError(f"index {index} out of range")
        out = []
        for s, n in zip(self._strides, self.widths):
            out.append((index // s) % n)
        return tuple(out)

    def indices_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index_of` for an ``(m, d)`` array."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.ndim != 2 or nodes.shape[1] != self.d:
            raise ValueError(f"expected an (m, {self.d}) array")
        return nodes @ np.asarray(self._strides, dtype=np.int64)

    def nodes_at(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_at`; returns an ``(m, d)`` array."""
        idx = np.asarray(indices, dtype=np.int64)
        out = np.empty((idx.shape[0], self.d), dtype=np.int64)
        for j, (s, n) in enumerate(zip(self._strides, self.widths)):
            out[:, j] = (idx // s) % n
        return out

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def l1_distance(self, u: Sequence[int], v: Sequence[int]) -> int:
        """L1 (Manhattan) distance between two nodes."""
        return sum(abs(a - b) for a, b in zip(u, v))

    def are_adjacent(self, u: Sequence[int], v: Sequence[int]) -> bool:
        """Whether ``<u, v>`` is a link of the mesh."""
        return (
            self.contains(tuple(u))
            and self.contains(tuple(v))
            and self.l1_distance(u, v) == 1
        )

    # ------------------------------------------------------------------
    # Random nodes
    # ------------------------------------------------------------------
    def random_nodes(
        self, count: int, rng: np.random.Generator, exclude: Iterable[Node] = ()
    ) -> List[Node]:
        """Sample ``count`` distinct nodes uniformly at random.

        ``exclude`` removes candidates before sampling (used, e.g., to
        sample sources/destinations that avoid faults and lambs).
        """
        excluded = {self.index_of(v) for v in exclude}
        available = self.num_nodes - len(excluded)
        if count > available:
            raise ValueError(
                f"cannot sample {count} distinct nodes from {available} available"
            )
        if not excluded:
            idx = rng.choice(self.num_nodes, size=count, replace=False)
            return [self.node_at(int(i)) for i in idx]
        # Rejection-free: sample from the complement.
        pool = np.setdiff1d(
            np.arange(self.num_nodes, dtype=np.int64),
            np.fromiter(excluded, dtype=np.int64, count=len(excluded)),
            assume_unique=False,
        )
        idx = rng.choice(pool, size=count, replace=False)
        return [self.node_at(int(i)) for i in idx]
