"""Mesh topology substrate: meshes, tori, fault sets, rectangles."""

from .faults import (
    FaultSet,
    cross_block,
    l_shaped_block,
    random_link_faults,
    random_node_faults,
    rectangular_block,
    t_shaped_block,
)
from .geometry import Link, Mesh, Node
from .hypercube import (
    address_to_node,
    ecube_route_addresses,
    gray_code_ring,
    hamming_distance,
    node_to_address,
)
from .patterns import (
    clustered_faults,
    dust_and_clusters,
    partial_plane_faults,
    random_walk_cluster,
)
from .serialization import (
    dumps,
    faults_from_dict,
    faults_to_dict,
    lamb_outcome_from_dict,
    lamb_outcome_to_dict,
    loads,
    mesh_from_dict,
    mesh_to_dict,
)
from .regions import (
    Rect,
    rect_intersection_matrix,
    rects_are_disjoint,
    rects_total_size,
)
from .torus import Torus

__all__ = [
    "Mesh",
    "Torus",
    "Node",
    "Link",
    "FaultSet",
    "Rect",
    "random_node_faults",
    "random_link_faults",
    "rectangular_block",
    "cross_block",
    "l_shaped_block",
    "t_shaped_block",
    "rect_intersection_matrix",
    "rects_total_size",
    "rects_are_disjoint",
    "node_to_address",
    "address_to_node",
    "hamming_distance",
    "ecube_route_addresses",
    "gray_code_ring",
    "random_walk_cluster",
    "clustered_faults",
    "partial_plane_faults",
    "dust_and_clusters",
    "mesh_to_dict",
    "mesh_from_dict",
    "faults_to_dict",
    "faults_from_dict",
    "lamb_outcome_to_dict",
    "lamb_outcome_from_dict",
    "dumps",
    "loads",
]
