"""JSON serialization of machine state.

The roll-back/reconfigure story (Section 1) implies persistence: the
diagnostic layer records the fault set, and the reconfiguration step's
output (the lamb set) must reach every router.  This module defines a
small, versioned JSON format for meshes, tori, fault sets, and
reconfiguration outcomes, with strict validation on load.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .faults import FaultSet
from .geometry import Mesh
from .torus import Torus

__all__ = [
    "mesh_to_dict",
    "mesh_from_dict",
    "faults_to_dict",
    "faults_from_dict",
    "lamb_outcome_to_dict",
    "lamb_outcome_from_dict",
    "routing_table_to_dict",
    "routing_table_from_dict",
    "dumps",
    "loads",
]

_FORMAT_VERSION = 1


def mesh_to_dict(mesh: Mesh) -> Dict[str, Any]:
    """Serialize a mesh or torus."""
    return {
        "type": "torus" if mesh.is_torus else "mesh",
        "widths": list(mesh.widths),
    }


def mesh_from_dict(data: Dict[str, Any]) -> Mesh:
    """Inverse of :func:`mesh_to_dict`."""
    kind = data.get("type")
    widths = data.get("widths")
    if kind not in ("mesh", "torus") or not isinstance(widths, list):
        raise ValueError(f"not a mesh record: {data!r}")
    cls = Torus if kind == "torus" else Mesh
    return cls(tuple(int(w) for w in widths))


def faults_to_dict(faults: FaultSet) -> Dict[str, Any]:
    """Serialize a fault set (mesh included)."""
    return {
        "version": _FORMAT_VERSION,
        "mesh": mesh_to_dict(faults.mesh),
        "node_faults": [list(v) for v in faults.node_faults],
        "link_faults": [
            [list(u), list(w)] for (u, w) in faults.link_faults
        ],
    }


def faults_from_dict(data: Dict[str, Any]) -> FaultSet:
    """Inverse of :func:`faults_to_dict`; validates every fault."""
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")
    mesh = mesh_from_dict(data["mesh"])
    nodes = [tuple(int(x) for x in v) for v in data.get("node_faults", [])]
    links = [
        (tuple(int(x) for x in u), tuple(int(x) for x in w))
        for (u, w) in data.get("link_faults", [])
    ]
    return FaultSet(mesh, nodes, links)


def lamb_outcome_to_dict(result) -> Dict[str, Any]:
    """Serialize a reconfiguration outcome: the fault set, the
    k-round ordering, and the lamb set.

    (A deliberately lean record — partitions and matrices are cheap to
    recompute and huge to store.)
    """
    return {
        "version": _FORMAT_VERSION,
        "faults": faults_to_dict(result.faults),
        "orderings": [list(pi.perm) for pi in result.orderings],
        "method": result.method,
        "lambs": sorted(list(v) for v in result.lambs),
        "cover_weight": result.cover_weight,
    }


def lamb_outcome_from_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`lamb_outcome_to_dict`.

    Returns a dict with ``faults`` (:class:`FaultSet`), ``orderings``
    (:class:`KRoundOrdering`), ``method``, ``lambs`` (set of nodes) and
    ``cover_weight`` — everything needed to re-validate or re-run.
    """
    from ..routing.ordering import KRoundOrdering, Ordering

    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")
    faults = faults_from_dict(data["faults"])
    orderings = KRoundOrdering(
        [Ordering(tuple(int(x) for x in perm)) for perm in data["orderings"]]
    )
    lambs = {tuple(int(x) for x in v) for v in data["lambs"]}
    for v in sorted(lambs):
        if not faults.mesh.contains(v):
            raise ValueError(f"lamb {v} outside the mesh")
        if faults.node_is_faulty(v):
            raise ValueError(f"lamb {v} is faulty")
    return {
        "faults": faults,
        "orderings": orderings,
        "method": str(data.get("method", "bipartite")),
        "lambs": lambs,
        "cover_weight": float(data.get("cover_weight", 0.0)),
    }


def routing_table_to_dict(table) -> Dict[str, Any]:
    """Serialize a :class:`repro.core.RoutingTable` and its resolved
    entries — the one reconfiguration artifact that previously had no
    serialized form.

    Like :func:`lamb_outcome_to_dict` the record is lean: the embedded
    outcome carries faults/orderings/lambs (partitions and reachability
    matrices are recomputable), and ``entries`` lists every route
    resolved so far, sorted by ``(source, dest)`` for a canonical,
    diff-stable encoding.
    """
    return {
        "version": _FORMAT_VERSION,
        "outcome": lamb_outcome_to_dict(table.result),
        "policy": table.policy,
        "entries": [
            {
                "source": list(e.source),
                "dest": list(e.dest),
                "intermediates": [list(v) for v in e.intermediates],
                "rounds_used": e.rounds_used,
                "hops": e.hops,
                "turns": e.turns,
            }
            for e in sorted(
                table.entries(), key=lambda e: (e.source, e.dest)
            )
        ],
    }


def routing_table_from_dict(data: Dict[str, Any], result=None):
    """Inverse of :func:`routing_table_to_dict`.

    ``result`` may supply the live :class:`~repro.core.LambResult` the
    table belongs to; when omitted, a lean result is reconstructed from
    the embedded outcome record (faults, orderings, lambs — partitions
    and reachability matrices come back empty, exactly as documented
    for :func:`lamb_outcome_to_dict`).  Every stored entry is validated
    against the survivor set on load; entries whose endpoints are not
    survivors make the record invalid (``ValueError``).
    """
    from ..core.routing_table import RouteEntry, RoutingTable

    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")
    outcome = lamb_outcome_from_dict(data["outcome"])
    if result is None:
        result = _lean_lamb_result(outcome)
    else:
        if result.faults != outcome["faults"]:
            raise ValueError("routing-table record belongs to another fault set")
        if result.orderings != outcome["orderings"]:
            raise ValueError("routing-table record belongs to another ordering")
        if set(result.lambs) != outcome["lambs"]:
            raise ValueError("routing-table record belongs to another lamb set")
    table = RoutingTable(result, policy=str(data.get("policy", "shortest")))
    entries = []
    for rec in data.get("entries", []):
        entries.append(
            RouteEntry(
                source=tuple(int(x) for x in rec["source"]),
                dest=tuple(int(x) for x in rec["dest"]),
                intermediates=tuple(
                    tuple(int(x) for x in v) for v in rec["intermediates"]
                ),
                rounds_used=int(rec["rounds_used"]),
                hops=int(rec["hops"]),
                turns=int(rec["turns"]),
            )
        )
    table.preload(entries)
    return table


def _lean_lamb_result(outcome: Dict[str, Any]):
    """A :class:`~repro.core.LambResult` rebuilt from a serialized
    outcome: routable (mesh/faults/orderings/lambs/survivor tests all
    work) but with empty partitions and reachability matrices."""
    import numpy as np

    from ..core.lamb import LambResult
    from ..core.reachability import ReachabilityData

    faults = outcome["faults"]
    return LambResult(
        mesh=faults.mesh,
        faults=faults,
        orderings=outcome["orderings"],
        method=outcome["method"],
        lambs=frozenset(outcome["lambs"]),
        chosen_ses=(),
        chosen_des=(),
        ses_partition=[],
        des_partition=[],
        reach=ReachabilityData(
            Rk=np.zeros((0, 0), dtype=bool),
            round_matrices=[],
            intersection_matrices=[],
            partial=[],
        ),
        cover_weight=float(outcome["cover_weight"]),
    )


def dumps(record: Dict[str, Any]) -> str:
    """JSON-encode any record produced by this module."""
    return json.dumps(record, sort_keys=True, indent=2)


def loads(text: str) -> Dict[str, Any]:
    """Parse JSON text back into a record dict."""
    return json.loads(text)
