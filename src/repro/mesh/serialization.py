"""JSON serialization of machine state.

The roll-back/reconfigure story (Section 1) implies persistence: the
diagnostic layer records the fault set, and the reconfiguration step's
output (the lamb set) must reach every router.  This module defines a
small, versioned JSON format for meshes, tori, fault sets, and
reconfiguration outcomes, with strict validation on load.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .faults import FaultSet
from .geometry import Mesh
from .torus import Torus

__all__ = [
    "mesh_to_dict",
    "mesh_from_dict",
    "faults_to_dict",
    "faults_from_dict",
    "lamb_outcome_to_dict",
    "lamb_outcome_from_dict",
    "dumps",
    "loads",
]

_FORMAT_VERSION = 1


def mesh_to_dict(mesh: Mesh) -> Dict[str, Any]:
    """Serialize a mesh or torus."""
    return {
        "type": "torus" if mesh.is_torus else "mesh",
        "widths": list(mesh.widths),
    }


def mesh_from_dict(data: Dict[str, Any]) -> Mesh:
    """Inverse of :func:`mesh_to_dict`."""
    kind = data.get("type")
    widths = data.get("widths")
    if kind not in ("mesh", "torus") or not isinstance(widths, list):
        raise ValueError(f"not a mesh record: {data!r}")
    cls = Torus if kind == "torus" else Mesh
    return cls(tuple(int(w) for w in widths))


def faults_to_dict(faults: FaultSet) -> Dict[str, Any]:
    """Serialize a fault set (mesh included)."""
    return {
        "version": _FORMAT_VERSION,
        "mesh": mesh_to_dict(faults.mesh),
        "node_faults": [list(v) for v in faults.node_faults],
        "link_faults": [
            [list(u), list(w)] for (u, w) in faults.link_faults
        ],
    }


def faults_from_dict(data: Dict[str, Any]) -> FaultSet:
    """Inverse of :func:`faults_to_dict`; validates every fault."""
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")
    mesh = mesh_from_dict(data["mesh"])
    nodes = [tuple(int(x) for x in v) for v in data.get("node_faults", [])]
    links = [
        (tuple(int(x) for x in u), tuple(int(x) for x in w))
        for (u, w) in data.get("link_faults", [])
    ]
    return FaultSet(mesh, nodes, links)


def lamb_outcome_to_dict(result) -> Dict[str, Any]:
    """Serialize a reconfiguration outcome: the fault set, the
    k-round ordering, and the lamb set.

    (A deliberately lean record — partitions and matrices are cheap to
    recompute and huge to store.)
    """
    return {
        "version": _FORMAT_VERSION,
        "faults": faults_to_dict(result.faults),
        "orderings": [list(pi.perm) for pi in result.orderings],
        "method": result.method,
        "lambs": sorted(list(v) for v in result.lambs),
        "cover_weight": result.cover_weight,
    }


def lamb_outcome_from_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`lamb_outcome_to_dict`.

    Returns a dict with ``faults`` (:class:`FaultSet`), ``orderings``
    (:class:`KRoundOrdering`), ``method``, ``lambs`` (set of nodes) and
    ``cover_weight`` — everything needed to re-validate or re-run.
    """
    from ..routing.ordering import KRoundOrdering, Ordering

    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {data.get('version')!r}")
    faults = faults_from_dict(data["faults"])
    orderings = KRoundOrdering(
        [Ordering(tuple(int(x) for x in perm)) for perm in data["orderings"]]
    )
    lambs = {tuple(int(x) for x in v) for v in data["lambs"]}
    for v in sorted(lambs):
        if not faults.mesh.contains(v):
            raise ValueError(f"lamb {v} outside the mesh")
        if faults.node_is_faulty(v):
            raise ValueError(f"lamb {v} is faulty")
    return {
        "faults": faults,
        "orderings": orderings,
        "method": str(data.get("method", "bipartite")),
        "lambs": lambs,
        "cover_weight": float(data.get("cover_weight", 0.0)),
    }


def dumps(record: Dict[str, Any]) -> str:
    """JSON-encode any record produced by this module."""
    return json.dumps(record, sort_keys=True, indent=2)


def loads(text: str) -> Dict[str, Any]:
    """Parse JSON text back into a record dict."""
    return json.loads(text)
