"""Fault sets (Definition 2.4) and fault-pattern generators.

A fault set ``F = (F_N, F_L)`` consists of node faults and *directed*
link faults.  A node fault implicitly disables every incident link; a
link fault ``<u, v>`` disables routing from ``u`` to ``v`` only (the
reverse direction remains usable unless it is also faulty).

Besides uniformly random node/link faults (the model used in the
paper's Section 8 simulations), this module provides the patterned
fault regions used by the fault-ring baselines (rectangular blocks and
the "solid fault" shapes — crosses, L's, T's — of Chalasani & Boppana).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from .geometry import Link, Mesh, Node

__all__ = [
    "FaultSet",
    "random_node_faults",
    "random_link_faults",
    "rectangular_block",
    "cross_block",
    "l_shaped_block",
    "t_shaped_block",
]


class FaultSet:
    """An immutable fault set ``F = (F_N, F_L)`` for a mesh.

    Parameters
    ----------
    mesh:
        The mesh the faults live in.
    node_faults:
        Iterable of faulty nodes.
    link_faults:
        Iterable of faulty *directed* links ``(u, v)``; ``u`` and ``v``
        must be adjacent.  Links incident to faulty nodes may be listed
        but are redundant (they are removed on construction, matching
        the paper's convention that such links "do not appear
        explicitly in F_L").
    """

    __slots__ = (
        "mesh",
        "node_faults",
        "link_faults",
        "_node_index_set",
        "_link_set",
    )

    def __init__(
        self,
        mesh: Mesh,
        node_faults: Iterable[Sequence[int]] = (),
        link_faults: Iterable[Tuple[Sequence[int], Sequence[int]]] = (),
    ):
        self.mesh = mesh
        nodes = []
        seen = set()
        for v in node_faults:
            v = tuple(int(x) for x in v)
            if not mesh.contains(v):
                raise ValueError(f"faulty node {v} not in {mesh}")
            if v not in seen:
                seen.add(v)
                nodes.append(v)
        self.node_faults: Tuple[Node, ...] = tuple(nodes)
        self._node_index_set: FrozenSet[int] = frozenset(
            mesh.index_of(v) for v in nodes
        )
        links = []
        link_seen = set()
        for u, v in link_faults:
            u = tuple(int(x) for x in u)
            v = tuple(int(x) for x in v)
            if not mesh.are_adjacent(u, v) and not (
                mesh.is_torus and v in set(mesh.neighbors(u))
            ):
                raise ValueError(f"<{u}, {v}> is not a link of {mesh}")
            if u in seen or v in seen:
                continue  # implied by a node fault; keep F_L minimal
            if (u, v) not in link_seen:
                link_seen.add((u, v))
                links.append((u, v))
        self.link_faults: Tuple[Link, ...] = tuple(links)
        self._link_set: FrozenSet[Link] = frozenset(links)

    # ------------------------------------------------------------------
    @property
    def f(self) -> int:
        """Total number of faults ``f = |F_N| + |F_L|``."""
        return len(self.node_faults) + len(self.link_faults)

    @property
    def num_node_faults(self) -> int:
        return len(self.node_faults)

    @property
    def num_link_faults(self) -> int:
        return len(self.link_faults)

    def is_empty(self) -> bool:
        return self.f == 0

    def node_is_faulty(self, node: Sequence[int]) -> bool:
        """Whether ``node`` belongs to ``F_N``."""
        return self.mesh.index_of(tuple(node)) in self._node_index_set

    def link_is_faulty(self, u: Sequence[int], v: Sequence[int]) -> bool:
        """Whether routing from ``u`` to ``v`` over the link is blocked.

        True if the directed link is in ``F_L`` or either endpoint is a
        faulty node.
        """
        u = tuple(u)
        v = tuple(v)
        if self.node_is_faulty(u) or self.node_is_faulty(v):
            return True
        return (u, v) in self._link_set

    def good_nodes(self) -> List[Node]:
        """All nonfaulty nodes (small meshes only)."""
        return [v for v in self.mesh.nodes() if not self.node_is_faulty(v)]

    def node_fault_array(self) -> np.ndarray:
        """Faulty nodes as an ``(|F_N|, d)`` int64 array."""
        if not self.node_faults:
            return np.empty((0, self.mesh.d), dtype=np.int64)
        return np.asarray(self.node_faults, dtype=np.int64)

    def node_fault_indices(self) -> FrozenSet[int]:
        """Linear indices of the faulty nodes."""
        return self._node_index_set

    # ------------------------------------------------------------------
    def with_nodes_as_faults(self, extra: Iterable[Sequence[int]]) -> "FaultSet":
        """A new fault set with additional node faults."""
        return FaultSet(
            self.mesh,
            list(self.node_faults) + [tuple(v) for v in extra],
            self.link_faults,
        )

    def with_links_as_faults(
        self, extra: Iterable[Tuple[Sequence[int], Sequence[int]]]
    ) -> "FaultSet":
        """A new fault set with additional *directed* link faults.

        The incremental counterpart of :meth:`with_nodes_as_faults`:
        chaos/reconfiguration epochs grow the fault state one event at
        a time instead of rebuilding it from scratch.  The result is
        ``==`` (and hashes identically) to a :class:`FaultSet` built in
        one shot from the union, because construction canonicalizes
        (dedup, drop links implied by node faults).
        """
        return FaultSet(
            self.mesh,
            self.node_faults,
            list(self.link_faults) + [(tuple(u), tuple(v)) for (u, v) in extra],
        )

    def with_faults(
        self,
        node_faults: Iterable[Sequence[int]] = (),
        link_faults: Iterable[Tuple[Sequence[int], Sequence[int]]] = (),
    ) -> "FaultSet":
        """Incremental union: a new fault set with both extra nodes and
        extra directed links (one constructor pass, so links implied by
        the *new* node faults are also canonicalized away)."""
        return FaultSet(
            self.mesh,
            list(self.node_faults) + [tuple(v) for v in node_faults],
            list(self.link_faults)
            + [(tuple(u), tuple(v)) for (u, v) in link_faults],
        )

    def links_as_node_faults(self) -> "FaultSet":
        """Convert every link fault to a node fault at its source end.

        The simple (but lossy) way to handle link faults discussed in
        Section 2.2.
        """
        extra = [u for (u, v) in self.link_faults]
        return FaultSet(self.mesh, list(self.node_faults) + extra, ())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultSet({self.mesh}, |F_N|={len(self.node_faults)}, "
            f"|F_L|={len(self.link_faults)})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FaultSet)
            and self.mesh == other.mesh
            and set(self.node_faults) == set(other.node_faults)
            and set(self.link_faults) == set(other.link_faults)
        )

    def __hash__(self) -> int:
        return hash(
            (self.mesh, frozenset(self.node_faults), frozenset(self.link_faults))
        )


# ----------------------------------------------------------------------
# Random fault generators (Section 8's fault model)
# ----------------------------------------------------------------------
def random_node_faults(
    mesh: Mesh, count: int, rng: np.random.Generator
) -> FaultSet:
    """``count`` distinct node faults chosen uniformly at random."""
    return FaultSet(mesh, mesh.random_nodes(count, rng))


def random_link_faults(
    mesh: Mesh,
    count: int,
    rng: np.random.Generator,
    bidirectional: bool = False,
) -> FaultSet:
    """Random link faults chosen uniformly without replacement.

    With ``bidirectional=False`` (the default) ``count`` distinct
    *directed* links are drawn, so ``|F_L| = count`` and ``f = count``.

    With ``bidirectional=True`` ``count`` distinct *physical* channels
    are drawn and each fails in both directions; every direction is a
    separate directed fault in ``F_L``, so ``|F_L| = 2 * count`` and
    ``f = 2 * count``.
    """
    all_links: List[Link] = list(mesh.links())
    if bidirectional:
        undirected = sorted({tuple(sorted((u, v))) for u, v in all_links})
        if count > len(undirected):
            raise ValueError("not enough links")
        picks = rng.choice(len(undirected), size=count, replace=False)
        chosen: List[Link] = []
        for i in picks:
            u, v = undirected[int(i)]
            chosen.append((u, v))
            chosen.append((v, u))
        return FaultSet(mesh, (), chosen)
    if count > len(all_links):
        raise ValueError("not enough links")
    picks = rng.choice(len(all_links), size=count, replace=False)
    return FaultSet(mesh, (), [all_links[int(i)] for i in picks])


# ----------------------------------------------------------------------
# Patterned fault regions (baseline comparators)
# ----------------------------------------------------------------------
def rectangular_block(
    mesh: Mesh, corner: Sequence[int], shape: Sequence[int]
) -> List[Node]:
    """Nodes of an axis-aligned rectangular fault block.

    ``corner`` is the minimal corner, ``shape`` the per-dimension
    extents.  Used by the Boppana–Chalasani baseline, whose fault model
    requires rectangular fault regions.
    """
    corner = tuple(int(c) for c in corner)
    shape = tuple(int(s) for s in shape)
    if len(corner) != mesh.d or len(shape) != mesh.d:
        raise ValueError("corner/shape dimensionality mismatch")
    if any(s < 1 for s in shape):
        raise ValueError("shape extents must be >= 1")
    hi = tuple(c + s - 1 for c, s in zip(corner, shape))
    if not mesh.contains(corner) or not mesh.contains(hi):
        raise ValueError("block exceeds mesh bounds")
    import itertools

    return [
        tuple(v)
        for v in itertools.product(
            *(range(c, c + s) for c, s in zip(corner, shape))
        )
    ]


def cross_block(mesh: Mesh, center: Sequence[int], arm: int) -> List[Node]:
    """A 2D '+'-shaped (cross) solid fault centered at ``center``.

    One of the nonconvex "solid fault" shapes of Chalasani & Boppana.
    Only defined for 2D meshes.
    """
    if mesh.d != 2:
        raise ValueError("cross faults are 2D patterns")
    cx, cy = (int(c) for c in center)
    nodes = {(cx, cy)}
    for k in range(1, arm + 1):
        for v in ((cx - k, cy), (cx + k, cy), (cx, cy - k), (cx, cy + k)):
            if mesh.contains(v):
                nodes.add(v)
    return sorted(nodes)


def l_shaped_block(
    mesh: Mesh, corner: Sequence[int], leg1: int, leg2: int
) -> List[Node]:
    """A 2D 'L'-shaped solid fault with legs along +X and +Y."""
    if mesh.d != 2:
        raise ValueError("L faults are 2D patterns")
    cx, cy = (int(c) for c in corner)
    nodes = set()
    for k in range(leg1):
        if mesh.contains((cx + k, cy)):
            nodes.add((cx + k, cy))
    for k in range(leg2):
        if mesh.contains((cx, cy + k)):
            nodes.add((cx, cy + k))
    return sorted(nodes)


def t_shaped_block(
    mesh: Mesh, top_left: Sequence[int], width: int, stem: int
) -> List[Node]:
    """A 2D 'T'-shaped solid fault: a bar of ``width`` plus a stem."""
    if mesh.d != 2:
        raise ValueError("T faults are 2D patterns")
    cx, cy = (int(c) for c in top_left)
    nodes = set()
    for k in range(width):
        if mesh.contains((cx + k, cy)):
            nodes.add((cx + k, cy))
    mid = cx + width // 2
    for k in range(1, stem + 1):
        if mesh.contains((mid, cy + k)):
            nodes.add((mid, cy + k))
    return sorted(nodes)
