"""Hypercube helpers (Section 7: "the algorithms can be applied
directly to d-dimensional hypercubes, that is, meshes M_d(2)").

On ``M_d(2)`` nodes are bit vectors, dimension-ordered routing is the
classic *e-cube* routing (fix address bits in ascending order), and
routes have a clean algebraic form.  These helpers provide the
bit-level view on top of the general mesh machinery and are
cross-checked against it in the tests.
"""

from __future__ import annotations

from typing import List, Sequence

from .geometry import Node

__all__ = [
    "node_to_address",
    "address_to_node",
    "hamming_distance",
    "ecube_route_addresses",
    "gray_code_ring",
]


def node_to_address(node: Sequence[int]) -> int:
    """Pack a hypercube node (a 0/1 tuple) into an integer address;
    coordinate j is bit j."""
    addr = 0
    for j, b in enumerate(node):
        if b not in (0, 1):
            raise ValueError(f"{tuple(node)} is not a hypercube node")
        addr |= int(b) << j
    return addr


def address_to_node(address: int, d: int) -> Node:
    """Inverse of :func:`node_to_address`."""
    if not 0 <= address < (1 << d):
        raise ValueError(f"address {address} out of range for d={d}")
    return tuple((address >> j) & 1 for j in range(d))


def hamming_distance(a: int, b: int) -> int:
    """Bit-level Hamming distance = L1 mesh distance on M_d(2)."""
    return bin(a ^ b).count("1")


def ecube_route_addresses(src: int, dst: int, d: int) -> List[int]:
    """The e-cube route as an address sequence: correct differing bits
    in ascending order — exactly dimension-ordered routing on M_d(2).
    """
    if not (0 <= src < (1 << d) and 0 <= dst < (1 << d)):
        raise ValueError("addresses out of range")
    route = [src]
    cur = src
    diff = src ^ dst
    for j in range(d):
        if diff & (1 << j):
            cur ^= 1 << j
            route.append(cur)
    return route


def gray_code_ring(d: int) -> List[int]:
    """A Hamiltonian ring of the d-cube (reflected Gray code).

    Consecutive addresses differ in one bit, so the ring embeds in the
    hypercube with dilation 1 — the standard way to run ring
    collectives (e.g. :func:`repro.collectives.ring_allgather`) on a
    hypercube machine.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    return [i ^ (i >> 1) for i in range(1 << d)]
