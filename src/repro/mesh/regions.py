"""Rectangular node-set abbreviations (Section 6.1).

The partition algorithms represent SES's and DES's as *rectangles*:
per-coordinate intervals ``[lo_j, hi_j]`` where a full interval
``[0, n_j - 1]`` plays the role of the paper's ``*`` and a degenerate
interval the role of a constant ``c_j``.  A rectangle with ``m``
nodes is stored in O(d) space; the lamb algorithms never materialize
node sets until a lamb set has been chosen (keeping the running time
independent of the mesh size N).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from .geometry import Mesh, Node

__all__ = ["Rect", "rect_intersection_matrix", "rects_total_size", "rects_are_disjoint"]


class Rect:
    """An axis-aligned rectangle of mesh nodes.

    Parameters
    ----------
    mesh:
        The enclosing mesh.
    lo, hi:
        Inclusive per-dimension bounds, ``lo[j] <= hi[j]``.
    """

    __slots__ = ("mesh", "lo", "hi")

    def __init__(self, mesh: Mesh, lo: Sequence[int], hi: Sequence[int]):
        lo = tuple(int(x) for x in lo)
        hi = tuple(int(x) for x in hi)
        if len(lo) != mesh.d or len(hi) != mesh.d:
            raise ValueError("bounds dimensionality mismatch")
        for j, (a, b) in enumerate(zip(lo, hi)):
            if not (0 <= a <= b < mesh.widths[j]):
                raise ValueError(
                    f"invalid interval [{a}, {b}] in dimension {j} of {mesh}"
                )
        self.mesh = mesh
        self.lo: Tuple[int, ...] = lo
        self.hi: Tuple[int, ...] = hi

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, mesh: Mesh, spec: Sequence) -> "Rect":
        """Build from the paper's notation.

        Each coordinate of ``spec`` is ``'*'`` (full range), an ``int``
        (constant), or an ``(lo, hi)`` pair.

        >>> m = Mesh((12, 12))
        >>> r = Rect.from_spec(m, ['*', (2, 5)])
        >>> r.size
        48
        """
        lo, hi = [], []
        for j, s in enumerate(spec):
            if s == "*":
                lo.append(0)
                hi.append(mesh.widths[j] - 1)
            elif isinstance(s, (tuple, list)):
                lo.append(s[0])
                hi.append(s[1])
            else:
                lo.append(int(s))
                hi.append(int(s))
        return cls(mesh, lo, hi)

    @classmethod
    def single(cls, mesh: Mesh, node: Sequence[int]) -> "Rect":
        """The singleton rectangle ``{node}``."""
        return cls(mesh, node, node)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes in the rectangle."""
        out = 1
        for a, b in zip(self.lo, self.hi):
            out *= b - a + 1
        return out

    def contains(self, node: Sequence[int]) -> bool:
        return all(a <= v <= b for v, a, b in zip(node, self.lo, self.hi))

    def min_corner(self) -> Node:
        return self.lo

    def nodes(self) -> Iterator[Node]:
        """Iterate over the nodes (materialization; use sparingly)."""
        return itertools.product(*(range(a, b + 1) for a, b in zip(self.lo, self.hi)))

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share a node."""
        return all(
            max(a1, a2) <= min(b1, b2)
            for a1, b1, a2, b2 in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersection(self, other: "Rect") -> "Rect":
        """The intersection rectangle (raises if empty)."""
        lo = tuple(max(a1, a2) for a1, a2 in zip(self.lo, other.lo))
        hi = tuple(min(b1, b2) for b1, b2 in zip(self.hi, other.hi))
        if any(a > b for a, b in zip(lo, hi)):
            raise ValueError("empty intersection")
        return Rect(self.mesh, lo, hi)

    def intersection_size(self, other: "Rect") -> int:
        """``|self ∩ other|`` (0 if disjoint), without materializing."""
        out = 1
        for a1, b1, a2, b2 in zip(self.lo, self.hi, other.lo, other.hi):
            w = min(b1, b2) - max(a1, a2) + 1
            if w <= 0:
                return 0
            out *= w
        return out

    def spec(self) -> Tuple:
        """Back to the paper's notation (for display)."""
        out: List = []
        for j, (a, b) in enumerate(zip(self.lo, self.hi)):
            if a == 0 and b == self.mesh.widths[j] - 1:
                out.append("*")
            elif a == b:
                out.append(a)
            else:
                out.append((a, b))
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Rect{self.spec()}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rect)
            and self.mesh == other.mesh
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.mesh, self.lo, self.hi))


# ----------------------------------------------------------------------
# Vectorized helpers over collections of rectangles
# ----------------------------------------------------------------------
def _bounds_arrays(rects: Sequence[Rect]) -> Tuple[np.ndarray, np.ndarray]:
    if not rects:
        d = 0
        return np.empty((0, d), np.int64), np.empty((0, d), np.int64)
    lo = np.asarray([r.lo for r in rects], dtype=np.int64)
    hi = np.asarray([r.hi for r in rects], dtype=np.int64)
    return lo, hi


def rect_intersection_matrix(
    rows: Sequence[Rect], cols: Sequence[Rect], chunk: int = 512
) -> np.ndarray:
    """Boolean matrix ``I[i, j] = (rows[i] ∩ cols[j] != ∅)``.

    This is the intersection matrix ``I_t`` of Find-Reachability
    (Fig. 12, step 2), computed by broadcast interval comparisons in
    row chunks to bound peak memory.
    """
    if not rows or not cols:
        return np.zeros((len(rows), len(cols)), dtype=bool)
    rlo, rhi = _bounds_arrays(rows)
    clo, chi = _bounds_arrays(cols)
    out = np.empty((len(rows), len(cols)), dtype=bool)
    for start in range(0, len(rows), chunk):
        end = min(start + chunk, len(rows))
        # (chunk, 1, d) vs (1, q, d)
        lo = np.maximum(rlo[start:end, None, :], clo[None, :, :])
        hi = np.minimum(rhi[start:end, None, :], chi[None, :, :])
        out[start:end] = np.all(lo <= hi, axis=2)
    return out


def rects_total_size(rects: Sequence[Rect]) -> int:
    """Sum of rectangle sizes."""
    return sum(r.size for r in rects)


def rects_are_disjoint(rects: Sequence[Rect]) -> bool:
    """Whether the rectangles are pairwise disjoint (O(m^2 d))."""
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            if rects[i].intersects(rects[j]):
                return False
    return True
