"""repro — fault-tolerant wormhole routing via sacrificial lamb nodes.

A production-grade reproduction of Ho & Stockmeyer, *A New Approach to
Fault-Tolerant Wormhole Routing for Mesh-Connected Parallel Computers*
(IPDPS 2002).

Quickstart
----------
>>> from repro import Mesh, FaultSet, find_lamb_set, repeated, xy
>>> mesh = Mesh((12, 12))
>>> faults = FaultSet(mesh, [(9, 1), (11, 6), (10, 10)])
>>> result = find_lamb_set(faults, repeated(xy(), 2))
>>> sorted(result.lambs)
[(10, 11), (11, 10)]

See :mod:`repro.experiments` for the paper's figure/table
reproductions and :mod:`repro.wormhole` for the flit-level simulator.
"""

from .core import (
    LambResult,
    ReconfigurationManager,
    RoutingTable,
    build_routing_table,
    find_des_partition,
    find_lamb_set,
    find_ses_partition,
    is_lamb_set,
    one_round_expected_lamb_lower_bound,
    partition_size_bound,
    torus_lamb_set,
)
from .mesh import FaultSet, Mesh, Rect, Torus, random_node_faults
from .routing import (
    KRoundOrdering,
    Ordering,
    ascending,
    dor_path,
    find_k_round_route,
    repeated,
    xy,
    xyz,
)

__version__ = "1.0.0"

__all__ = [
    "Mesh",
    "Torus",
    "FaultSet",
    "Rect",
    "random_node_faults",
    "Ordering",
    "KRoundOrdering",
    "ascending",
    "repeated",
    "xy",
    "xyz",
    "dor_path",
    "find_k_round_route",
    "find_lamb_set",
    "LambResult",
    "ReconfigurationManager",
    "RoutingTable",
    "build_routing_table",
    "find_ses_partition",
    "find_des_partition",
    "is_lamb_set",
    "partition_size_bound",
    "one_round_expected_lamb_lower_bound",
    "torus_lamb_set",
    "__version__",
]
