"""Collective communication over the reconfigured machine."""

from .algorithms import (
    binomial_broadcast,
    binomial_gather,
    linear_alltoone,
    recursive_doubling_allgather,
    ring_allgather,
)
from .runner import CollectiveStats, run_collective
from .schedule import Schedule, Transfer

__all__ = [
    "Schedule",
    "Transfer",
    "binomial_broadcast",
    "binomial_gather",
    "recursive_doubling_allgather",
    "ring_allgather",
    "linear_alltoone",
    "run_collective",
    "CollectiveStats",
]
