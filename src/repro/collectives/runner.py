"""Execute collective schedules on the wormhole simulator.

Each phase's transfers become wormhole messages between the
participant nodes; phases are separated by barriers (the next phase
injects only after the previous fully drains).  The result reports the
makespan in cycles and per-phase statistics — enough to compare
algorithms (binomial vs ring vs naive) on a faulty mesh with a lamb
set, which is the machine the paper reconfigures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.lamb import LambResult
from ..mesh.geometry import Node
from ..wormhole.simulator import WormholeSimulator
from .schedule import Schedule

__all__ = ["CollectiveStats", "run_collective"]


@dataclass
class CollectiveStats:
    """Outcome of one collective execution."""

    makespan_cycles: int
    phase_cycles: List[int] = field(default_factory=list)
    total_messages: int = 0
    total_flits: int = 0

    @property
    def num_phases(self) -> int:
        return len(self.phase_cycles)


def run_collective(
    result: LambResult,
    schedule: Schedule,
    participants: Optional[Sequence[Node]] = None,
    buffer_flits: int = 2,
    seed: int = 0,
    max_cycles_per_phase: int = 1_000_000,
) -> CollectiveStats:
    """Run a schedule among survivor participants.

    Parameters
    ----------
    result:
        The reconfiguration outcome (faults + lamb set + orderings).
    schedule:
        The compiled collective.
    participants:
        The nodes assigned ranks 0..P-1; defaults to all survivors (in
        mesh index order).  Every participant must be a survivor.

    Raises
    ------
    ValueError
        If a participant is a lamb or faulty node (lambs do not
        compute, Definition 2.6).
    """
    if participants is None:
        participants = result.survivors()
    participants = [tuple(int(x) for x in v) for v in participants]
    if len(participants) != schedule.num_ranks:
        raise ValueError(
            f"schedule has {schedule.num_ranks} ranks but "
            f"{len(participants)} participants were given"
        )
    seen = set()
    for v in participants:
        if not result.is_survivor(v):
            raise ValueError(f"participant {v} is not a survivor")
        if v in seen:
            raise ValueError(f"participant {v} assigned twice")
        seen.add(v)

    stats = CollectiveStats(makespan_cycles=0)
    for phase in schedule.phases:
        if not phase:
            stats.phase_cycles.append(0)
            continue
        sim = WormholeSimulator(
            result.faults,
            result.orderings,
            buffer_flits=buffer_flits,
            seed=seed,
        )
        for t in phase:
            sim.send(
                participants[t.src_rank],
                participants[t.dst_rank],
                num_flits=t.flits,
            )
            stats.total_messages += 1
            stats.total_flits += t.flits
        phase_stats = sim.run(max_cycles=max_cycles_per_phase)
        stats.phase_cycles.append(phase_stats.cycles)
        stats.makespan_cycles += phase_stats.cycles
    return stats
