"""Communication schedules for collectives among survivor nodes.

A *schedule* is a list of phases; each phase is a list of point-to-
point transfers executed concurrently, with a barrier between phases.
Collective algorithms (broadcast, gather, allreduce) compile to
schedules over the survivor ranks, and :mod:`repro.collectives.runner`
executes schedules on the wormhole simulator.

Ranks are indices into a fixed list of participant nodes (the
survivors of a reconfiguration); algorithms are topology-agnostic —
the lamb machinery guarantees any survivor can message any survivor in
k rounds, which is exactly the abstraction collectives need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set


__all__ = ["Transfer", "Schedule"]


@dataclass(frozen=True)
class Transfer:
    """One point-to-point message of a collective phase."""

    src_rank: int
    dst_rank: int
    flits: int = 8


@dataclass
class Schedule:
    """Phased communication plan over ``num_ranks`` participants."""

    num_ranks: int
    phases: List[List[Transfer]] = field(default_factory=list)

    def add_phase(self, transfers: Sequence[Transfer]) -> None:
        for t in transfers:
            if not (0 <= t.src_rank < self.num_ranks):
                raise ValueError(f"bad source rank {t.src_rank}")
            if not (0 <= t.dst_rank < self.num_ranks):
                raise ValueError(f"bad destination rank {t.dst_rank}")
            if t.src_rank == t.dst_rank:
                raise ValueError("self-transfer")
        self.phases.append(list(transfers))

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def total_transfers(self) -> int:
        return sum(len(p) for p in self.phases)

    # ------------------------------------------------------------------
    # Dataflow semantics, used to verify algorithm correctness without
    # simulating the network: each rank holds a set of "contributions".
    # ------------------------------------------------------------------
    def propagate(self, initial: Dict[int, Set[int]]) -> Dict[int, Set[int]]:
        """Run set-union dataflow through the schedule.

        ``initial[rank]`` is the rank's starting contribution set; a
        transfer copies the sender's *current phase-start* set to the
        receiver (all transfers in a phase read pre-phase state, which
        models the barrier semantics)."""
        state = {r: set(initial.get(r, set())) for r in range(self.num_ranks)}
        for phase in self.phases:
            snapshot = {r: set(s) for r, s in state.items()}
            for t in phase:
                state[t.dst_rank] |= snapshot[t.src_rank]
        return state
