"""Collective algorithms compiled to schedules.

Classic MPI-style algorithms over the survivor ranks:

- :func:`binomial_broadcast` — log2(P) phases, root fans out;
- :func:`binomial_gather` — the reverse tree;
- :func:`recursive_doubling_allgather` — every rank ends with every
  contribution in ceil(log2 P) phases (power-of-two ranks exchange;
  stragglers are folded in with a pre/post phase);
- :func:`ring_allgather` — P - 1 phases, bandwidth-optimal shape;
- :func:`linear_alltoone` — the naive baseline.

All algorithms are verified by the schedule's set-union dataflow in
the tests: broadcast must deliver the root's contribution everywhere,
allgather must deliver everyone's everywhere.
"""

from __future__ import annotations

from typing import List

from .schedule import Schedule, Transfer

__all__ = [
    "binomial_broadcast",
    "binomial_gather",
    "recursive_doubling_allgather",
    "ring_allgather",
    "linear_alltoone",
]


def _check(num_ranks: int, root: int = 0) -> None:
    if num_ranks < 1:
        raise ValueError("need at least one rank")
    if not 0 <= root < num_ranks:
        raise ValueError(f"root {root} out of range")


def binomial_broadcast(num_ranks: int, root: int = 0, flits: int = 8) -> Schedule:
    """Binomial-tree broadcast: phase r doubles the informed set."""
    _check(num_ranks, root)
    sched = Schedule(num_ranks)
    # Work in root-relative rank space.
    span = 1
    while span < num_ranks:
        phase: List[Transfer] = []
        for rel in range(span):
            dst_rel = rel + span
            if dst_rel < num_ranks:
                phase.append(
                    Transfer(
                        (root + rel) % num_ranks,
                        (root + dst_rel) % num_ranks,
                        flits,
                    )
                )
        sched.add_phase(phase)
        span *= 2
    return sched


def binomial_gather(num_ranks: int, root: int = 0, flits: int = 8) -> Schedule:
    """Binomial-tree gather: the broadcast tree run backwards."""
    _check(num_ranks, root)
    bcast = binomial_broadcast(num_ranks, root, flits)
    sched = Schedule(num_ranks)
    for phase in reversed(bcast.phases):
        sched.add_phase(
            [Transfer(t.dst_rank, t.src_rank, flits) for t in phase]
        )
    return sched


def recursive_doubling_allgather(num_ranks: int, flits: int = 8) -> Schedule:
    """Recursive-doubling allgather.

    For P a power of two: in phase r, rank i exchanges with
    ``i XOR 2^r``.  Otherwise the trailing ``P - 2^m`` stragglers fold
    their data into a partner first and receive the full result last.
    """
    _check(num_ranks)
    sched = Schedule(num_ranks)
    if num_ranks == 1:
        return sched
    m = 1
    while m * 2 <= num_ranks:
        m *= 2
    extras = num_ranks - m  # ranks m .. num_ranks-1
    if extras:
        sched.add_phase(
            [Transfer(m + e, e, flits) for e in range(extras)]
        )
    span = 1
    while span < m:
        phase = []
        for i in range(m):
            phase.append(Transfer(i, i ^ span, flits))
        sched.add_phase(phase)
        span *= 2
    if extras:
        sched.add_phase(
            [Transfer(e, m + e, flits) for e in range(extras)]
        )
    return sched


def ring_allgather(num_ranks: int, flits: int = 8) -> Schedule:
    """Ring allgather: P - 1 phases, each rank forwards to its
    successor (bandwidth-optimal for large payloads)."""
    _check(num_ranks)
    sched = Schedule(num_ranks)
    if num_ranks == 1:
        return sched
    for _ in range(num_ranks - 1):
        sched.add_phase(
            [Transfer(i, (i + 1) % num_ranks, flits) for i in range(num_ranks)]
        )
    return sched


def linear_alltoone(num_ranks: int, root: int = 0, flits: int = 8) -> Schedule:
    """Naive gather: everyone sends to the root in one phase (the
    hotspot baseline)."""
    _check(num_ranks, root)
    sched = Schedule(num_ranks)
    sched.add_phase(
        [Transfer(i, root, flits) for i in range(num_ranks) if i != root]
    )
    return sched
