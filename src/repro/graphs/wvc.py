"""Weighted vertex cover on general graphs.

``Reduce-WVC(General)`` (Fig. 16) produces a *general* graph whose
optimal cover yields an optimally small lamb set; since WVC is NP-hard
on general graphs, the paper pairs it with either

- the linear-time 2-approximation of Bar-Yehuda & Even [3]
  (:func:`wvc_local_ratio`), giving Lamb2 its r = 2 guarantee
  (Theorem 6.9), or
- exact exponential search for small instances
  (:func:`wvc_exact`, Corollary 6.10).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["wvc_local_ratio", "wvc_exact", "is_vertex_cover", "cover_weight"]


def _normalize_edges(
    n: int, edges: Iterable[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    out = []
    seen = set()
    for (u, v) in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range")
        if u == v:
            raise ValueError(f"self-loop at {u} cannot be covered meaningfully")
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen.add(key)
            out.append(key)
    return out


def is_vertex_cover(edges: Iterable[Tuple[int, int]], cover: Set[int]) -> bool:
    """Whether ``cover`` touches every edge."""
    return all(u in cover or v in cover for (u, v) in edges)


def cover_weight(weights: Sequence[float], cover: Iterable[int]) -> float:
    """Total weight of a cover."""
    return float(sum(weights[u] for u in cover))


def wvc_local_ratio(
    n: int, weights: Sequence[float], edges: Iterable[Tuple[int, int]]
) -> Set[int]:
    """Bar-Yehuda & Even local-ratio 2-approximation for WVC.

    Repeatedly takes an uncovered edge and subtracts the smaller
    residual weight of its endpoints from both; vertices whose residual
    weight reaches zero enter the cover.  Runs in time linear in the
    number of edges and returns a cover of weight at most twice
    optimal.
    """
    edges = _normalize_edges(n, edges)
    residual = [float(w) for w in weights]
    if any(w < 0 for w in residual):
        raise ValueError("weights must be nonnegative")
    cover: Set[int] = {u for u in range(n) if residual[u] == 0.0}
    cover &= {u for e in edges for u in e}
    for (u, v) in edges:
        if u in cover or v in cover:
            continue
        m = min(residual[u], residual[v])
        residual[u] -= m
        residual[v] -= m
        if residual[u] == 0.0:
            cover.add(u)
        if residual[v] == 0.0:
            cover.add(v)
    return cover


def wvc_exact(
    n: int,
    weights: Sequence[float],
    edges: Iterable[Tuple[int, int]],
    max_vertices: int = 40,
) -> Set[int]:
    """Exact minimum-weight vertex cover by branch and bound.

    Exponential time (Corollary 6.10); guarded by ``max_vertices``
    counting only vertices incident to at least one edge.

    The search branches on an uncovered edge ``(u, v)``: either ``u``
    is in the cover, or it is not — and then *all* neighbors of ``u``
    must be.  Prunes with the running best and a matching-based lower
    bound.
    """
    edges = _normalize_edges(n, edges)
    if not edges:
        return set()
    touched = sorted({u for e in edges for u in e})
    if len(touched) > max_vertices:
        raise ValueError(
            f"{len(touched)} edge-incident vertices exceed max_vertices="
            f"{max_vertices}; use wvc_local_ratio instead"
        )
    adj: Dict[int, Set[int]] = {u: set() for u in touched}
    for (u, v) in edges:
        adj[u].add(v)
        adj[v].add(u)

    best_cover: Set[int] = set(touched)
    best_weight = cover_weight(weights, best_cover)

    def lower_bound(active_edges: List[Tuple[int, int]]) -> float:
        """Greedy disjoint-edge (matching) bound: each matched edge
        forces at least min(w_u, w_v) into any cover."""
        used: Set[int] = set()
        bound = 0.0
        for (u, v) in active_edges:
            if u not in used and v not in used:
                used.add(u)
                used.add(v)
                bound += min(weights[u], weights[v])
        return bound

    def recurse(chosen: Set[int], excluded: Set[int], weight: float) -> None:
        nonlocal best_cover, best_weight
        active = [e for e in edges if e[0] not in chosen and e[1] not in chosen]
        if not active:
            if weight < best_weight:
                best_weight = weight
                best_cover = set(chosen)
            return
        if weight + lower_bound(active) >= best_weight:
            return
        # Branch on the endpoint pair of the first uncovered edge.
        u, v = active[0]
        if u not in excluded:
            recurse(chosen | {u}, excluded, weight + weights[u])
        # u excluded: every neighbor of u still uncovered must be chosen.
        forced = adj[u] - chosen
        if not (forced & excluded):
            add_w = sum(weights[x] for x in forced)
            recurse(chosen | forced, excluded | {u}, weight + add_w)

    recurse(set(), set(), 0.0)
    return best_cover
