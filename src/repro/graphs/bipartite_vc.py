"""Optimal weighted vertex cover on bipartite graphs via max-flow.

This is the solver behind ``Reduce-WVC(Bipartite)`` (Fig. 13, step 2).
By LP duality / the weighted König theorem, the minimum weight of a
vertex cover of a bipartite graph equals the maximum flow in the
network  ``source -> left(w) -> right(inf) -> sink(w)``, and a minimum
cut directly yields an optimal cover (the paper's reference [10]
reduction; solvable in O(b^3) for b vertices).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple

from .maxflow import INF, MaxFlow

__all__ = ["min_weight_vertex_cover_bipartite"]


def min_weight_vertex_cover_bipartite(
    left_weights: Sequence[float],
    right_weights: Sequence[float],
    edges: Iterable[Tuple[int, int]],
) -> Tuple[Set[int], Set[int], float]:
    """Minimum-weight vertex cover of a bipartite graph.

    Parameters
    ----------
    left_weights, right_weights:
        Nonnegative vertex weights of the two sides.
    edges:
        Pairs ``(i, j)`` meaning left vertex ``i`` — right vertex ``j``.

    Returns
    -------
    (cover_left, cover_right, weight):
        Index sets of the chosen cover vertices on each side and the
        total cover weight.

    Examples
    --------
    >>> cl, cr, w = min_weight_vertex_cover_bipartite(
    ...     [1.0, 5.0], [5.0, 1.0], [(0, 0), (0, 1), (1, 1)])
    >>> sorted(cl), sorted(cr), w
    ([0], [1], 2.0)
    """
    p, q = len(left_weights), len(right_weights)
    edges = list(edges)
    for (i, j) in edges:
        if not (0 <= i < p and 0 <= j < q):
            raise ValueError(f"edge ({i}, {j}) out of range")
    if any(w < 0 for w in left_weights) or any(w < 0 for w in right_weights):
        raise ValueError("weights must be nonnegative")
    if not edges:
        return set(), set(), 0.0
    source = p + q
    sink = p + q + 1
    net = MaxFlow(p + q + 2)
    for i, w in enumerate(left_weights):
        net.add_edge(source, i, float(w))
    for j, w in enumerate(right_weights):
        net.add_edge(p + j, sink, float(w))
    for (i, j) in edges:
        net.add_edge(i, p + j, INF)
    weight = net.max_flow(source, sink)
    reachable = net.min_cut_side(source)
    cover_left = {i for i in range(p) if i not in reachable}
    cover_right = {j for j in range(q) if (p + j) in reachable}
    # Only keep cover vertices that actually touch an edge (vertices
    # with no incident edge can never be forced into the cover, but the
    # cut may formally include unreachable isolated ones).
    touched_left = {i for (i, _) in edges}
    touched_right = {j for (_, j) in edges}
    cover_left &= touched_left
    cover_right &= touched_right
    return cover_left, cover_right, weight
