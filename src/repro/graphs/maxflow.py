"""Dinic's maximum-flow algorithm.

Used to solve weighted vertex cover *optimally* on bipartite graphs
(the paper's reference [10] reduction), which is the heart of the
``Reduce-WVC(Bipartite)`` step of Lamb1.  Dinic runs in O(V^2 E) in
general and O(E sqrt(V)) on unit-capacity bipartite networks — far
more than fast enough for the O(d f)-vertex graphs the lamb pipeline
produces.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Set

__all__ = ["MaxFlow", "INF"]

INF = float("inf")


class MaxFlow:
    """A flow network on vertices ``0 .. n-1`` with Dinic max-flow.

    Examples
    --------
    >>> g = MaxFlow(4)
    >>> _ = g.add_edge(0, 1, 3); _ = g.add_edge(0, 2, 2)
    >>> _ = g.add_edge(1, 3, 2); _ = g.add_edge(2, 3, 3)
    >>> g.max_flow(0, 3)
    4.0
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("need at least one vertex")
        self.n = n
        # Edge arrays: to[i], cap[i]; edge i^1 is the reverse of edge i.
        self._to: List[int] = []
        self._cap: List[float] = []
        self._adj: List[List[int]] = [[] for _ in range(n)]

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add a directed edge; returns its id (for flow queries)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError("vertex out of range")
        if capacity < 0:
            raise ValueError("capacity must be nonnegative")
        eid = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._adj[u].append(eid)
        self._to.append(u)
        self._cap.append(0.0)
        self._adj[v].append(eid + 1)
        return eid

    def edge_flow(self, eid: int) -> float:
        """Flow currently routed through edge ``eid``."""
        return self._cap[eid ^ 1]

    # ------------------------------------------------------------------
    def _bfs_levels(self, s: int, t: int) -> Optional[List[int]]:
        level = [-1] * self.n
        level[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            for eid in self._adj[u]:
                v = self._to[eid]
                if self._cap[eid] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    q.append(v)
        return level if level[t] >= 0 else None

    def _dfs_block(
        self, u: int, t: int, pushed: float, level: List[int], it: List[int]
    ) -> float:
        if u == t:
            return pushed
        while it[u] < len(self._adj[u]):
            eid = self._adj[u][it[u]]
            v = self._to[eid]
            if self._cap[eid] > 0 and level[v] == level[u] + 1:
                got = self._dfs_block(
                    v, t, min(pushed, self._cap[eid]), level, it
                )
                if got > 0:
                    self._cap[eid] -= got
                    self._cap[eid ^ 1] += got
                    return got
            it[u] += 1
        return 0.0

    def max_flow(self, s: int, t: int) -> float:
        """Compute the maximum s-t flow (mutates residual capacities)."""
        if s == t:
            raise ValueError("source equals sink")
        total = 0.0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                return total
            it = [0] * self.n
            while True:
                pushed = self._dfs_block(s, t, INF, level, it)
                if pushed <= 0:
                    break
                total += pushed

    def min_cut_side(self, s: int) -> Set[int]:
        """Vertices reachable from ``s`` in the residual graph.

        Call after :meth:`max_flow`; the edges from this set to its
        complement form a minimum cut.
        """
        seen = {s}
        q = deque([s])
        while q:
            u = q.popleft()
            for eid in self._adj[u]:
                v = self._to[eid]
                if self._cap[eid] > 0 and v not in seen:
                    seen.add(v)
                    q.append(v)
        return seen
