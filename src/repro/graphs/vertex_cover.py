"""Unweighted vertex cover helpers.

The NP-hardness reduction (Section 9) starts from the classic
(unweighted) vertex cover problem; these helpers generate, solve, and
check the VC instances used by :mod:`repro.complexity.nphardness` and
its tests.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

import numpy as np

from .wvc import is_vertex_cover, wvc_exact

__all__ = [
    "exact_min_vertex_cover",
    "matching_2approx_vertex_cover",
    "random_graph",
    "is_vertex_cover",
]


def exact_min_vertex_cover(
    n: int, edges: Iterable[Tuple[int, int]], max_vertices: int = 40
) -> Set[int]:
    """Exact minimum-cardinality vertex cover (small graphs)."""
    return wvc_exact(n, [1.0] * n, edges, max_vertices=max_vertices)


def matching_2approx_vertex_cover(
    n: int, edges: Iterable[Tuple[int, int]]
) -> Set[int]:
    """Classic maximal-matching 2-approximation: take both endpoints
    of a greedily built maximal matching."""
    cover: Set[int] = set()
    for (u, v) in edges:
        if u not in cover and v not in cover:
            cover.add(u)
            cover.add(v)
    return cover


def random_graph(
    n: int, edge_probability: float, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    """An Erdos-Renyi G(n, p) edge list (u < v)."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must lie in [0, 1]")
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_probability:
                edges.append((u, v))
    return edges
