"""Graph-algorithm substrate: max-flow and vertex cover solvers."""

from .bipartite_vc import min_weight_vertex_cover_bipartite
from .maxflow import INF, MaxFlow
from .vertex_cover import (
    exact_min_vertex_cover,
    matching_2approx_vertex_cover,
    random_graph,
)
from .wvc import cover_weight, is_vertex_cover, wvc_exact, wvc_local_ratio

__all__ = [
    "MaxFlow",
    "INF",
    "min_weight_vertex_cover_bipartite",
    "wvc_local_ratio",
    "wvc_exact",
    "is_vertex_cover",
    "cover_weight",
    "exact_min_vertex_cover",
    "matching_2approx_vertex_cover",
    "random_graph",
]
