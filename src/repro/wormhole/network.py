"""Virtual-channel bookkeeping for the wormhole simulator.

A *resource* is a (physical directed link, virtual channel) pair.  In
wormhole switching a resource is owned exclusively by one message from
the time its head flit is routed onto it until its tail flit has
crossed it; each resource also has a small downstream flit buffer and
a bandwidth of one flit per cycle.

Hot-path note: every per-cycle operation is O(1) on plain dict lookups
keyed by precomputed :data:`ResourceKey` tuples.  The simulator's
inner loop uses the ``*_key`` variants with the per-message hop-key
arrays (:attr:`repro.wormhole.Message.hop_keys`) so no tuples are
rebuilt per flit per cycle; the hop-taking methods are thin wrappers
kept for validation, diagnostics and tests.  Per-cycle link bandwidth
is tracked with a cycle *stamp* table instead of a set that is cleared
each cycle, so ``new_cycle`` is O(1) regardless of how many channels
moved flits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.geometry import Node
from .packets import Hop

__all__ = ["ResourceKey", "VirtualNetwork", "ArrayVirtualNetwork"]

ResourceKey = Tuple[Node, Node, int]  # (src, dst, vc)


def _key(hop: Hop) -> ResourceKey:
    return (hop.src, hop.dst, hop.vc)


class VirtualNetwork:
    """Ownership, buffer occupancy and per-cycle bandwidth state.

    Parameters
    ----------
    faults:
        Fault set; routing over a faulty node or link is rejected at
        hop validation time (routes are supposed to be fault-free by
        construction — this is a safety net, not a routing layer).
    num_vcs:
        Number of virtual channels per physical link.
    buffer_flits:
        Downstream buffer capacity per resource, in flits.
    """

    def __init__(self, faults: FaultSet, num_vcs: int, buffer_flits: int = 2):
        if num_vcs < 1:
            raise ValueError("need at least one virtual channel")
        if buffer_flits < 1:
            raise ValueError("need at least one flit of buffering")
        self.faults = faults
        self.mesh = faults.mesh
        self.num_vcs = num_vcs
        self.buffer_flits = buffer_flits
        self._owner: Dict[ResourceKey, int] = {}
        self._occupancy: Dict[ResourceKey, int] = {}
        # Cycle-stamp table: channel ``k`` was used this cycle iff
        # ``_used_stamp[k] == _stamp``.  ``new_cycle`` just bumps the
        # stamp — O(1) instead of clearing a set.
        self._used_stamp: Dict[ResourceKey, int] = {}
        self._stamp: int = 0

    # ------------------------------------------------------------------
    def validate_hop(self, hop: Hop) -> None:
        """Reject hops that use faulty hardware or unknown VCs."""
        if hop.vc < 0 or hop.vc >= self.num_vcs:
            raise ValueError(f"hop uses VC {hop.vc}, have {self.num_vcs}")
        if not self.mesh.are_adjacent(hop.src, hop.dst):
            raise ValueError(f"hop {hop.src} -> {hop.dst} is not a link")
        if self.faults.node_is_faulty(hop.src) or self.faults.node_is_faulty(hop.dst):
            raise ValueError(f"hop {hop.src} -> {hop.dst} touches a faulty node")
        if self.faults.link_is_faulty(hop.src, hop.dst):
            raise ValueError(f"hop {hop.src} -> {hop.dst} uses a faulty link")

    # ------------------------------------------------------------------
    def apply_faults(self, faults: FaultSet) -> None:
        """Swap in a grown fault set (live-fault epoch).

        Future ``validate_hop`` calls see the new state; in-flight
        state is untouched — the simulator is responsible for aborting
        and draining messages whose acquired paths now cross a fault.
        """
        if faults.mesh != self.mesh:
            raise ValueError("live faults must live in the same mesh")
        self.faults = faults

    def grow_vcs(self, num_vcs: int) -> None:
        """Raise the VC count (degradation ladder: escalating k rounds
        needs one VC per round).  Shrinking is rejected — resources on
        the removed VCs could still be owned."""
        if num_vcs < self.num_vcs:
            raise ValueError("cannot shrink the VC count mid-flight")
        self.num_vcs = num_vcs

    def release_message(self, msg_id: int) -> int:
        """Force-release every resource owned by ``msg_id`` (abort /
        drain path).  Returns the number of resources released."""
        mine = [key for key, owner in self._owner.items() if owner == msg_id]
        for key in mine:
            del self._owner[key]
        return len(mine)

    def drop_buffer_flit(self, hop: Hop) -> None:
        """Discard one buffered flit of an aborted message (alias of
        :meth:`buffer_pop` kept distinct for intent)."""
        self.buffer_pop(hop)

    def owned_resources(self, msg_id: int) -> Set[ResourceKey]:
        """All (link, VC) resources currently owned by ``msg_id``
        (watchdog diagnostics)."""
        return {key for key, owner in self._owner.items() if owner == msg_id}

    # ------------------------------------------------------------------
    # Key-based fast path (the simulator inner loop)
    # ------------------------------------------------------------------
    def owner_key(self, key: ResourceKey) -> Optional[int]:
        return self._owner.get(key)

    def try_acquire_key(self, key: ResourceKey, msg_id: int) -> bool:
        holder = self._owner.get(key)
        if holder is None:
            self._owner[key] = msg_id
            return True
        return holder == msg_id

    def release_key(self, key: ResourceKey, msg_id: int) -> None:
        if self._owner.get(key) != msg_id:
            raise RuntimeError(f"message {msg_id} does not own {key}")
        del self._owner[key]

    def buffer_has_space_key(self, key: ResourceKey) -> bool:
        return self._occupancy.get(key, 0) < self.buffer_flits

    def buffer_push_key(self, key: ResourceKey) -> None:
        n = self._occupancy.get(key, 0)
        if n >= self.buffer_flits:
            raise RuntimeError(f"buffer overflow on {key}")
        self._occupancy[key] = n + 1

    def buffer_pop_key(self, key: ResourceKey) -> None:
        n = self._occupancy.get(key, 0)
        if n <= 0:
            raise RuntimeError(f"buffer underflow on {key}")
        if n == 1:
            del self._occupancy[key]
        else:
            self._occupancy[key] = n - 1

    def channel_free_key(self, key: ResourceKey) -> bool:
        return self._used_stamp.get(key, -1) != self._stamp

    def mark_used_key(self, key: ResourceKey) -> None:
        self._used_stamp[key] = self._stamp

    # ------------------------------------------------------------------
    # Hop-based wrappers (validation, diagnostics, tests)
    # ------------------------------------------------------------------
    def owner(self, hop: Hop) -> Optional[int]:
        return self.owner_key(_key(hop))

    def try_acquire(self, hop: Hop, msg_id: int) -> bool:
        """Acquire the resource for ``msg_id`` if free."""
        return self.try_acquire_key(_key(hop), msg_id)

    def release(self, hop: Hop, msg_id: int) -> None:
        self.release_key(_key(hop), msg_id)

    # ------------------------------------------------------------------
    def buffer_has_space(self, hop: Hop) -> bool:
        return self.buffer_has_space_key(_key(hop))

    def buffer_push(self, hop: Hop) -> None:
        self.buffer_push_key(_key(hop))

    def buffer_pop(self, hop: Hop) -> None:
        self.buffer_pop_key(_key(hop))

    # ------------------------------------------------------------------
    def channel_free_this_cycle(self, hop: Hop) -> bool:
        return self.channel_free_key(_key(hop))

    def mark_channel_used(self, hop: Hop) -> None:
        self.mark_used_key(_key(hop))

    def new_cycle(self) -> None:
        self._stamp += 1


class ArrayVirtualNetwork(VirtualNetwork):
    """Struct-of-arrays resource state for the ``"vector"`` engine.

    Resource keys are interned to dense integer ids on first use
    (routes are interned when messages are registered, off the hot
    path), and ownership / buffer occupancy / bandwidth stamps live in
    flat numpy arrays indexed by id.  The batched step then updates
    whole batches with ``np.add.at`` scatters, while the inherited
    ``*_key`` API keeps working — every override is a dict-lookup plus
    an array index — so the shared sequential flit-advance kernel,
    park/wake bookkeeping, wait-graph diagnostics and tests observe
    exactly the same semantics as the dict-backed network (including
    the over/underflow and foreign-release guards).
    """

    def __init__(self, faults: FaultSet, num_vcs: int, buffer_flits: int = 2):
        super().__init__(faults, num_vcs=num_vcs, buffer_flits=buffer_flits)
        self._ids: Dict[ResourceKey, int] = {}
        self._key_of: List[ResourceKey] = []
        cap = 256
        self.owner_arr = np.full(cap, -1, dtype=np.int64)
        self.occ_arr = np.zeros(cap, dtype=np.int64)
        self.stamp_arr = np.full(cap, -1, dtype=np.int64)

    # -- interning -----------------------------------------------------
    @property
    def num_resources(self) -> int:
        return len(self._key_of)

    def _grow(self, need: int) -> None:
        cap = self.owner_arr.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        grow = new_cap - cap
        self.owner_arr = np.concatenate(
            [self.owner_arr, np.full(grow, -1, dtype=np.int64)]
        )
        self.occ_arr = np.concatenate(
            [self.occ_arr, np.zeros(grow, dtype=np.int64)]
        )
        self.stamp_arr = np.concatenate(
            [self.stamp_arr, np.full(grow, -1, dtype=np.int64)]
        )

    def intern_key(self, key: ResourceKey) -> int:
        rid = self._ids.get(key)
        if rid is None:
            rid = len(self._key_of)
            self._ids[key] = rid
            self._key_of.append(key)
            self._grow(rid + 1)
        return rid

    def intern_keys(self, keys: Sequence[ResourceKey]) -> np.ndarray:
        """Intern a route's resource keys; returns their ids (int64)."""
        return np.fromiter(
            (self.intern_key(k) for k in keys), dtype=np.int64, count=len(keys)
        )

    def key_of(self, rid: int) -> ResourceKey:
        return self._key_of[rid]

    # -- key-based API over the arrays ---------------------------------
    def owner_key(self, key: ResourceKey) -> Optional[int]:
        rid = self._ids.get(key)
        if rid is None:
            return None
        owner = self.owner_arr[rid]
        return None if owner < 0 else int(owner)

    def try_acquire_key(self, key: ResourceKey, msg_id: int) -> bool:
        rid = self.intern_key(key)
        owner = self.owner_arr[rid]
        if owner < 0:
            self.owner_arr[rid] = msg_id
            return True
        return owner == msg_id

    def release_key(self, key: ResourceKey, msg_id: int) -> None:
        rid = self._ids.get(key)
        if rid is None or self.owner_arr[rid] != msg_id:
            raise RuntimeError(f"message {msg_id} does not own {key}")
        self.owner_arr[rid] = -1

    def buffer_has_space_key(self, key: ResourceKey) -> bool:
        rid = self._ids.get(key)
        if rid is None:
            return True
        return self.occ_arr[rid] < self.buffer_flits

    def buffer_push_key(self, key: ResourceKey) -> None:
        rid = self.intern_key(key)
        if self.occ_arr[rid] >= self.buffer_flits:
            raise RuntimeError(f"buffer overflow on {key}")
        self.occ_arr[rid] += 1

    def buffer_pop_key(self, key: ResourceKey) -> None:
        rid = self._ids.get(key)
        if rid is None or self.occ_arr[rid] <= 0:
            raise RuntimeError(f"buffer underflow on {key}")
        self.occ_arr[rid] -= 1

    def channel_free_key(self, key: ResourceKey) -> bool:
        rid = self._ids.get(key)
        if rid is None:
            return True
        return self.stamp_arr[rid] != self._stamp

    def mark_used_key(self, key: ResourceKey) -> None:
        rid = self.intern_key(key)
        self.stamp_arr[rid] = self._stamp

    # -- message-level operations --------------------------------------
    def release_message(self, msg_id: int) -> int:
        n = len(self._key_of)
        mine = np.flatnonzero(self.owner_arr[:n] == msg_id)
        self.owner_arr[mine] = -1
        return int(mine.size)

    def owned_resources(self, msg_id: int) -> Set[ResourceKey]:
        n = len(self._key_of)
        mine = np.flatnonzero(self.owner_arr[:n] == msg_id)
        return {self._key_of[int(i)] for i in mine}
