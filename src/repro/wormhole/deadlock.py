"""Deadlock detection via the message wait-for graph.

Wormhole deadlock is a cycle of messages each blocked waiting for a
(link, VC) resource owned by the next (Dally & Seitz [8]).  k-round
dimension-ordered routing with one VC per round is provably
deadlock-free (Section 1); the simulator uses this detector both as a
correctness assertion for the proper VC discipline and to *exhibit*
deadlock when the discipline is deliberately violated (see
``examples/deadlock_demo.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .network import VirtualNetwork
from .packets import Message

__all__ = [
    "build_wait_graph",
    "find_deadlock_cycle",
    "snapshot_stalls",
    "StallDiagnostics",
    "SimulationError",
    "DeadlockError",
    "SimulationTimeout",
]


@dataclass(frozen=True)
class StallDiagnostics:
    """What the watchdog saw when it gave up.

    Attributes
    ----------
    cycle:
        Simulator cycle at which the diagnosis was taken.
    stalled:
        Per unfinished message: ``(msg_id, head_pos, num_hops,
        delivered_flits, num_flits)``.
    owned:
        Per unfinished message: the (link, VC) resources it holds.
    wait_graph:
        Snapshot of :func:`build_wait_graph` (blocked head -> owner).
    """

    cycle: int
    stalled: Tuple[Tuple[int, int, int, int, int], ...] = ()
    owned: Tuple[Tuple[int, Tuple[object, ...]], ...] = ()
    wait_graph: Tuple[Tuple[int, int], ...] = ()

    @property
    def num_stalled(self) -> int:
        return len(self.stalled)

    def describe(self, limit: int = 8) -> str:
        lines = [f"{self.num_stalled} unfinished message(s) at cycle {self.cycle}"]
        owned = dict(self.owned)
        for msg_id, head, hops, got, want in self.stalled[:limit]:
            res = owned.get(msg_id, ())
            lines.append(
                f"  msg {msg_id}: head at hop {head}/{hops}, "
                f"flits {got}/{want} delivered, owns {len(res)} resource(s)"
            )
        if self.num_stalled > limit:
            lines.append(f"  ... and {self.num_stalled - limit} more")
        if self.wait_graph:
            edges = ", ".join(f"{a}->{b}" for a, b in self.wait_graph[:limit])
            lines.append(f"  wait-for edges: {edges}")
        return "\n".join(lines)


def snapshot_stalls(
    cycle: int, messages: Iterable[Message], net: VirtualNetwork
) -> StallDiagnostics:
    """Collect :class:`StallDiagnostics` for every unfinished message."""
    stalled = []
    owned = []
    pending = []
    for m in messages:
        if m.is_finished:
            continue
        pending.append(m)
        stalled.append(
            (m.msg_id, m.head_pos, m.num_hops, m.delivered_flits, m.num_flits)
        )
        res = tuple(sorted(net.owned_resources(m.msg_id)))
        if res:
            owned.append((m.msg_id, res))
    graph = build_wait_graph(pending, net)
    return StallDiagnostics(
        cycle=cycle,
        stalled=tuple(stalled),
        owned=tuple(owned),
        wait_graph=tuple(sorted(graph.items())),
    )


class SimulationError(RuntimeError):
    """Base class for typed simulator failures."""


class DeadlockError(SimulationError):
    """Raised by the simulator when a wait-for cycle is detected."""

    def __init__(
        self, cycle: List[int], diagnostics: Optional[StallDiagnostics] = None
    ):
        self.cycle = cycle
        self.diagnostics = diagnostics
        msg = f"wormhole deadlock: wait-for cycle among messages {cycle}"
        if diagnostics is not None:
            msg += "\n" + diagnostics.describe()
        super().__init__(msg)


class SimulationTimeout(SimulationError):
    """The network did not drain within the cycle budget and no
    wait-for cycle explains it (congestion, livelock, or simply too few
    cycles).  Carries the watchdog's :class:`StallDiagnostics`."""

    def __init__(self, max_cycles: int, diagnostics: StallDiagnostics):
        self.max_cycles = max_cycles
        self.diagnostics = diagnostics
        super().__init__(
            f"simulation did not drain within {max_cycles} cycles\n"
            + diagnostics.describe()
        )


def build_wait_graph(
    messages: Iterable[Message], net: VirtualNetwork
) -> Dict[int, int]:
    """Edges ``m -> m'``: the head of in-flight message ``m`` is blocked
    on a resource owned by ``m'``.

    Messages blocked only on buffer space of a resource they own (or
    that is free) have no outgoing edge — they are throttled, not
    deadlocked.
    """
    graph: Dict[int, int] = {}
    for m in messages:
        if m.is_finished:
            continue
        nxt = m.next_hop_index()
        if nxt is None:
            continue
        hop = m.hops[nxt]
        holder = net.owner(hop)
        if holder is not None and holder != m.msg_id:
            graph[m.msg_id] = holder
    return graph


def find_deadlock_cycle(graph: Dict[int, int]) -> Optional[List[int]]:
    """A cycle in the (functional) wait-for graph, or None.

    Each node has at most one outgoing edge, so cycle detection is a
    pointer chase with a visited-epoch marker.
    """
    color: Dict[int, int] = {}  # 0 in progress, 1 done
    for start in graph:
        if color.get(start) == 1:
            continue
        path: List[int] = []
        u: Optional[int] = start
        while u is not None and u in graph and color.get(u) is None:
            color[u] = 0
            path.append(u)
            u = graph[u]
        if u is not None and color.get(u) == 0:
            # Found a node already on the current path: cycle.
            i = path.index(u)
            for v in path:
                color[v] = 1
            return path[i:]
        for v in path:
            color[v] = 1
    return None
