"""Deadlock detection via the message wait-for graph.

Wormhole deadlock is a cycle of messages each blocked waiting for a
(link, VC) resource owned by the next (Dally & Seitz [8]).  k-round
dimension-ordered routing with one VC per round is provably
deadlock-free (Section 1); the simulator uses this detector both as a
correctness assertion for the proper VC discipline and to *exhibit*
deadlock when the discipline is deliberately violated (see
``examples/deadlock_demo.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .network import VirtualNetwork
from .packets import Message

__all__ = ["build_wait_graph", "find_deadlock_cycle", "DeadlockError"]


class DeadlockError(RuntimeError):
    """Raised by the simulator when a wait-for cycle is detected."""

    def __init__(self, cycle: List[int]):
        self.cycle = cycle
        super().__init__(
            f"wormhole deadlock: wait-for cycle among messages {cycle}"
        )


def build_wait_graph(
    messages: Iterable[Message], net: VirtualNetwork
) -> Dict[int, int]:
    """Edges ``m -> m'``: the head of in-flight message ``m`` is blocked
    on a resource owned by ``m'``.

    Messages blocked only on buffer space of a resource they own (or
    that is free) have no outgoing edge — they are throttled, not
    deadlocked.
    """
    graph: Dict[int, int] = {}
    for m in messages:
        if m.is_delivered:
            continue
        nxt = m.next_hop_index()
        if nxt is None:
            continue
        hop = m.hops[nxt]
        holder = net.owner(hop)
        if holder is not None and holder != m.msg_id:
            graph[m.msg_id] = holder
    return graph


def find_deadlock_cycle(graph: Dict[int, int]) -> Optional[List[int]]:
    """A cycle in the (functional) wait-for graph, or None.

    Each node has at most one outgoing edge, so cycle detection is a
    pointer chase with a visited-epoch marker.
    """
    color: Dict[int, int] = {}  # 0 in progress, 1 done
    for start in graph:
        if color.get(start) == 1:
            continue
        path: List[int] = []
        u: Optional[int] = start
        while u is not None and u in graph and color.get(u) is None:
            color[u] = 0
            path.append(u)
            u = graph[u]
        if u is not None and color.get(u) == 0:
            # Found a node already on the current path: cycle.
            i = path.index(u)
            for v in path:
                color[v] = 1
            return path[i:]
        for v in path:
            color[v] = 1
    return None
