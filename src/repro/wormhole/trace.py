"""Flit-event tracing for the wormhole simulator.

Attaching a :class:`Tracer` records a structured event stream —
injections, per-flit hop traversals, channel acquisitions/releases,
deliveries — that the tests use to assert microarchitectural
invariants (one flit per channel per cycle, exclusive ownership
windows, pipelined flit spacing) and that users can dump for debugging
congestion.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..mesh.geometry import Node

__all__ = ["TraceEvent", "Tracer", "SYSTEM_MSG_ID"]


SYSTEM_MSG_ID = -1  # msg_id used by non-message events (fault, epoch)


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    ``kind`` is one of ``inject``, ``acquire``, ``release``, ``flit``
    (a flit crossing a hop), ``deliver`` — plus the live-fault kinds
    ``fault`` (hardware died; ``msg_id`` is :data:`SYSTEM_MSG_ID`),
    ``abort`` (a message was torn out of the network; ``reason`` says
    why) and ``reinject`` (a torn-out message re-armed on a fresh
    post-reconfiguration route after backoff).
    """

    cycle: int
    kind: str
    msg_id: int
    flit: Optional[int] = None
    src: Optional[Node] = None
    dst: Optional[Node] = None
    vc: Optional[int] = None
    reason: Optional[str] = None


class Tracer:
    """Collects :class:`TraceEvent` records from a simulator.

    Pass to :class:`repro.wormhole.WormholeSimulator` via
    ``tracer=``.  Querying helpers power the invariant tests.
    """

    def __init__(self, capacity: int = 1_000_000):
        self.events: List[TraceEvent] = []
        self.capacity = capacity

    def record(self, event: TraceEvent) -> None:
        if len(self.events) < self.capacity:
            self.events.append(event)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def abort_reasons(self) -> Counter:
        """reason -> count over ``abort`` events (chaos accounting)."""
        return Counter(
            e.reason for e in self.events if e.kind == "abort"
        )

    def channel_loads(self) -> Counter:
        """(src, dst, vc) -> number of flit traversals (congestion map)."""
        return Counter(
            (e.src, e.dst, e.vc) for e in self.events if e.kind == "flit"
        )

    def max_flits_per_channel_cycle(self) -> int:
        """The microarchitectural invariant: must be <= 1."""
        counts = Counter(
            (e.cycle, e.src, e.dst, e.vc)
            for e in self.events
            if e.kind == "flit"
        )
        return max(counts.values(), default=0)

    def ownership_windows(
        self,
    ) -> Dict[Tuple[Node, Node, int], List[Tuple[int, int, int]]]:
        """Per channel: list of (acquire_cycle, release_cycle, msg_id)
        ownership windows (release -1 if never released)."""
        open_windows: Dict[Tuple[Node, Node, int], Tuple[int, int]] = {}
        out: Dict[Tuple[Node, Node, int], List[Tuple[int, int, int]]] = {}
        for e in self.events:
            if e.kind not in ("acquire", "release"):
                continue
            key = (e.src, e.dst, e.vc)
            if e.kind == "acquire":
                open_windows[key] = (e.cycle, e.msg_id)
            else:
                start, mid = open_windows.pop(key, (-1, e.msg_id))
                out.setdefault(key, []).append((start, e.cycle, mid))
        for key, (start, mid) in open_windows.items():
            out.setdefault(key, []).append((start, -1, mid))
        return out

    def windows_are_exclusive(self) -> bool:
        """No two ownership windows of a channel overlap in time."""
        for windows in self.ownership_windows().values():
            spans = sorted(
                (s, e if e >= 0 else float("inf")) for (s, e, _) in windows
            )
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                if s2 < e1:
                    return False
        return True
