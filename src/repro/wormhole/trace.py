"""Flit-event tracing for the wormhole simulator.

Attaching a :class:`Tracer` records a structured event stream —
injections, per-flit hop traversals, channel acquisitions/releases,
deliveries — that the tests use to assert microarchitectural
invariants (one flit per channel per cycle, exclusive ownership
windows, pipelined flit spacing) and that users can dump for debugging
congestion.

Truncation is *loud*: events past ``capacity`` are counted in
:attr:`Tracer.dropped` (and warned about once), and the invariant
helpers refuse to certify a truncated trace — a missing ``release``
event would otherwise make an overlap look like an exclusivity
violation, and a missing ``flit`` event would hide a real one.  They
raise :class:`TraceTruncatedError` instead of returning answers
computed over a partial stream.
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..mesh.geometry import Node
from .deadlock import SimulationError

__all__ = ["TraceEvent", "Tracer", "TraceTruncatedError", "SYSTEM_MSG_ID"]


SYSTEM_MSG_ID = -1  # msg_id used by non-message events (fault, epoch)


class TraceTruncatedError(SimulationError):
    """An invariant was queried on a trace that dropped events.

    Raised by the :class:`Tracer` invariant helpers when
    ``dropped > 0``: a partial event stream cannot certify (or refute)
    a microarchitectural invariant, so refusing is the only honest
    answer.  Re-run with a larger ``capacity``.
    """

    def __init__(self, recorded: int, dropped: int, query: str) -> None:
        self.recorded = recorded
        self.dropped = dropped
        self.query = query
        super().__init__(
            f"cannot answer {query!r}: trace truncated "
            f"({recorded} events recorded, {dropped} dropped); "
            f"increase Tracer(capacity=...)"
        )


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    ``kind`` is one of ``inject``, ``acquire``, ``release``, ``flit``
    (a flit crossing a hop), ``deliver`` — plus the live-fault kinds
    ``fault`` (hardware died; ``msg_id`` is :data:`SYSTEM_MSG_ID`),
    ``abort`` (a message was torn out of the network; ``reason`` says
    why) and ``reinject`` (a torn-out message re-armed on a fresh
    post-reconfiguration route after backoff).
    """

    cycle: int
    kind: str
    msg_id: int
    flit: Optional[int] = None
    src: Optional[Node] = None
    dst: Optional[Node] = None
    vc: Optional[int] = None
    reason: Optional[str] = None


class Tracer:
    """Collects :class:`TraceEvent` records from a simulator.

    Pass to :class:`repro.wormhole.WormholeSimulator` via
    ``tracer=``.  Querying helpers power the invariant tests.

    Events past ``capacity`` are dropped but *counted*
    (:attr:`dropped`), with a one-time :class:`RuntimeWarning` at the
    moment the cap is first hit.  Helpers that certify invariants
    raise :class:`TraceTruncatedError` when any event was dropped.
    """

    def __init__(self, capacity: int = 1_000_000):
        self.events: List[TraceEvent] = []
        self.capacity = capacity
        #: Events discarded because the trace hit ``capacity``.
        self.dropped = 0
        self._warned = False

    def record(self, event: TraceEvent) -> None:
        if len(self.events) < self.capacity:
            self.events.append(event)
            return
        self.dropped += 1
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"Tracer capacity {self.capacity} reached; further "
                f"events are dropped (counted in .dropped). Invariant "
                f"helpers will refuse to certify this trace.",
                RuntimeWarning,
                stacklevel=2,
            )

    @property
    def truncated(self) -> bool:
        """Whether any event was dropped."""
        return self.dropped > 0

    def _require_complete(self, query: str) -> None:
        if self.dropped:
            raise TraceTruncatedError(len(self.events), self.dropped, query)

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def abort_reasons(self) -> Counter:
        """reason -> count over ``abort`` events (chaos accounting)."""
        return Counter(
            e.reason for e in self.events if e.kind == "abort"
        )

    def channel_loads(self) -> Counter:
        """(src, dst, vc) -> number of flit traversals (congestion map)."""
        return Counter(
            (e.src, e.dst, e.vc) for e in self.events if e.kind == "flit"
        )

    def max_flits_per_channel_cycle(self) -> int:
        """The microarchitectural invariant: must be <= 1.

        Raises :class:`TraceTruncatedError` on a truncated trace — a
        dropped ``flit`` event could hide a violation.
        """
        self._require_complete("max_flits_per_channel_cycle")
        counts = Counter(
            (e.cycle, e.src, e.dst, e.vc)
            for e in self.events
            if e.kind == "flit"
        )
        return max(counts.values(), default=0)

    def ownership_windows(
        self,
    ) -> Dict[Tuple[Node, Node, int], List[Tuple[int, int, int]]]:
        """Per channel: list of (acquire_cycle, release_cycle, msg_id)
        ownership windows (release -1 if never released).

        Raises :class:`TraceTruncatedError` on a truncated trace — a
        dropped ``acquire``/``release`` pairs up the wrong cycles.
        """
        self._require_complete("ownership_windows")
        open_windows: Dict[Tuple[Node, Node, int], Tuple[int, int]] = {}
        out: Dict[Tuple[Node, Node, int], List[Tuple[int, int, int]]] = {}
        for e in self.events:
            if e.kind not in ("acquire", "release"):
                continue
            key = (e.src, e.dst, e.vc)
            if e.kind == "acquire":
                open_windows[key] = (e.cycle, e.msg_id)
            else:
                start, mid = open_windows.pop(key, (-1, e.msg_id))
                out.setdefault(key, []).append((start, e.cycle, mid))
        for key, (start, mid) in open_windows.items():
            out.setdefault(key, []).append((start, -1, mid))
        return out

    def windows_are_exclusive(self) -> bool:
        """No two ownership windows of a channel overlap in time.

        Raises :class:`TraceTruncatedError` on a truncated trace (via
        :meth:`ownership_windows`) — certifying exclusivity from a
        partial stream would be a false positive factory.
        """
        self._require_complete("windows_are_exclusive")
        for windows in self.ownership_windows().values():
            spans = sorted(
                (s, e if e >= 0 else float("inf")) for (s, e, _) in windows
            )
            for (s1, e1), (s2, _) in zip(spans, spans[1:]):
                if s2 < e1:
                    return False
        return True
