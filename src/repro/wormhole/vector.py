"""Array-native batched step core for the ``"vector"`` engine.

The scan/frontier engines advance messages one flit at a time through
Python dict lookups.  The vector engine batches the per-cycle worklist
into struct-of-arrays numpy state — flat flit-position storage, interned
per-hop resource ids, and the :class:`ArrayVirtualNetwork` ownership /
occupancy / bandwidth arrays — so that in a saturated network one cycle
is a handful of vectorized operations instead of thousands of dict hits.

Exactness argument (pinned by the golden parity tests):

* Every *active* message (runnable or parked) claims a **window** — the
  resource ids its route touches between ``max(tail_pos, 0)`` and
  ``min(head_pos + 1, last_hop)``.  The sequential kernel
  (``WormholeSimulator._advance_message``) only ever reads or writes
  resources inside the acting message's window.
* A runnable message is **batchable** when its window overlaps no other
  active message's window and carries no park-waiters, and its flits
  satisfy the *all-move* conditions below.  Disjoint windows mean batch
  members commute with each other *and* with every sequentially-visited
  message this cycle, so applying the batch up front is observationally
  identical to interleaving it at the members' arbitration slots.
* The all-move validation mirrors the sequential kernel exactly: one
  entrant flit per cycle, strictly decreasing in-network positions
  (stacked flits share a channel and the second is stopped by the
  bandwidth stamp), per-flit channel stamps, head ownership/space rules
  (a head cannot benefit from its own later flits' pops — they run
  after it), body pops freeing the predecessor's buffer slot for the
  follower, and tail releases.  If any moving flit fails, the whole
  message falls back to the sequential kernel at its agenda slot.
* Batch members skip bandwidth-stamp writes entirely: a stamp is only
  ever read by same-cycle later visitors, all of whose windows are
  disjoint from batch windows by construction.

Deliveries, aborts, retries and live-fault teardown keep flowing
through the simulator's shared machinery; flit positions live in one
flat int64 store of which each ``Message.flit_pos`` is a numpy view, so
the sequential kernel and the chaos teardown paths observe batched
moves with zero synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from .network import ArrayVirtualNetwork, ResourceKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .packets import Message

__all__ = ["VectorState", "BatchResult"]


def _ragged_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[starts[i], starts[i] + counts[i])`` index ranges
    without a Python loop (repeat/cumsum trick).  ``counts`` must be
    non-negative."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.intp)
    nonzero = counts > 0
    s = starts[nonzero].astype(np.intp, copy=False)
    c = counts[nonzero].astype(np.intp, copy=False)
    out = np.ones(total, dtype=np.intp)
    ends = np.cumsum(c)
    out[0] = s[0]
    if s.size > 1:
        out[ends[:-1]] = s[1:] - (s[:-1] + c[:-1] - 1)
    return np.cumsum(out)


@dataclass
class _Replay:
    """Per-member movement record for exact trace replay (test path)."""

    fords: np.ndarray  # flit ordinals that moved, ascending
    nxts: np.ndarray  # hop index each moved onto
    acquired: bool  # head acquired a free resource this cycle


@dataclass
class BatchResult:
    moved: int = 0
    members: List[int] = field(default_factory=list)
    delivered: List[int] = field(default_factory=list)
    replay: Optional[Dict[int, _Replay]] = None


_EMPTY = BatchResult()


class VectorState:
    """Flat-array message state owned by a ``"vector"`` simulator."""

    def __init__(self, net: ArrayVirtualNetwork):
        self.net = net
        self.fp_store = np.zeros(1024, dtype=np.int64)
        self.fp_used = 0
        self.hid_store = np.zeros(1024, dtype=np.int64)
        self.hid_used = 0
        cap = 64
        self.m_fstart = np.zeros(cap, dtype=np.int64)
        self.m_nflits = np.zeros(cap, dtype=np.int64)
        self.m_hstart = np.zeros(cap, dtype=np.int64)
        self.m_nhops = np.zeros(cap, dtype=np.int64)
        self._linked: Dict[int, "Message"] = {}
        self._hops_of: Dict[int, object] = {}  # hops list identity
        self.waiter_count = np.zeros(256, dtype=np.int64)
        # Telemetry (published by the simulator).
        self.batched_messages = 0
        self.batched_flits = 0

    # -- registration ---------------------------------------------------
    def _ensure_meta(self, mid: int) -> None:
        cap = self.m_fstart.shape[0]
        if mid < cap:
            return
        new_cap = max(mid + 1, 2 * cap)
        for name in ("m_fstart", "m_nflits", "m_hstart", "m_nhops"):
            arr = getattr(self, name)
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[:cap] = arr
            setattr(self, name, grown)

    def _relink_views(self) -> None:
        """Re-point every registered message's ``flit_pos`` view after a
        store reallocation."""
        fp = self.fp_store
        for mid, m in self._linked.items():
            s = self.m_fstart[mid]
            m.flit_pos = fp[s : s + self.m_nflits[mid]]

    def _append_fp(self, values: np.ndarray) -> int:
        need = self.fp_used + values.size
        if need > self.fp_store.shape[0]:
            grown = np.zeros(max(need, 2 * self.fp_store.shape[0]),
                             dtype=np.int64)
            grown[: self.fp_used] = self.fp_store[: self.fp_used]
            self.fp_store = grown
            self._relink_views()
        start = self.fp_used
        self.fp_store[start:need] = values
        self.fp_used = need
        return start

    def _append_hids(self, hids: np.ndarray) -> int:
        need = self.hid_used + hids.size
        if need > self.hid_store.shape[0]:
            grown = np.zeros(max(need, 2 * self.hid_store.shape[0]),
                             dtype=np.int64)
            grown[: self.hid_used] = self.hid_store[: self.hid_used]
            self.hid_store = grown
        start = self.hid_used
        self.hid_store[start:need] = hids
        self.hid_used = need
        return start

    def register(self, m: "Message") -> None:
        """Adopt (or re-adopt, after a retry re-route) a message into
        the flat stores; ``m.flit_pos`` becomes a view into the store."""
        hids = self.net.intern_keys(m.hop_keys)
        mid = m.msg_id
        self._ensure_meta(mid)
        self.m_hstart[mid] = self._append_hids(hids)
        self.m_nhops[mid] = len(m.hops)
        fstart = self._append_fp(np.asarray(m.flit_pos, dtype=np.int64))
        self.m_fstart[mid] = fstart
        self.m_nflits[mid] = m.num_flits
        self._linked[mid] = m
        self._hops_of[mid] = m.hops
        m.flit_pos = self.fp_store[fstart : fstart + m.num_flits]

    def needs_reregister(self, m: "Message") -> bool:
        """Route replaced (retry / pre-injection re-route) or flit
        positions reset to a plain list by ``reset_for_retry``."""
        if self._hops_of.get(m.msg_id) is not m.hops:
            return True
        return not isinstance(m.flit_pos, np.ndarray)

    # -- park/wake waiter accounting ------------------------------------
    def _ensure_waiters(self, n: int) -> None:
        if n > self.waiter_count.shape[0]:
            grown = np.zeros(max(n, 2 * self.waiter_count.shape[0]),
                             dtype=np.int64)
            grown[: self.waiter_count.shape[0]] = self.waiter_count
            self.waiter_count = grown

    def waiter_delta(self, key: ResourceKey, delta: int) -> None:
        rid = self.net.intern_key(key)
        self._ensure_waiters(rid + 1)
        self.waiter_count[rid] += delta

    def reset_waiters(self) -> None:
        self.waiter_count[:] = 0

    # -- the batched step ------------------------------------------------
    def plan_and_apply(
        self,
        runnable: np.ndarray,
        parked: np.ndarray,
        collect_trace: bool,
    ) -> BatchResult:
        """Extract and apply this cycle's conflict-free all-move batch.

        ``runnable``/``parked`` are int64 arrays of message ids; parked
        messages contribute windows (so nobody batches over a resource a
        parked message sits on or waits for) but never act.
        """
        net = self.net
        nr = runnable.size
        if nr == 0:
            return _EMPTY
        mids = np.concatenate([runnable, parked]) if parked.size else runnable
        fstart = self.m_fstart[mids]
        nflits = self.m_nflits[mids]
        hstart = self.m_hstart[mids]
        last = self.m_nhops[mids] - 1
        fp_store = self.fp_store
        head = fp_store[fstart]
        tail = fp_store[fstart + nflits - 1]
        win_lo = np.maximum(tail, 0)
        win_hi = np.minimum(head + 1, last)
        wlen = win_hi - win_lo + 1
        wid = self.hid_store[_ragged_ranges(hstart + win_lo, wlen)]
        nres = net.num_resources
        self._ensure_waiters(nres)
        res_cnt = np.bincount(wid, minlength=nres)
        bad_rid = (res_cnt > 1) | (self.waiter_count[:nres] > 0)
        wseg = np.zeros(mids.size, dtype=np.intp)
        np.cumsum(wlen[:-1], out=wseg[1:])
        msg_conf = np.logical_or.reduceat(bad_rid[wid], wseg)
        cand = np.flatnonzero(~msg_conf[:nr])
        if cand.size == 0:
            return _EMPTY

        # Per-flit all-move validation over the candidates.
        cf_start = fstart[cand]
        cf_n = nflits[cand]
        fseg = np.zeros(cand.size, dtype=np.intp)
        np.cumsum(cf_n[:-1], out=fseg[1:])
        fidx = _ragged_ranges(cf_start, cf_n)
        fp = fp_store[fidx]
        crep = np.repeat(np.arange(cand.size), cf_n)
        ford = fidx - cf_start[crep]
        last_rep = last[cand][crep]
        mid_rep = mids[cand][crep]
        hstart_rep = hstart[cand][crep]
        nxt = fp + 1
        is_first = ford == 0
        is_last = ford == (cf_n[crep] - 1)
        prev_fp = np.empty_like(fp)
        prev_fp[0] = -2
        prev_fp[1:] = fp[:-1]
        prev_fp[is_first] = -2  # sentinel: masked wherever is_first
        moving = (nxt <= last_rep) & ((fp >= 0) | is_first | (prev_fp >= 0))
        # Guarded gathers (clip indices; garbage lanes are masked out).
        hid_nxt = self.hid_store[hstart_rep + np.minimum(nxt, last_rep)]
        own = net.owner_arr[hid_nxt]
        occ = net.occ_arr[hid_nxt]
        stamped = net.stamp_arr[hid_nxt] == net._stamp
        eject = nxt == last_rep
        space = occ < net.buffer_flits
        ok = np.ones(fp.shape, dtype=bool)
        nm = ~moving
        # Strictly decreasing in-network pipeline (stacked flits would
        # collide on one channel; the second one cannot move).
        ok &= nm | is_first | (prev_fp > fp) | (fp < 0)
        # The entrant is the only flit allowed to leave the queue, and
        # only behind an in-network predecessor (or as the head).
        ok &= nm | (fp >= 0) | is_first | (prev_fp >= 0)
        # Per-flit channel bandwidth.
        ok &= nm | ~stamped
        # Head: ownership (free or already ours) and downstream space
        # from state alone — its own followers pop after it.
        ok &= nm | ~is_first | (own < 0) | (own == mid_rep)
        ok &= nm | ~is_first | eject | space
        # Body: must own the hop it enters; space may come from the
        # predecessor popping that very buffer just before.
        ok &= nm | is_first | (own == mid_rep)
        ok &= nm | is_first | eject | space | (prev_fp == nxt)
        # A route that revisits one resource twice in the same cycle
        # serializes on the bandwidth stamp — not batchable.
        mv_ids = hid_nxt[moving]
        if mv_ids.size:
            c2 = np.bincount(mv_ids, minlength=nres)
            ok &= nm | (c2[hid_nxt] <= 1)
        msg_ok = np.logical_and.reduceat(ok, fseg)
        msg_any = np.logical_or.reduceat(moving, fseg)
        accept = msg_ok & msg_any
        acc_members = np.flatnonzero(accept)
        if acc_members.size == 0:
            return _EMPTY

        acc = moving & accept[crep]
        # Apply: flit advance (scatter into the store that every
        # Message.flit_pos views).
        adv = fidx[acc]
        fp_store[adv] += 1
        # Buffer occupancy: leave the old slot, enter the new.
        pops = acc & (fp >= 0) & (fp < last_rep)
        if pops.any():
            hid_pos = self.hid_store[hstart_rep[pops] + fp[pops]]
            np.add.at(net.occ_arr, hid_pos, -1)
        pushes = acc & ~eject
        if pushes.any():
            np.add.at(net.occ_arr, hid_nxt[pushes], 1)
        # Ownership: head acquisitions first, then tail releases (a
        # single-flit message acquires and releases the same hop in one
        # cycle, netting a free resource — same as the sequential path).
        acq = acc & is_first & (own < 0)
        if acq.any():
            net.owner_arr[hid_nxt[acq]] = mid_rep[acq]
        rel = acc & is_last
        if rel.any():
            net.owner_arr[hid_nxt[rel]] = -1
        # NOTE: no bandwidth-stamp writes — batch windows are disjoint
        # from every other active window, so no same-cycle visitor can
        # observe them, and stamps expire at the next new_cycle().
        moved = int(np.count_nonzero(acc))
        self.batched_messages += int(acc_members.size)
        self.batched_flits += moved

        # Deliveries: flits ejecting at the last hop.  ``c`` indexes
        # the candidate arrays; ``cand_mids[c]`` is the message id.
        cand_mids = mids[cand]
        deliv_counts = np.bincount(crep[acc & eject], minlength=cand.size)
        delivered: List[int] = []
        members = [int(cand_mids[c]) for c in acc_members]
        for c in np.flatnonzero(deliv_counts):
            m = self._linked[int(cand_mids[c])]
            m.delivered_flits += int(deliv_counts[c])
            if m.delivered_flits == m.num_flits:
                delivered.append(m.msg_id)
        replay: Optional[Dict[int, _Replay]] = None
        if collect_trace:
            replay = {}
            for c in acc_members:
                seg = slice(fseg[c], fseg[c] + cf_n[c])
                seg_acc = acc[seg]
                replay[int(cand_mids[c])] = _Replay(
                    fords=ford[seg][seg_acc],
                    nxts=nxt[seg][seg_acc],
                    acquired=bool(acq[seg].any()),
                )
        return BatchResult(
            moved=moved, members=members, delivered=delivered, replay=replay
        )
