"""Flit-level wormhole network simulator with virtual channels and a
live-fault chaos layer."""

from .chaos import (
    ChaosEngine,
    ChaosReport,
    FaultEvent,
    FaultSchedule,
    parse_fault_spec,
    seeded_chaos_run,
)
from .deadlock import (
    DeadlockError,
    SimulationError,
    SimulationTimeout,
    StallDiagnostics,
    build_wait_graph,
    find_deadlock_cycle,
    snapshot_stalls,
)
from .network import VirtualNetwork
from .packets import Hop, Message
from .simulator import WormholeSimulator
from .stats import SimStats
from .trace import SYSTEM_MSG_ID, TraceEvent, Tracer, TraceTruncatedError
from .traffic import (
    Injection,
    hotspot_traffic,
    permutation_traffic,
    transpose_traffic,
    uniform_random_traffic,
)

__all__ = [
    "WormholeSimulator",
    "VirtualNetwork",
    "Hop",
    "Message",
    "SimStats",
    "Tracer",
    "TraceEvent",
    "TraceTruncatedError",
    "SYSTEM_MSG_ID",
    "DeadlockError",
    "SimulationError",
    "SimulationTimeout",
    "StallDiagnostics",
    "build_wait_graph",
    "find_deadlock_cycle",
    "snapshot_stalls",
    "FaultEvent",
    "FaultSchedule",
    "parse_fault_spec",
    "ChaosEngine",
    "ChaosReport",
    "seeded_chaos_run",
    "Injection",
    "uniform_random_traffic",
    "permutation_traffic",
    "hotspot_traffic",
    "transpose_traffic",
]
