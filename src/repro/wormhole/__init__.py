"""Flit-level wormhole network simulator with virtual channels."""

from .deadlock import DeadlockError, build_wait_graph, find_deadlock_cycle
from .network import VirtualNetwork
from .packets import Hop, Message
from .simulator import WormholeSimulator
from .stats import SimStats
from .trace import TraceEvent, Tracer
from .traffic import (
    Injection,
    hotspot_traffic,
    permutation_traffic,
    transpose_traffic,
    uniform_random_traffic,
)

__all__ = [
    "WormholeSimulator",
    "VirtualNetwork",
    "Hop",
    "Message",
    "SimStats",
    "Tracer",
    "TraceEvent",
    "DeadlockError",
    "build_wait_graph",
    "find_deadlock_cycle",
    "Injection",
    "uniform_random_traffic",
    "permutation_traffic",
    "hotspot_traffic",
    "transpose_traffic",
]
