"""Traffic pattern generators for the wormhole simulator.

All generators respect the lamb discipline: sources and destinations
are drawn only from a caller-supplied endpoint pool (the survivor
nodes); lambs and faulty nodes never inject or eject (Section 1's
definition of a lamb).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..mesh.geometry import Mesh, Node

__all__ = [
    "Injection",
    "uniform_random_traffic",
    "permutation_traffic",
    "hotspot_traffic",
    "transpose_traffic",
]


@dataclass(frozen=True)
class Injection:
    """One message request for the simulator."""

    source: Node
    dest: Node
    num_flits: int
    inject_cycle: int


def _as_list(endpoints: Sequence[Node]) -> List[Node]:
    out = [tuple(v) for v in endpoints]
    if len(out) < 2:
        raise ValueError("need at least two endpoints")
    return out


def uniform_random_traffic(
    endpoints: Sequence[Node],
    num_messages: int,
    rng: np.random.Generator,
    num_flits: int = 16,
    inject_window: int = 0,
) -> List[Injection]:
    """Uniformly random (source, destination) pairs, src != dst.

    ``inject_window`` spreads injection cycles uniformly over
    ``[0, inject_window]`` (0 = all at cycle 0).
    """
    pool = _as_list(endpoints)
    out = []
    for _ in range(num_messages):
        i = int(rng.integers(len(pool)))
        j = int(rng.integers(len(pool) - 1))
        if j >= i:
            j += 1
        when = int(rng.integers(inject_window + 1)) if inject_window else 0
        out.append(Injection(pool[i], pool[j], num_flits, when))
    return out


def permutation_traffic(
    endpoints: Sequence[Node],
    rng: np.random.Generator,
    num_flits: int = 16,
) -> List[Injection]:
    """A random permutation workload: every endpoint sends to a
    distinct endpoint (a derangement, so nobody sends to itself)."""
    pool = _as_list(endpoints)
    n = len(pool)
    while True:
        perm = rng.permutation(n)
        if not np.any(perm == np.arange(n)):
            break
    return [
        Injection(pool[i], pool[int(perm[i])], num_flits, 0) for i in range(n)
    ]


def hotspot_traffic(
    endpoints: Sequence[Node],
    num_messages: int,
    rng: np.random.Generator,
    hotspot: Optional[Node] = None,
    hotspot_fraction: float = 0.5,
    num_flits: int = 16,
) -> List[Injection]:
    """Uniform traffic where a fraction of messages targets one hot
    node (classic congestion stressor)."""
    pool = _as_list(endpoints)
    hot = tuple(hotspot) if hotspot is not None else pool[0]
    if hot not in pool:
        raise ValueError("hotspot must be an endpoint")
    out = []
    for _ in range(num_messages):
        i = int(rng.integers(len(pool)))
        if rng.random() < hotspot_fraction and pool[i] != hot:
            dst = hot
        else:
            j = int(rng.integers(len(pool) - 1))
            if j >= i:
                j += 1
            dst = pool[j]
        out.append(Injection(pool[i], dst, num_flits, 0))
    return out


def transpose_traffic(
    mesh: Mesh,
    endpoints: Sequence[Node],
    num_flits: int = 16,
) -> List[Injection]:
    """Matrix-transpose pattern on square 2D meshes: ``(x, y)`` sends
    to ``(y, x)`` whenever both ends are usable endpoints."""
    if mesh.d != 2 or mesh.widths[0] != mesh.widths[1]:
        raise ValueError("transpose traffic needs a square 2D mesh")
    pool = set(_as_list(endpoints))
    out = []
    for (x, y) in sorted(pool):
        dst = (y, x)
        if dst != (x, y) and dst in pool:
            out.append(Injection((x, y), dst, num_flits, 0))
    return out
