"""Messages and their wormhole state.

A message is a sequence of *flits* (flow control units, Section 1)
that follow the same path in a pipelined manner.  The path is a
k-round dimension-ordered route materialized by
:func:`repro.routing.find_k_round_route`; each hop is annotated with
the virtual channel of its round (round ``t`` uses VC ``t``), which is
exactly the paper's deadlock-avoidance discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..mesh.geometry import Node

__all__ = ["Hop", "Message"]


@dataclass(frozen=True)
class Hop:
    """One physical-link traversal of a route.

    Attributes
    ----------
    src, dst:
        Link endpoints.
    vc:
        Virtual channel used on this hop (= the routing round).
    """

    src: Node
    dst: Node
    vc: int


@dataclass
class Message:
    """A wormhole message in flight.

    The flit occupancy is tracked as ``flit_pos[f]``: the index of the
    last hop flit ``f`` has crossed (-1 = still queued at the source).
    ``flit_pos`` is non-increasing in ``f`` and adjacent flits are at
    most ``buffer_flits`` hops apart (wormhole back-pressure).
    """

    msg_id: int
    source: Node
    dest: Node
    num_flits: int
    hops: List[Hop]
    inject_cycle: int
    flit_pos: List[int] = field(default_factory=list)
    owned_upto: int = -1  # highest hop index whose (link, vc) we hold
    delivered_flits: int = 0
    deliver_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_flits < 1:
            raise ValueError("a message needs at least one flit")
        if not self.flit_pos:
            self.flit_pos = [-1] * self.num_flits

    @property
    def num_hops(self) -> int:
        return len(self.hops)

    @property
    def head_pos(self) -> int:
        return self.flit_pos[0]

    @property
    def tail_pos(self) -> int:
        return self.flit_pos[-1]

    @property
    def is_delivered(self) -> bool:
        return self.deliver_cycle is not None

    @property
    def latency(self) -> Optional[int]:
        """Injection-to-tail-delivery latency in cycles."""
        if self.deliver_cycle is None:
            return None
        return self.deliver_cycle - self.inject_cycle

    def next_hop_index(self) -> Optional[int]:
        """Index of the hop the head wants next, or None if the head
        has crossed every hop (zero-hop messages deliver instantly)."""
        nxt = self.head_pos + 1
        return nxt if nxt < self.num_hops else None

    def path_nodes(self) -> List[Node]:
        """The full node path (source first)."""
        out = [self.source]
        out.extend(h.dst for h in self.hops)
        return out
