"""Messages and their wormhole state.

A message is a sequence of *flits* (flow control units, Section 1)
that follow the same path in a pipelined manner.  The path is a
k-round dimension-ordered route materialized by
:func:`repro.routing.find_k_round_route`; each hop is annotated with
the virtual channel of its round (round ``t`` uses VC ``t``), which is
exactly the paper's deadlock-avoidance discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..mesh.geometry import Node

__all__ = ["Hop", "Message"]


@dataclass(frozen=True)
class Hop:
    """One physical-link traversal of a route.

    Attributes
    ----------
    src, dst:
        Link endpoints.
    vc:
        Virtual channel used on this hop (= the routing round).
    """

    src: Node
    dst: Node
    vc: int


@dataclass
class Message:
    """A wormhole message in flight.

    The flit occupancy is tracked as ``flit_pos[f]``: the index of the
    last hop flit ``f`` has crossed (-1 = still queued at the source).
    ``flit_pos`` is non-increasing in ``f`` and adjacent flits are at
    most ``buffer_flits`` hops apart (wormhole back-pressure).
    """

    msg_id: int
    source: Node
    dest: Node
    num_flits: int
    hops: List[Hop]
    inject_cycle: int
    flit_pos: List[int] = field(default_factory=list)
    owned_upto: int = -1  # highest hop index whose (link, vc) we hold
    delivered_flits: int = 0
    deliver_cycle: Optional[int] = None
    # --- live-fault (chaos) lifecycle --------------------------------
    attempts: int = 1  # 1 = never retried
    abort_cycle: Optional[int] = None
    abort_reason: Optional[str] = None
    first_inject_cycle: int = -1  # original injection (pre-retry)
    # Cached (src, dst, vc) resource keys for the current ``hops`` list
    # (the simulator's hot-path dict keys; see :attr:`hop_keys`).
    _hop_keys: Optional[List[Tuple[Node, Node, int]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _hop_keys_for: Optional[List[Hop]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.num_flits < 1:
            raise ValueError("a message needs at least one flit")
        if not self.flit_pos:
            self.flit_pos = [-1] * self.num_flits
        if self.first_inject_cycle < 0:
            self.first_inject_cycle = self.inject_cycle

    @property
    def num_hops(self) -> int:
        return len(self.hops)

    @property
    def hop_keys(self) -> List[Tuple[Node, Node, int]]:
        """Precomputed ``(src, dst, vc)`` resource keys, one per hop.

        These are the O(1) dict keys the simulator's inner loop hands
        to :class:`repro.wormhole.network.VirtualNetwork`'s ``*_key``
        methods, so no tuples are rebuilt per flit per cycle.  The
        cache is keyed on the *identity* of :attr:`hops`: routes are
        only ever replaced wholesale (retry / pre-injection re-route),
        never mutated in place, so an ``is`` check is sufficient.
        """
        if self._hop_keys_for is not self.hops:
            self._hop_keys = [(h.src, h.dst, h.vc) for h in self.hops]
            self._hop_keys_for = self.hops
        return self._hop_keys

    @property
    def head_pos(self) -> int:
        return self.flit_pos[0]

    @property
    def tail_pos(self) -> int:
        return self.flit_pos[-1]

    @property
    def is_delivered(self) -> bool:
        return self.deliver_cycle is not None

    @property
    def is_aborted(self) -> bool:
        """Permanently given up on (endpoint died, unreachable after a
        live fault, or the retry budget ran out)."""
        return self.abort_reason is not None

    @property
    def is_finished(self) -> bool:
        """Terminal either way: delivered or explicitly aborted."""
        return self.is_delivered or self.is_aborted

    @property
    def was_retried(self) -> bool:
        return self.attempts > 1

    def reset_for_retry(self, hops: List[Hop], inject_cycle: int) -> None:
        """Re-arm the message on a fresh route after a live-fault abort
        (all flits back at the source, nothing delivered)."""
        self.hops = hops
        self.inject_cycle = int(inject_cycle)
        self.flit_pos = [-1] * self.num_flits
        self.delivered_flits = 0
        self.attempts += 1

    @property
    def latency(self) -> Optional[int]:
        """Injection-to-tail-delivery latency in cycles."""
        if self.deliver_cycle is None:
            return None
        return self.deliver_cycle - self.inject_cycle

    @property
    def total_latency(self) -> Optional[int]:
        """First-injection-to-delivery latency, including time lost to
        live-fault aborts, backoff and retries."""
        if self.deliver_cycle is None:
            return None
        return self.deliver_cycle - self.first_inject_cycle

    def next_hop_index(self) -> Optional[int]:
        """Index of the hop the head wants next, or None if the head
        has crossed every hop (zero-hop messages deliver instantly)."""
        nxt = self.head_pos + 1
        return nxt if nxt < self.num_hops else None

    def path_nodes(self) -> List[Node]:
        """The full node path (source first)."""
        out = [self.source]
        out.extend(h.dst for h in self.hops)
        return out
