"""Live-fault chaos engine for the wormhole simulator.

The paper's deployment story (Section 1, quoted in
:mod:`repro.core.reconfigure`) is a *roll-back loop*: faults appear at
runtime, the machine checkpoints, rolls back, and reconfigures with a
fresh lamb set.  This module closes that loop in simulation:

- :class:`FaultEvent` / :class:`FaultSchedule` describe *when* nodes
  and links die mid-simulation (explicit, parsed from CLI specs, or
  seeded-random);
- :class:`repro.wormhole.WormholeSimulator` consumes a schedule
  natively — it tears affected messages out of the network, drains
  their flits, and re-injects them with bounded retry + exponential
  backoff on a post-fault route;
- :class:`ChaosEngine` additionally wires a
  :class:`repro.core.ReconfigurationManager` into the loop so every
  fault event triggers a checkpoint/rollback epoch (survivor set
  shrinks, sticky lambs kept), with the degradation ladder of
  ``report_faults_degraded`` — escalate to k+1 rounds, then quarantine
  the unreachable region — when the lamb set explodes;
- :func:`seeded_chaos_run` packages a fully deterministic end-to-end
  scenario (used by the ``repro chaos`` CLI, the experiments sweep and
  the CI smoke test).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..mesh.faults import FaultSet, random_node_faults
from ..mesh.geometry import Link, Mesh, Node
from ..routing.ordering import KRoundOrdering, ascending, repeated
from .stats import SimStats
from .traffic import uniform_random_traffic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.reconfigure import Epoch

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "parse_fault_spec",
    "ChaosEngine",
    "ChaosReport",
    "seeded_chaos_run",
]


# ----------------------------------------------------------------------
# Fault schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """Hardware dying at a given simulator cycle.

    ``node_faults`` kill nodes (and implicitly their incident links);
    ``link_faults`` kill *directed* links.
    """

    cycle: int
    node_faults: Tuple[Node, ...] = ()
    link_faults: Tuple[Link, ...] = ()

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("fault events cannot predate cycle 0")
        object.__setattr__(
            self,
            "node_faults",
            tuple(tuple(int(x) for x in v) for v in self.node_faults),
        )
        object.__setattr__(
            self,
            "link_faults",
            tuple(
                (tuple(int(x) for x in u), tuple(int(x) for x in w))
                for (u, w) in self.link_faults
            ),
        )

    @property
    def num_faults(self) -> int:
        return len(self.node_faults) + len(self.link_faults)


def parse_fault_spec(text: str) -> FaultEvent:
    """Parse a CLI fault spec into a single-fault :class:`FaultEvent`.

    Formats::

        CYCLE:X,Y          node (X, Y) dies at CYCLE
        CYCLE:X,Y-U,V      directed link <(X,Y), (U,V)> dies at CYCLE

    (any dimensionality: ``120:1,2,3`` is a 3D node).
    """
    head, _, body = text.partition(":")
    if not body:
        raise ValueError(f"bad fault spec {text!r}; use CYCLE:X,Y or CYCLE:X,Y-U,V")
    try:
        cycle = int(head)
    except ValueError:
        raise ValueError(f"bad cycle in fault spec {text!r}")
    try:
        if "-" in body:
            a, b = body.split("-")
            u = tuple(int(x) for x in a.split(","))
            w = tuple(int(x) for x in b.split(","))
            return FaultEvent(cycle, (), ((u, w),))
        v = tuple(int(x) for x in body.split(","))
        return FaultEvent(cycle, (v,), ())
    except ValueError:
        raise ValueError(f"bad coordinates in fault spec {text!r}")


class FaultSchedule:
    """An immutable, cycle-sorted sequence of :class:`FaultEvent`.

    The simulator consumes events whose cycle has arrived at the start
    of each :meth:`~repro.wormhole.WormholeSimulator.step`; events are
    merged per cycle so one cycle produces one reconfiguration epoch.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[FaultEvent] = ()):
        merged: dict = {}
        for ev in events:
            if ev.cycle in merged:
                prev = merged[ev.cycle]
                merged[ev.cycle] = FaultEvent(
                    ev.cycle,
                    prev.node_faults + ev.node_faults,
                    prev.link_faults + ev.link_faults,
                )
            else:
                merged[ev.cycle] = ev
        self.events: Tuple[FaultEvent, ...] = tuple(
            merged[c] for c in sorted(merged)
        )

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __getitem__(self, i: int) -> FaultEvent:
        return self.events[i]

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_cycle(self) -> int:
        """Cycle of the final event (-1 when empty)."""
        return self.events[-1].cycle if self.events else -1

    @property
    def total_faults(self) -> int:
        return sum(ev.num_faults for ev in self.events)

    # ------------------------------------------------------------------
    @classmethod
    def from_specs(cls, specs: Iterable[str]) -> "FaultSchedule":
        """Build from CLI ``--inject-fault`` strings."""
        return cls(parse_fault_spec(s) for s in specs)

    @classmethod
    def random(
        cls,
        mesh: Mesh,
        num_events: int,
        rng: np.random.Generator,
        cycle_span: Tuple[int, int] = (20, 260),
        nodes_per_event: int = 1,
        links_per_event: int = 0,
        avoid: Iterable[Sequence[int]] = (),
    ) -> "FaultSchedule":
        """``num_events`` seeded-random fault events.

        Event cycles are drawn uniformly in ``cycle_span`` (distinct,
        sorted); victims are distinct nodes outside ``avoid`` (e.g. the
        already-faulty set) plus optional random directed links.
        """
        lo, hi = cycle_span
        if hi <= lo:
            raise ValueError("cycle_span must be a nonempty range")
        if num_events < 1:
            return cls()
        taken = {tuple(int(x) for x in v) for v in avoid}
        candidates = [v for v in mesh.nodes() if v not in taken]
        need = num_events * nodes_per_event
        if need > len(candidates):
            raise ValueError("not enough healthy nodes to kill")
        cycles = sorted(
            int(c)
            for c in rng.choice(
                np.arange(lo, hi), size=num_events, replace=False
            )
        )
        picks = rng.choice(len(candidates), size=need, replace=False)
        all_links = list(mesh.links())
        events = []
        for e, cycle in enumerate(cycles):
            nodes = tuple(
                candidates[int(i)]
                for i in picks[e * nodes_per_event : (e + 1) * nodes_per_event]
            )
            links: Tuple[Link, ...] = ()
            if links_per_event:
                li = rng.choice(len(all_links), size=links_per_event, replace=False)
                links = tuple(all_links[int(i)] for i in li)
            events.append(FaultEvent(cycle, nodes, links))
        return cls(events)


# ----------------------------------------------------------------------
# The chaos engine: simulator + reconfiguration loop
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Everything a chaos run produced.

    ``stats`` carries the no-silent-loss accounting (delivered /
    retried-then-delivered / aborted-with-reason); ``epochs`` the
    reconfiguration history including degradation (escalated rounds,
    quarantined regions).
    """

    stats: SimStats
    epochs: List["Epoch"] = field(default_factory=list)
    fault_events_applied: int = 0
    quarantined: Tuple[Node, ...] = ()
    final_rounds: int = 0

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    @property
    def fully_accounted(self) -> bool:
        """Every injected message is delivered or explicitly aborted."""
        return self.stats.all_accounted

    def summary(self) -> str:
        s = self.stats
        lines = [
            f"epochs {self.num_epochs} | fault events {self.fault_events_applied}"
            f" | final rounds {self.final_rounds}",
            f"messages {s.total_messages}: delivered {s.delivered} "
            f"(retried-then-delivered {s.retried_delivered}), "
            f"aborted {s.aborted}, in flight {s.in_flight}",
        ]
        if s.abort_reasons:
            lines.append(
                "abort reasons: "
                + ", ".join(f"{r} x{n}" for r, n in s.abort_reasons)
            )
        if self.quarantined:
            lines.append(f"quarantined nodes: {len(self.quarantined)}")
        for e in self.epochs:
            extra = ""
            if e.escalated_rounds:
                extra += f" escalated +{e.escalated_rounds} round(s)"
            if e.quarantined:
                extra += f" quarantined {len(e.quarantined)} node(s)"
            lines.append(
                f"  epoch {e.index} @cycle {e.at_cycle}: faults {e.num_faults} "
                f"lambs {e.num_lambs} survivors {e.num_survivors}{extra}"
            )
        return "\n".join(lines)


class ChaosEngine:
    """Drives a live-fault simulation through rollback/reconfigure
    epochs.

    Each fault event the simulator applies triggers (via the
    ``on_fault`` hook) a reconfiguration epoch on the embedded
    :class:`~repro.core.ReconfigurationManager` *before* torn-out
    messages are re-routed, so retries always use post-reconfiguration
    fault knowledge.  Degradation (round escalation, quarantine) is
    propagated back into the simulator: escalated orderings grow the
    VC count, quarantined nodes become forbidden retry endpoints.

    Parameters
    ----------
    faults:
        Initial (cycle-0) fault state; may be empty.
    orderings:
        The starting k-round discipline.
    schedule:
        Mid-flight fault arrivals.
    lamb_budget, max_extra_rounds:
        Degradation ladder knobs (see
        ``ReconfigurationManager.report_faults_degraded``).  The
        default budget is 25% of the mesh.
    """

    def __init__(
        self,
        faults: FaultSet,
        orderings: KRoundOrdering,
        schedule: FaultSchedule,
        *,
        lamb_budget: Optional[int] = None,
        max_extra_rounds: int = 1,
        sticky_lambs: bool = True,
        method: str = "bipartite",
        engine: str = "lines",
        buffer_flits: int = 2,
        policy: str = "shortest",
        seed: int = 0,
        max_retries: int = 3,
        retry_backoff: int = 8,
        tracer=None,
    ):
        from ..core.reconfigure import ReconfigurationManager
        from .simulator import WormholeSimulator

        mesh = faults.mesh
        if lamb_budget is None:
            lamb_budget = max(4, mesh.num_nodes // 4)
        self.lamb_budget = lamb_budget
        self.max_extra_rounds = max_extra_rounds
        self.manager = ReconfigurationManager(
            mesh,
            orderings,
            sticky_lambs=sticky_lambs,
            method=method,
            engine=engine,
        )
        # Epoch 0: reconfigure for the initial fault state (possibly
        # empty) so the survivor set is defined before traffic starts.
        self.manager.report_faults_degraded(
            node_faults=faults.node_faults,
            link_faults=faults.link_faults,
            lamb_budget=self.lamb_budget,
            max_extra_rounds=self.max_extra_rounds,
            at_cycle=0,
        )
        self.sim = WormholeSimulator(
            faults,
            self.manager.orderings,
            buffer_flits=buffer_flits,
            policy=policy,
            seed=seed,
            schedule=schedule,
            on_fault=self._on_fault,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            tracer=tracer,
        )
        if self.manager.quarantined:
            self.sim.quarantine(self.manager.quarantined)

    # ------------------------------------------------------------------
    def _on_fault(self, event: FaultEvent, new_nodes, new_links) -> None:
        """Simulator hook: one fault event -> one rollback epoch."""
        epoch = self.manager.report_faults_degraded(
            node_faults=new_nodes,
            link_faults=new_links,
            lamb_budget=self.lamb_budget,
            max_extra_rounds=self.max_extra_rounds,
            at_cycle=self.sim.cycle,
        )
        if self.manager.orderings.k > self.sim.orderings.k:
            self.sim.set_orderings(self.manager.orderings)
        if epoch.quarantined:
            self.sim.quarantine(epoch.quarantined)

    # ------------------------------------------------------------------
    def survivors(self) -> List[Node]:
        """Current usable endpoints: survivors of the latest epoch
        minus anything quarantined."""
        current = self.manager.current
        assert current is not None
        q = set(self.manager.quarantined)
        return [v for v in current.result.survivors() if v not in q]

    def load_uniform_traffic(
        self,
        num_messages: int,
        rng: np.random.Generator,
        num_flits: int = 4,
        inject_window: int = 60,
    ) -> int:
        """Queue uniform random traffic among the current survivors."""
        endpoints = self.survivors()
        if len(endpoints) < 2:
            raise ValueError("need at least two survivors for traffic")
        n = 0
        for inj in uniform_random_traffic(
            endpoints,
            num_messages,
            rng,
            num_flits=num_flits,
            inject_window=inject_window,
        ):
            self.sim.send(inj.source, inj.dest, inj.num_flits, inj.inject_cycle)
            n += 1
        return n

    def run(self, max_cycles: int = 100_000) -> ChaosReport:
        """Run to completion and return the full report."""
        stats = self.sim.run(max_cycles=max_cycles)
        return self.report(stats)

    def report(self, stats: Optional[SimStats] = None) -> ChaosReport:
        if stats is None:
            stats = self.sim.stats()
        return ChaosReport(
            stats=stats,
            epochs=list(self.manager.epochs),
            fault_events_applied=self.sim.fault_events_applied,
            quarantined=tuple(sorted(self.manager.quarantined)),
            final_rounds=self.manager.orderings.k,
        )


# ----------------------------------------------------------------------
# Canonical deterministic scenario (CLI / experiments / CI smoke)
# ----------------------------------------------------------------------
def seeded_chaos_run(
    widths: Sequence[int] = (8, 8),
    initial_faults: int = 2,
    num_messages: int = 120,
    num_events: int = 3,
    seed: int = 0,
    num_flits: int = 4,
    inject_window: int = 80,
    cycle_span: Tuple[int, int] = (20, 260),
    nodes_per_event: int = 1,
    links_per_event: int = 0,
    rounds: int = 2,
    max_cycles: int = 100_000,
    lamb_budget: Optional[int] = None,
    max_extra_rounds: int = 1,
    tracer=None,
) -> ChaosReport:
    """One fully deterministic chaos scenario.

    Every random draw (initial faults, fault schedule, traffic, route
    tie-breaks) derives from ``seed``, so two invocations with the same
    arguments produce identical reports.
    """
    mesh = Mesh(tuple(int(w) for w in widths))
    rng = np.random.default_rng(seed)
    faults = (
        random_node_faults(mesh, initial_faults, rng)
        if initial_faults
        else FaultSet(mesh)
    )
    schedule = FaultSchedule.random(
        mesh,
        num_events,
        rng,
        cycle_span=cycle_span,
        nodes_per_event=nodes_per_event,
        links_per_event=links_per_event,
        avoid=faults.node_faults,
    )
    engine = ChaosEngine(
        faults,
        repeated(ascending(mesh.d), rounds),
        schedule,
        seed=seed,
        lamb_budget=lamb_budget,
        max_extra_rounds=max_extra_rounds,
        tracer=tracer,
    )
    engine.load_uniform_traffic(
        num_messages, rng, num_flits=num_flits, inject_window=inject_window
    )
    return engine.run(max_cycles=max_cycles)
