"""Cycle-driven flit-level wormhole simulator.

Simulates deterministic k-round dimension-ordered wormhole routing on
a faulty mesh with one virtual channel per round (the paper's
deadlock-free discipline) — the simulated stand-in for the Blue Gene
3D-mesh hardware the paper targets.

Model (standard wormhole switching, Dally & Seitz [8]):

- a message's flits follow one path in a pipelined manner;
- each (link, VC) resource carries one flit per cycle, is exclusively
  owned from head arrival to tail departure, and has a small
  downstream buffer (``buffer_flits``);
- a blocked head leaves all flits in place (no buffering of whole
  messages at intermediate nodes — crucially, a message *continues in
  a pipelined fashion through all k rounds*, Section 1);
- ejection consumes flits immediately at the destination; injection
  waits until the first hop's resource is acquired.

Arbitration is oldest-first (by injection cycle, then message id),
which is deterministic and starvation-free.

Engines
-------
Three cycle-exact step engines are provided:

``"scan"``
    The historical reference loop: every cycle visits every active
    message (O(messages) per cycle even when almost everything is
    blocked or still queued).

``"frontier"`` (default)
    An event-driven fast path.  Messages waiting for a future
    injection cycle sit in a heap; messages whose head is blocked on
    a (link, VC) resource held by another message — or on a full
    downstream buffer — are *parked* on those resource keys and only
    re-enter the per-cycle agenda when the blocking resource is
    released or its buffer is popped.  Visits of blocked messages
    have no side effects (a head acquires a resource only when it
    also moves), so parking a message that could not have moved is
    observationally identical to scanning it; same-cycle wake-ups are
    inserted into the agenda *after* the current arbitration position
    only, which reproduces the scan's snapshot visit order exactly.
    Live-fault events conservatively rebuild the whole frontier.

``"vector"``
    Array-native batched engine built on top of the frontier
    machinery.  Resource state lives in flat numpy arrays
    (:class:`ArrayVirtualNetwork`), flit positions live in one flat
    store of which each ``Message.flit_pos`` is a view, and every
    cycle the conflict-free *all-move* subset of the runnable set is
    advanced in a handful of vectorized scatters
    (:class:`repro.wormhole.vector.VectorState`); only messages with
    overlapping resource windows fall back to the sequential kernel
    at their arbitration slot.  Under saturation — many concurrently
    moving messages — one cycle collapses from thousands of dict
    operations to a few dozen numpy kernels.

All engines share the flit-advance kernel (:meth:`_advance_message`)
and produce bit-identical :class:`SimStats`, trace streams and
deadlock diagnostics; golden tests pin the frontier and vector
engines against the scan engine on seeded scenarios.  Select with
``engine=`` or the ``REPRO_SIM_ENGINE`` environment variable.

Route cache
-----------
:meth:`build_hops` memoizes materialized routes per ``(src, dst)``
pair within a *routing epoch*; the cache is invalidated whenever the
fault state or the k-round ordering changes (live-fault events,
:meth:`set_orderings`).  Note the rng is only consulted on cache
misses, so enabling the cache changes *which* tie-break draws are
consumed relative to the historical behaviour (set
``route_cache=False`` to restore the draw-per-call stream); for any
fixed configuration the simulation itself remains deterministic.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.geometry import Link, Node
from ..obs import get_registry
from ..routing.multiround import FaultGrids, find_k_round_route
from ..routing.ordering import KRoundOrdering
from .deadlock import (
    DeadlockError,
    SimulationTimeout,
    build_wait_graph,
    find_deadlock_cycle,
    snapshot_stalls,
)
from .network import ArrayVirtualNetwork, ResourceKey, VirtualNetwork
from .packets import Hop, Message
from .stats import SimStats
from .trace import SYSTEM_MSG_ID, TraceEvent, Tracer
from .vector import VectorState, _Replay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chaos import FaultEvent, FaultSchedule

__all__ = ["WormholeSimulator", "SIM_ENGINES"]

#: Abort reasons attached to messages torn out by live faults.
ABORT_ENDPOINT_FAILED = "endpoint-failed"
ABORT_UNREACHABLE = "unreachable-after-fault"
ABORT_RETRY_BUDGET = "retry-budget-exhausted"
ABORT_QUARANTINED = "quarantined"

#: Valid ``engine=`` values.
SIM_ENGINES = ("frontier", "scan", "vector")

_MISSING = object()  # route-cache sentinel (None is a cached miss)


def _default_engine() -> str:
    want = os.environ.get("REPRO_SIM_ENGINE", "").strip()
    return want if want else "frontier"


class WormholeSimulator:
    """Flit-level simulator of k-round DOR wormhole routing.

    Parameters
    ----------
    faults:
        The faulty mesh.
    orderings:
        k-round ordering; round ``t`` travels on VC ``t`` by default.
    buffer_flits:
        Per-resource downstream buffer depth.
    policy:
        Intermediate-node policy for route materialization (see
        :func:`repro.routing.find_k_round_route`).
    vc_of_round:
        Maps round index -> VC.  The default (identity) is the paper's
        deadlock-free discipline; pass ``lambda t: 0`` to deliberately
        break it and watch :class:`DeadlockError` fire.
    deadlock_check_every:
        How often (cycles without any flit movement) to run the
        wait-graph cycle detector.
    tracer:
        Optional :class:`repro.wormhole.Tracer` recording the event
        stream (injections, acquisitions, flit hops, deliveries).
    schedule:
        Optional :class:`repro.wormhole.FaultSchedule` of *live* fault
        events.  At the start of each cycle, due events are applied:
        the fault state grows, in-flight messages whose remaining path
        crosses a new fault are aborted and drained, and each victim is
        re-injected on a fresh route with bounded retry + exponential
        backoff (or aborted with an explicit reason).
    on_fault:
        Callback ``(event, new_node_faults, new_link_faults)`` invoked
        after a fault event is applied and victims are drained but
        *before* they are re-routed — the hook where
        :class:`repro.wormhole.ChaosEngine` runs the checkpoint /
        rollback / reconfigure epoch.
    max_retries:
        How many times a torn-out message may be re-injected before it
        is aborted with ``retry-budget-exhausted``.
    retry_backoff:
        Base re-injection delay in cycles; retry ``r`` waits
        ``retry_backoff * 2**(r-1)`` cycles (exponential backoff).
    engine:
        Step engine: ``"frontier"`` (event-driven fast path, the
        default), ``"scan"`` (historical per-cycle full scan) or
        ``"vector"`` (array-native batched stepper); all three are
        cycle-exact.  ``None`` reads ``REPRO_SIM_ENGINE`` from the
        environment, falling back to ``"frontier"``.
    route_cache:
        Memoize :meth:`build_hops` per (src, dst) within a routing
        epoch (invalidated on live faults / :meth:`set_orderings`).
    """

    def __init__(
        self,
        faults: FaultSet,
        orderings: KRoundOrdering,
        buffer_flits: int = 2,
        policy: str = "shortest",
        vc_of_round: Optional[Callable[[int], int]] = None,
        num_vcs: Optional[int] = None,
        seed: int = 0,
        deadlock_check_every: int = 4,
        tracer: Optional[Tracer] = None,
        schedule: Optional["FaultSchedule"] = None,
        on_fault: Optional[
            Callable[["FaultEvent", Tuple[Node, ...], Tuple[Link, ...]], None]
        ] = None,
        max_retries: int = 3,
        retry_backoff: int = 8,
        engine: Optional[str] = None,
        route_cache: bool = True,
    ):
        self.faults = faults
        self.mesh = faults.mesh
        self.orderings = orderings
        self.policy = policy
        self._vc_of_round = vc_of_round or (lambda t: t)
        # --- engine selection (before the network: the vector engine
        # needs the array-backed resource state) -----------------------
        engine = _default_engine() if engine is None else engine
        if engine not in SIM_ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of "
                             f"{SIM_ENGINES}")
        self.engine = engine
        net_cls = ArrayVirtualNetwork if engine == "vector" else VirtualNetwork
        self.net = net_cls(
            faults,
            num_vcs=(orderings.k if num_vcs is None else num_vcs),
            buffer_flits=buffer_flits,
        )
        self._vector: Optional[VectorState] = (
            VectorState(self.net) if engine == "vector" else None
        )
        self.grids = FaultGrids(faults)
        self.rng = np.random.default_rng(seed)
        self.cycle = 0
        self.messages: Dict[int, Message] = {}
        self._next_id = 0
        self._deadlock_check_every = deadlock_check_every
        self._idle_cycles = 0
        self.tracer = tracer
        self.schedule = schedule
        self._schedule_pos = 0
        self.on_fault = on_fault
        if max_retries < 0 or retry_backoff < 1:
            raise ValueError("need max_retries >= 0 and retry_backoff >= 1")
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.quarantined: Set[Node] = set()
        self.fault_events_applied = 0
        # --- route cache ----------------------------------------------
        self._route_cache_enabled = bool(route_cache)
        self._route_cache: Dict[Tuple[Node, Node], Optional[List[Hop]]] = {}
        self.routing_epoch = 0
        # --- frontier state -------------------------------------------
        # Messages waiting for a future inject_cycle, as a min-heap of
        # (inject_cycle, msg_id).
        self._pending: List[Tuple[int, int]] = []
        # Messages visited every cycle (potentially able to move).
        self._runnable: Set[int] = set()
        # msg_id -> resource keys it is parked on; woken when any of
        # them is released or has a flit popped from its buffer.
        self._parked: Dict[int, List[ResourceKey]] = {}
        # resource key -> msg_ids parked on it (may hold stale
        # entries; filtered against _parked on wake).
        self._waiters: Dict[ResourceKey, List[int]] = {}
        # O(1) drain check: count of delivered-or-aborted messages.
        self._finished_count = 0
        # Current cycle's arbitration agenda (sorted (inject, id)
        # keys); None outside a frontier step.
        self._agenda: Optional[List[Tuple[int, int]]] = None
        self._agenda_cur_key: Tuple[int, int] = (-1, -1)
        self._visited: Set[int] = set()
        # --- telemetry (plain ints on the hot path; deltas are
        # published to the ambient registry once per run()) -----------
        self.stall_cycles = 0
        self.park_events = 0
        self.wake_events = 0
        self.retry_events = 0
        self.abort_counts: Dict[str, int] = {}
        self._published: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Static verification
    # ------------------------------------------------------------------
    def verify_deadlock_free(self, strict: bool = True):
        """Statically prove this simulator's configuration deadlock-free.

        Builds the extended channel-dependency graph for the current
        (faults, orderings, VC discipline) and checks acyclicity —
        i.e. run the :mod:`repro.analysis.static.cdg` prover *before*
        pushing any traffic.  With ``strict`` (default) a cyclic CDG
        raises :class:`~repro.analysis.static.StaticDeadlockError`
        (a :class:`SimulationError`); otherwise the
        :class:`~repro.analysis.static.CdgReport` is returned either
        way, with the minimal counterexample cycle attached.
        """
        from ..analysis.static.cdg import (
            assert_deadlock_free,
            prove_deadlock_free,
        )

        fn = assert_deadlock_free if strict else prove_deadlock_free
        return fn(
            self.faults,
            self.orderings,
            vc_of_round=self._vc_of_round,
            num_vcs=self.net.num_vcs,
        )

    # ------------------------------------------------------------------
    # Route construction and message submission
    # ------------------------------------------------------------------
    def build_hops(self, src: Node, dst: Node) -> Optional[List[Hop]]:
        """Materialize a k-round route as VC-annotated hops, or None if
        unreachable.

        Cached per (src, dst) within the current routing epoch: live
        faults and :meth:`set_orderings` bump :attr:`routing_epoch`
        and clear the cache, so a hit can never return a route through
        known-dead hardware.  Hits skip validation and rng tie-break
        draws (the cached route already passed both).
        """
        if self._route_cache_enabled:
            cached = self._route_cache.get((src, dst), _MISSING)
            if cached is not _MISSING:
                return cached
        paths = find_k_round_route(
            self.grids, self.orderings, src, dst, policy=self.policy, rng=self.rng
        )
        if paths is None:
            if self._route_cache_enabled:
                self._route_cache[(src, dst)] = None
            return None
        hops: List[Hop] = []
        for t, path in enumerate(paths):
            vc = self._vc_of_round(t)
            for u, v in zip(path, path[1:]):
                hops.append(Hop(tuple(u), tuple(v), vc))
        for hop in hops:
            self.net.validate_hop(hop)
        if self._route_cache_enabled:
            self._route_cache[(src, dst)] = hops
        return hops

    def _invalidate_routes(self) -> None:
        """New routing epoch: faults grew or the ordering changed."""
        self.routing_epoch += 1
        self._route_cache.clear()

    def send(
        self,
        src: Node,
        dst: Node,
        num_flits: int = 16,
        inject_cycle: Optional[int] = None,
        hops: Optional[List[Hop]] = None,
    ) -> Message:
        """Queue a message; raises ValueError if ``dst`` is not
        k-round reachable from ``src``."""
        src = tuple(int(x) for x in src)
        dst = tuple(int(x) for x in dst)
        if hops is None:
            hops = self.build_hops(src, dst)
            if hops is None:
                raise ValueError(f"{dst} is not k-round reachable from {src}")
        else:
            for hop in hops:
                self.net.validate_hop(hop)
        when = self.cycle if inject_cycle is None else int(inject_cycle)
        if when < self.cycle:
            raise ValueError("cannot inject in the past")
        msg = Message(
            msg_id=self._next_id,
            source=src,
            dest=dst,
            num_flits=int(num_flits),
            hops=hops,
            inject_cycle=when,
        )
        self._next_id += 1
        if not hops:  # src == dst: delivered without entering the network
            msg.delivered_flits = msg.num_flits
            msg.deliver_cycle = when
            self._finished_count += 1
        else:
            if self.engine != "scan":
                heapq.heappush(self._pending, (when, msg.msg_id))
            if self._vector is not None:
                self._vector.register(msg)
        self.messages[msg.msg_id] = msg
        if self.tracer is not None:
            self.tracer.record(
                TraceEvent(when, "inject", msg.msg_id, src=src, dst=dst)
            )
        return msg

    # ------------------------------------------------------------------
    # Live faults (chaos): abort/drain/retry machinery
    # ------------------------------------------------------------------
    def set_orderings(self, orderings: KRoundOrdering) -> None:
        """Adopt an escalated k-round discipline mid-run (degradation
        ladder).  Grows the VC count so round ``t`` still gets VC ``t``;
        in-flight messages keep their old (shorter) routes."""
        self.orderings = orderings
        want = max(self.net.num_vcs, orderings.k)
        if want > self.net.num_vcs:
            self.net.grow_vcs(want)
        self._invalidate_routes()

    def quarantine(self, nodes: Sequence[Node]) -> None:
        """Mark ``nodes`` as unreachable-by-policy: torn-out messages
        with a quarantined endpoint are aborted instead of retried.
        Unaffected in-flight messages are left to finish."""
        self.quarantined.update(tuple(int(x) for x in v) for v in nodes)

    def inject_faults(
        self,
        node_faults: Sequence[Node] = (),
        link_faults: Sequence[Link] = (),
    ) -> List[Message]:
        """Kill hardware *now* (programmatic live fault, bypassing any
        schedule).  Returns the torn-out victim messages."""
        from .chaos import FaultEvent

        event = FaultEvent(self.cycle, tuple(node_faults), tuple(link_faults))
        return self._apply_fault_event(event)

    def _process_due_events(self) -> None:
        if self.schedule is None:
            return
        while (
            self._schedule_pos < len(self.schedule)
            and self.schedule[self._schedule_pos].cycle <= self.cycle
        ):
            event = self.schedule[self._schedule_pos]
            self._schedule_pos += 1
            self._apply_fault_event(event)

    def _apply_fault_event(self, event: "FaultEvent") -> List[Message]:
        """Grow the fault state, tear out and drain affected messages,
        run the reconfiguration hook, then re-dispatch the victims."""
        new_nodes = tuple(
            v for v in event.node_faults if not self.faults.node_is_faulty(v)
        )
        new_links = tuple(
            (u, w)
            for (u, w) in event.link_faults
            if not self.faults.link_is_faulty(u, w)
        )
        if not new_nodes and not new_links:
            return []  # stale event: everything already dead
        self.faults = self.faults.with_faults(new_nodes, new_links)
        self.grids.add_faults(new_nodes, new_links)
        self.net.apply_faults(self.faults)
        self._invalidate_routes()
        self.fault_events_applied += 1
        if self.tracer is not None:
            for v in new_nodes:
                self.tracer.record(
                    TraceEvent(self.cycle, "fault", SYSTEM_MSG_ID, src=v)
                )
            for (u, w) in new_links:
                self.tracer.record(
                    TraceEvent(self.cycle, "fault", SYSTEM_MSG_ID, src=u, dst=w)
                )
        node_set = set(new_nodes)
        link_set = set(new_links)
        victims = [
            m
            for m in self.messages.values()
            if not m.is_finished and self._route_hit(m, node_set, link_set)
        ]
        for m in victims:
            self._tear_down(m)
        if self.on_fault is not None:
            self.on_fault(event, new_nodes, new_links)
        for m in victims:
            self._redispatch(m)
        # Teardown force-released resources and dropped buffered flits
        # without per-key wake notifications, victims changed their
        # inject cycles, and the reconfiguration hook may have sent
        # fresh messages: rebuild the frontier conservatively.
        self._rebuild_frontier()
        return victims

    @staticmethod
    def _route_hit(m: Message, nodes: Set[Node], links: Set[Link]) -> bool:
        """Does the part of ``m``'s route that is still in use (owned
        or yet to be crossed by some flit) touch a new fault?"""
        for hop in m.hops[m.tail_pos + 1 :]:
            if (
                hop.src in nodes
                or hop.dst in nodes
                or (hop.src, hop.dst) in links
            ):
                return True
        return False

    def _tear_down(self, m: Message) -> None:
        """Abort-and-drain: discard buffered flits and force-release
        every resource the message owns (its flits evaporate; wormhole
        hardware would sink them via the fault-adjacent routers)."""
        for pos in m.flit_pos:
            if 0 <= pos < m.num_hops - 1:
                self.net.drop_buffer_flit(m.hops[pos])
        self.net.release_message(m.msg_id)

    def _redispatch(self, m: Message) -> None:
        """Retry a torn-out message on a post-reconfiguration route, or
        abort it with an explicit reason (never silently)."""
        if m.source in self.quarantined or m.dest in self.quarantined:
            return self._abort(m, ABORT_QUARANTINED)
        if self.faults.node_is_faulty(m.dest) or self.faults.node_is_faulty(
            m.source
        ):
            return self._abort(m, ABORT_ENDPOINT_FAILED)
        entered = m.head_pos >= 0
        if entered and (m.attempts - 1) >= self.max_retries:
            return self._abort(m, ABORT_RETRY_BUDGET)
        hops = self.build_hops(m.source, m.dest)
        if hops is None:
            return self._abort(m, ABORT_UNREACHABLE)
        if entered:
            # The message was mid-flight: charge a retry and back off
            # exponentially before re-entering the network.
            delay = self.retry_backoff * (2 ** (m.attempts - 1))
            if self.tracer is not None:
                self.tracer.record(
                    TraceEvent(self.cycle, "abort", m.msg_id,
                               src=m.source, dst=m.dest, reason="retry")
                )
            m.reset_for_retry(hops, self.cycle + delay)
            self.retry_events += 1
            if self.tracer is not None:
                self.tracer.record(
                    TraceEvent(m.inject_cycle, "reinject", m.msg_id,
                               src=m.source, dst=m.dest)
                )
        else:
            # Still queued at the source: re-route silently (the NIC
            # just swaps the route before first injection).
            m.hops = hops
            m.inject_cycle = max(m.inject_cycle, self.cycle)
            if self.tracer is not None:
                self.tracer.record(
                    TraceEvent(self.cycle, "reinject", m.msg_id,
                               src=m.source, dst=m.dest,
                               reason="rerouted-before-injection")
                )

    def _abort(self, m: Message, reason: str) -> None:
        m.abort_cycle = self.cycle
        m.abort_reason = reason
        self._finished_count += 1
        self.abort_counts[reason] = self.abort_counts.get(reason, 0) + 1
        if self.tracer is not None:
            self.tracer.record(
                TraceEvent(self.cycle, "abort", m.msg_id,
                           src=m.source, dst=m.dest, reason=reason)
            )

    # ------------------------------------------------------------------
    # Frontier bookkeeping
    # ------------------------------------------------------------------
    def _rebuild_frontier(self) -> None:
        """Conservative full rebuild after a live-fault event: every
        unfinished message goes back to pending (future injection) or
        runnable; park/wait state is discarded (messages re-park after
        one blocked visit).  Also recounts the finished tally."""
        self._finished_count = sum(
            1 for m in self.messages.values() if m.is_finished
        )
        if self.engine == "scan":
            return
        if self._vector is not None:
            # Victims got fresh routes and/or plain-list flit_pos from
            # reset_for_retry: re-adopt them into the flat stores.
            self._vector.reset_waiters()
            for m in self.messages.values():
                if not m.is_finished and self._vector.needs_reregister(m):
                    self._vector.register(m)
        self._parked.clear()
        self._waiters.clear()
        self._runnable.clear()
        pending: List[Tuple[int, int]] = []
        cycle = self.cycle
        for m in self.messages.values():
            if m.is_finished:
                continue
            if m.inject_cycle <= cycle:
                self._runnable.add(m.msg_id)
            else:
                pending.append((m.inject_cycle, m.msg_id))
        heapq.heapify(pending)
        self._pending = pending

    def _wake_key(self, key: ResourceKey) -> None:
        """A resource was released or had a buffered flit popped:
        unpark every message waiting on it.  If the current cycle's
        arbitration has not yet passed the woken message's slot, it is
        inserted into the live agenda (matching the scan engine's
        snapshot visit order); otherwise it runs from the next cycle.
        Spurious wake-ups are harmless — a visit that cannot move any
        flit has no side effects."""
        waiters = self._waiters
        if not waiters:
            return
        lst = waiters.pop(key, None)
        if lst is None:
            return
        if self._vector is not None:
            self._vector.waiter_delta(key, -len(lst))
        parked = self._parked
        agenda = self._agenda
        for mid in lst:
            if parked.pop(mid, None) is None:
                continue  # stale entry: already woken via another key
            m = self.messages[mid]
            if m.is_finished:
                continue
            self._runnable.add(mid)
            self.wake_events += 1
            if agenda is not None and mid not in self._visited:
                sk = (m.inject_cycle, mid)
                if sk > self._agenda_cur_key:
                    insort(agenda, sk)

    def _park_keys(self, m: Message) -> Optional[List[ResourceKey]]:
        """Resource keys a zero-move message should wait on, or None
        if it must stay runnable (its blocker is transient, i.e. only
        this cycle's bandwidth).

        The head is parked on its next hop's resource when that is
        held by another message (woken by release) or its downstream
        buffer is full (woken by a buffer pop — the buffer may hold
        straggling tail flits of a previous owner).  Body flits with a
        gap ahead can additionally be stuck behind such straggler-full
        buffers mid-route, so those keys are collected too.  All other
        blockers resolve by themselves next cycle, so the message
        stays runnable; uncertain cases also stay runnable (safe,
        merely a wasted visit)."""
        fp = m.flit_pos
        last = m.num_hops - 1
        nxt = fp[0] + 1
        if nxt > last:
            return None  # head ejected: trailing drain, stay runnable
        keys = m.hop_keys
        net = self.net
        head_key = keys[nxt]
        holder = net.owner_key(head_key)
        if holder == m.msg_id:
            return None  # defensive: should have moved
        if holder is None and (
            nxt == last or net.buffer_has_space_key(head_key)
        ):
            return None  # only blocked by this cycle's bandwidth
        wait = [head_key]
        for f in range(1, m.num_flits):
            pos = fp[f]
            b = pos + 1
            if b > last:
                continue  # flit already ejected
            if fp[f - 1] < b:
                if pos < 0:
                    break  # the rest are still queued at the source
                continue  # no gap: waits on its predecessor (internal)
            if b == last:
                return None  # defensive: ejection always possible
            bkey = keys[b]
            if net.buffer_has_space_key(bkey):
                return None  # defensive: should have moved
            wait.append(bkey)
        return wait

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def _active_messages(self) -> List[Message]:
        """Messages eligible to move this cycle, oldest first (scan
        engine)."""
        out = [
            m
            for m in self.messages.values()
            if not m.is_finished and m.inject_cycle <= self.cycle
        ]
        out.sort(key=lambda m: (m.inject_cycle, m.msg_id))
        return out

    def _advance_message(self, m: Message) -> int:
        """Move every flit of ``m`` that can move this cycle (head
        first, then body flits in order — each over a distinct hop, so
        per-message ordering is conflict-free).  Returns the number of
        flits that moved.  Shared by both engines."""
        net = self.net
        fp = m.flit_pos
        keys = m.hop_keys
        hops = m.hops
        last = m.num_hops - 1
        mid = m.msg_id
        num_flits = m.num_flits
        tracer = self.tracer
        channel_free = net.channel_free_key
        owner_of = net.owner_key
        has_space = net.buffer_has_space_key
        moved = 0
        for f in range(num_flits):
            pos = fp[f]
            nxt = pos + 1
            if nxt > last:
                continue  # flit already ejected at the destination
            if f > 0 and fp[f - 1] < nxt:
                if pos < 0:
                    break  # this and all later flits still queued
                continue  # cannot pass the preceding flit
            key = keys[nxt]
            if not channel_free(key):
                continue  # resource bandwidth spent this cycle
            if f == 0:
                if nxt != last and not has_space(key):
                    # Head can always eject at the final hop.
                    continue
                holder = owner_of(key)
                if holder is None:
                    net.try_acquire_key(key, mid)
                    if tracer is not None:
                        hop = hops[nxt]
                        tracer.record(
                            TraceEvent(self.cycle, "acquire", mid,
                                       src=hop.src, dst=hop.dst, vc=hop.vc)
                        )
                elif holder != mid:
                    continue  # held by another message
            else:
                if owner_of(key) != mid:
                    continue  # released under us? cannot happen
                if nxt != last and not has_space(key):
                    continue
            # Move: leave the old buffer (if we were in one), enter
            # the new.
            net.mark_used_key(key)
            if 0 <= pos < last:
                pkey = keys[pos]
                net.buffer_pop_key(pkey)
                self._wake_key(pkey)
            if nxt != last:
                net.buffer_push_key(key)
            else:
                m.delivered_flits += 1
            fp[f] = nxt
            moved += 1
            if tracer is not None:
                hop = hops[nxt]
                tracer.record(
                    TraceEvent(self.cycle, "flit", mid, flit=f,
                               src=hop.src, dst=hop.dst, vc=hop.vc)
                )
            # Tail crossed hop `nxt`: release it.
            if f == num_flits - 1:
                net.release_key(key, mid)
                self._wake_key(key)
                if tracer is not None:
                    hop = hops[nxt]
                    tracer.record(
                        TraceEvent(self.cycle, "release", mid,
                                   src=hop.src, dst=hop.dst, vc=hop.vc)
                    )
        return moved

    def step(self) -> int:
        """Advance one cycle; returns the number of flits that moved.

        Due live-fault events are applied first, so a fault at cycle
        ``c`` affects cycle ``c``'s movement.
        """
        if self.engine == "frontier":
            return self._step_frontier()
        if self.engine == "vector":
            return self._step_vector()
        return self._step_scan()

    def _step_scan(self) -> int:
        """Reference engine: visit every active message each cycle."""
        self._process_due_events()
        self.net.new_cycle()
        moved = 0
        for m in self._active_messages():
            moved += self._advance_message(m)
            if m.delivered_flits == m.num_flits and m.deliver_cycle is None:
                m.deliver_cycle = self.cycle + 1
                self._finished_count += 1
                if self.tracer is not None:
                    self.tracer.record(
                        TraceEvent(self.cycle, "deliver", m.msg_id,
                                   src=m.source, dst=m.dest)
                    )
        self.cycle += 1
        if moved == 0 and any(
            not m.is_finished and m.inject_cycle < self.cycle
            for m in self.messages.values()
        ):
            self._check_deadlock()
        else:
            self._idle_cycles = 0
        return moved

    def _step_frontier(self) -> int:
        """Event-driven engine: visit only runnable messages."""
        self._process_due_events()
        self.net.new_cycle()
        cycle = self.cycle
        messages = self.messages
        pending = self._pending
        runnable = self._runnable
        # Admit newly injectable messages (and retries whose backoff
        # expired) into the runnable set.
        while pending and pending[0][0] <= cycle:
            _, mid = heapq.heappop(pending)
            m = messages[mid]
            if m.is_finished:
                continue
            if m.inject_cycle <= cycle:
                runnable.add(mid)
            else:  # defensive: injection was re-delayed
                heapq.heappush(pending, (m.inject_cycle, mid))
        # Oldest-first arbitration agenda over the runnable set; wakes
        # from releases/pops may insert behind the current position.
        agenda = sorted((messages[mid].inject_cycle, mid) for mid in runnable)
        self._agenda = agenda
        self._visited = visited = set()
        parked = self._parked
        waiters = self._waiters
        moved = 0
        i = 0
        while i < len(agenda):
            sk = agenda[i]
            i += 1
            mid = sk[1]
            if mid in visited:
                continue
            visited.add(mid)
            self._agenda_cur_key = sk
            m = messages[mid]
            if m.is_finished:  # finished out-of-band
                runnable.discard(mid)
                continue
            n = self._advance_message(m)
            moved += n
            if m.delivered_flits == m.num_flits and m.deliver_cycle is None:
                m.deliver_cycle = cycle + 1
                self._finished_count += 1
                runnable.discard(mid)
                if self.tracer is not None:
                    self.tracer.record(
                        TraceEvent(cycle, "deliver", mid,
                                   src=m.source, dst=m.dest)
                    )
            elif n == 0:
                keys = self._park_keys(m)
                if keys is not None:
                    runnable.discard(mid)
                    parked[mid] = keys
                    self.park_events += 1
                    for k in keys:
                        lst = waiters.get(k)
                        if lst is None:
                            waiters[k] = [mid]
                        else:
                            lst.append(mid)
        self._agenda = None
        self.cycle += 1
        # Parity with the scan engine's idle check: runnable | parked
        # is exactly the set of unfinished messages with
        # inject_cycle < self.cycle (pending ones are strictly later).
        if moved == 0 and (runnable or parked):
            self._check_deadlock()
        else:
            self._idle_cycles = 0
        return moved

    def _step_vector(self) -> int:
        """Array-native engine: apply the conflict-free all-move batch
        in vectorized scatters, then walk the remaining runnable
        messages through the sequential kernel exactly as the frontier
        engine does.  Disjoint resource windows make the up-front batch
        application commute with every sequential visit, so the cycle
        is bit-identical to the scan engine's."""
        self._process_due_events()
        self.net.new_cycle()
        cycle = self.cycle
        messages = self.messages
        pending = self._pending
        runnable = self._runnable
        while pending and pending[0][0] <= cycle:
            _, mid = heapq.heappop(pending)
            m = messages[mid]
            if m.is_finished:
                continue
            if m.inject_cycle <= cycle:
                runnable.add(mid)
            else:  # defensive: injection was re-delayed
                heapq.heappush(pending, (m.inject_cycle, mid))
        # Agenda snapshot first: batch members keep their arbitration
        # slots (the tracer replays their events there).
        agenda = sorted((messages[mid].inject_cycle, mid) for mid in runnable)
        self._agenda = agenda
        self._visited = visited = set()
        vec = self._vector
        moved = 0
        batch_members: Set[int] = set()
        replay: Optional[Dict[int, _Replay]] = None
        if runnable:
            r_arr = np.fromiter(runnable, dtype=np.int64, count=len(runnable))
            if self._parked:
                p_arr = np.fromiter(
                    self._parked.keys(), dtype=np.int64, count=len(self._parked)
                )
            else:
                p_arr = np.zeros(0, dtype=np.int64)
            batch = vec.plan_and_apply(r_arr, p_arr, self.tracer is not None)
            moved += batch.moved
            batch_members = set(batch.members)
            replay = batch.replay
            for mid in batch.delivered:
                m = messages[mid]
                m.deliver_cycle = cycle + 1
                self._finished_count += 1
                runnable.discard(mid)
            if replay is None and len(batch_members) == len(agenda):
                # Every runnable message was batched: the walk below
                # would only do visited-bookkeeping (no advances, no
                # parks, no wakes).  Skip it entirely.
                self._agenda = None
                self.cycle += 1
                self._idle_cycles = 0
                return moved
        parked = self._parked
        waiters = self._waiters
        i = 0
        while i < len(agenda):
            sk = agenda[i]
            i += 1
            mid = sk[1]
            if mid in visited:
                continue
            visited.add(mid)
            self._agenda_cur_key = sk
            if mid in batch_members:
                if replay is not None:
                    self._replay_member(messages[mid], replay[mid])
                continue
            m = messages[mid]
            if m.is_finished:  # finished out-of-band
                runnable.discard(mid)
                continue
            n = self._advance_message(m)
            moved += n
            if m.delivered_flits == m.num_flits and m.deliver_cycle is None:
                m.deliver_cycle = cycle + 1
                self._finished_count += 1
                runnable.discard(mid)
                if self.tracer is not None:
                    self.tracer.record(
                        TraceEvent(cycle, "deliver", mid,
                                   src=m.source, dst=m.dest)
                    )
            elif n == 0:
                keys = self._park_keys(m)
                if keys is not None:
                    runnable.discard(mid)
                    parked[mid] = keys
                    self.park_events += 1
                    for k in keys:
                        lst = waiters.get(k)
                        if lst is None:
                            waiters[k] = [mid]
                        else:
                            lst.append(mid)
                        vec.waiter_delta(k, 1)
        self._agenda = None
        self.cycle += 1
        if moved == 0 and (runnable or parked):
            self._check_deadlock()
        else:
            self._idle_cycles = 0
        return moved

    def _replay_member(self, m: Message, rep: _Replay) -> None:
        """Emit the trace events of a batch member at its arbitration
        slot, in the exact order the sequential kernel would have:
        acquire (head onto a free resource), flit hops in flit order,
        release after the tail's hop, deliver last."""
        tracer = self.tracer
        cycle = self.cycle
        mid = m.msg_id
        hops = m.hops
        tail_ord = m.num_flits - 1
        if rep.acquired:
            hop = hops[int(rep.nxts[0])]  # head (flit 0) is first
            tracer.record(
                TraceEvent(cycle, "acquire", mid,
                           src=hop.src, dst=hop.dst, vc=hop.vc)
            )
        for ford, nxt in zip(rep.fords, rep.nxts):
            hop = hops[int(nxt)]
            tracer.record(
                TraceEvent(cycle, "flit", mid, flit=int(ford),
                           src=hop.src, dst=hop.dst, vc=hop.vc)
            )
            if ford == tail_ord:
                tracer.record(
                    TraceEvent(cycle, "release", mid,
                               src=hop.src, dst=hop.dst, vc=hop.vc)
                )
        if m.deliver_cycle == cycle + 1:
            tracer.record(
                TraceEvent(cycle, "deliver", mid, src=m.source, dst=m.dest)
            )

    def _check_deadlock(self) -> None:
        """Count an idle cycle; run the wait-graph detector once the
        idle streak reaches the check interval."""
        self._idle_cycles += 1
        self.stall_cycles += 1
        if self._idle_cycles >= self._deadlock_check_every:
            graph = build_wait_graph(self.messages.values(), self.net)
            cycle = find_deadlock_cycle(graph)
            if cycle is not None:
                raise DeadlockError(
                    cycle,
                    snapshot_stalls(
                        self.cycle, self.messages.values(), self.net
                    ),
                )

    def _drained(self) -> bool:
        """Every message terminal (delivered or aborted-with-reason)
        and every scheduled fault event applied.  O(1): finished
        messages are counted as they finish."""
        if self.schedule is not None and self._schedule_pos < len(self.schedule):
            return False
        return self._finished_count >= len(self.messages)

    def run(self, max_cycles: int = 100000) -> SimStats:
        """Run until every message is delivered or explicitly aborted
        and the fault schedule (if any) is exhausted.

        Raises the typed :class:`DeadlockError` if a wait-for cycle
        forms, and :class:`SimulationTimeout` (with stalled-message
        diagnostics attached) on non-deadlock timeout.
        """
        try:
            while self.cycle < max_cycles:
                if self._drained():
                    break
                self.step()
            if not self._drained():
                raise SimulationTimeout(
                    max_cycles,
                    snapshot_stalls(
                        self.cycle, self.messages.values(), self.net
                    ),
                )
        finally:
            # Publish telemetry deltas even when the run ends in a
            # DeadlockError/SimulationTimeout — those are exactly the
            # runs whose counters matter most.
            self._publish_telemetry()
        return self.stats()

    def _publish_telemetry(self) -> None:
        """Publish counter *deltas* since the last publish to the
        ambient registry.

        The hot loop never touches the registry — it bumps plain ints
        — so this is the only place the simulator pays a lock.  Deltas
        (not totals) keep repeated ``run()`` calls on one simulator
        additive, and zero-deltas still create the counters so the
        exported schema is stable across workloads.
        """
        reg = get_registry()
        eng = self.engine
        vec = self._vector
        totals = {
            "sim_cycles_total": self.cycle,
            "sim_stall_cycles_total": self.stall_cycles,
            "sim_park_events_total": self.park_events,
            "sim_wake_events_total": self.wake_events,
            "sim_retries_total": self.retry_events,
            "sim_messages_finished_total": self._finished_count,
            # Zero for the sequential engines — the zero-delta incs
            # keep the exported schema identical across engines.
            "sim_batched_messages_total": vec.batched_messages if vec else 0,
            "sim_batched_flits_total": vec.batched_flits if vec else 0,
        }
        pub = self._published
        for name, total in sorted(totals.items()):
            reg.inc(name, max(0, total - pub.get(name, 0)), engine=eng)
            pub[name] = total
        for reason in sorted(
            set(self.abort_counts)
            | {ABORT_ENDPOINT_FAILED, ABORT_UNREACHABLE,
               ABORT_RETRY_BUDGET, ABORT_QUARANTINED}
        ):
            total = self.abort_counts.get(reason, 0)
            key = f"abort:{reason}"
            reg.inc(
                "sim_aborts_total",
                max(0, total - pub.get(key, 0)),
                engine=eng,
                reason=reason,
            )
            pub[key] = total

    def stats(self) -> SimStats:
        """Aggregate statistics over all delivered messages."""
        return SimStats.from_messages(self.cycle, list(self.messages.values()))
