"""Cycle-driven flit-level wormhole simulator.

Simulates deterministic k-round dimension-ordered wormhole routing on
a faulty mesh with one virtual channel per round (the paper's
deadlock-free discipline) — the simulated stand-in for the Blue Gene
3D-mesh hardware the paper targets.

Model (standard wormhole switching, Dally & Seitz [8]):

- a message's flits follow one path in a pipelined manner;
- each (link, VC) resource carries one flit per cycle, is exclusively
  owned from head arrival to tail departure, and has a small
  downstream buffer (``buffer_flits``);
- a blocked head leaves all flits in place (no buffering of whole
  messages at intermediate nodes — crucially, a message *continues in
  a pipelined fashion through all k rounds*, Section 1);
- ejection consumes flits immediately at the destination; injection
  waits until the first hop's resource is acquired.

Arbitration is oldest-first (by injection cycle, then message id),
which is deterministic and starvation-free.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.geometry import Node
from ..routing.multiround import FaultGrids, find_k_round_route
from ..routing.ordering import KRoundOrdering
from .deadlock import DeadlockError, build_wait_graph, find_deadlock_cycle
from .network import VirtualNetwork
from .packets import Hop, Message
from .stats import SimStats
from .trace import TraceEvent, Tracer

__all__ = ["WormholeSimulator"]


class WormholeSimulator:
    """Flit-level simulator of k-round DOR wormhole routing.

    Parameters
    ----------
    faults:
        The faulty mesh.
    orderings:
        k-round ordering; round ``t`` travels on VC ``t`` by default.
    buffer_flits:
        Per-resource downstream buffer depth.
    policy:
        Intermediate-node policy for route materialization (see
        :func:`repro.routing.find_k_round_route`).
    vc_of_round:
        Maps round index -> VC.  The default (identity) is the paper's
        deadlock-free discipline; pass ``lambda t: 0`` to deliberately
        break it and watch :class:`DeadlockError` fire.
    deadlock_check_every:
        How often (cycles without any flit movement) to run the
        wait-graph cycle detector.
    tracer:
        Optional :class:`repro.wormhole.Tracer` recording the event
        stream (injections, acquisitions, flit hops, deliveries).
    """

    def __init__(
        self,
        faults: FaultSet,
        orderings: KRoundOrdering,
        buffer_flits: int = 2,
        policy: str = "shortest",
        vc_of_round: Optional[Callable[[int], int]] = None,
        num_vcs: Optional[int] = None,
        seed: int = 0,
        deadlock_check_every: int = 4,
        tracer: Optional[Tracer] = None,
    ):
        self.faults = faults
        self.mesh = faults.mesh
        self.orderings = orderings
        self.policy = policy
        self._vc_of_round = vc_of_round or (lambda t: t)
        self.net = VirtualNetwork(
            faults,
            num_vcs=(orderings.k if num_vcs is None else num_vcs),
            buffer_flits=buffer_flits,
        )
        self.grids = FaultGrids(faults)
        self.rng = np.random.default_rng(seed)
        self.cycle = 0
        self.messages: Dict[int, Message] = {}
        self._next_id = 0
        self._deadlock_check_every = deadlock_check_every
        self._idle_cycles = 0
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Route construction and message submission
    # ------------------------------------------------------------------
    def build_hops(self, src: Node, dst: Node) -> Optional[List[Hop]]:
        """Materialize a k-round route as VC-annotated hops, or None if
        unreachable."""
        paths = find_k_round_route(
            self.grids, self.orderings, src, dst, policy=self.policy, rng=self.rng
        )
        if paths is None:
            return None
        hops: List[Hop] = []
        for t, path in enumerate(paths):
            vc = self._vc_of_round(t)
            for u, v in zip(path, path[1:]):
                hops.append(Hop(tuple(u), tuple(v), vc))
        for hop in hops:
            self.net.validate_hop(hop)
        return hops

    def send(
        self,
        src: Node,
        dst: Node,
        num_flits: int = 16,
        inject_cycle: Optional[int] = None,
        hops: Optional[List[Hop]] = None,
    ) -> Message:
        """Queue a message; raises ValueError if ``dst`` is not
        k-round reachable from ``src``."""
        src = tuple(int(x) for x in src)
        dst = tuple(int(x) for x in dst)
        if hops is None:
            hops = self.build_hops(src, dst)
            if hops is None:
                raise ValueError(f"{dst} is not k-round reachable from {src}")
        else:
            for hop in hops:
                self.net.validate_hop(hop)
        when = self.cycle if inject_cycle is None else int(inject_cycle)
        if when < self.cycle:
            raise ValueError("cannot inject in the past")
        msg = Message(
            msg_id=self._next_id,
            source=src,
            dest=dst,
            num_flits=int(num_flits),
            hops=hops,
            inject_cycle=when,
        )
        self._next_id += 1
        if not hops:  # src == dst: delivered without entering the network
            msg.delivered_flits = msg.num_flits
            msg.deliver_cycle = when
        self.messages[msg.msg_id] = msg
        if self.tracer is not None:
            self.tracer.record(
                TraceEvent(when, "inject", msg.msg_id, src=src, dst=dst)
            )
        return msg

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def _active_messages(self) -> List[Message]:
        """Messages eligible to move this cycle, oldest first."""
        out = [
            m
            for m in self.messages.values()
            if not m.is_delivered and m.inject_cycle <= self.cycle
        ]
        out.sort(key=lambda m: (m.inject_cycle, m.msg_id))
        return out

    def _try_advance_flit(self, m: Message, f: int) -> bool:
        """Attempt to move flit ``f`` one hop; returns True on motion."""
        pos = m.flit_pos[f]
        nxt = pos + 1
        if nxt >= m.num_hops:
            return False  # already at destination (delivered elsewhere)
        if f > 0 and m.flit_pos[f - 1] < nxt:
            return False  # cannot pass the preceding flit
        hop = m.hops[nxt]
        if not self.net.channel_free_this_cycle(hop):
            return False
        if f == 0:
            if not self.net.buffer_has_space(hop) and nxt != m.num_hops - 1:
                # Head can always eject at the final hop.
                return False
            newly_acquired = self.net.owner(hop) is None
            if not self.net.try_acquire(hop, m.msg_id):
                return False
            if newly_acquired and self.tracer is not None:
                self.tracer.record(
                    TraceEvent(self.cycle, "acquire", m.msg_id,
                               src=hop.src, dst=hop.dst, vc=hop.vc)
                )
            if nxt != m.num_hops - 1 and not self.net.buffer_has_space(hop):
                return False
        else:
            if self.net.owner(hop) != m.msg_id:
                return False  # resource already released? cannot happen
            if nxt != m.num_hops - 1 and not self.net.buffer_has_space(hop):
                return False
        # Move: leave old buffer (if we were in one), enter the new.
        self.net.mark_channel_used(hop)
        if pos >= 0 and pos < m.num_hops - 1:
            self.net.buffer_pop(m.hops[pos])
        if nxt != m.num_hops - 1:
            self.net.buffer_push(hop)
        else:
            m.delivered_flits += 1
        m.flit_pos[f] = nxt
        if self.tracer is not None:
            self.tracer.record(
                TraceEvent(self.cycle, "flit", m.msg_id, flit=f,
                           src=hop.src, dst=hop.dst, vc=hop.vc)
            )
        # Tail crossed hop `nxt`: release it.
        if f == m.num_flits - 1:
            self.net.release(hop, m.msg_id)
            if self.tracer is not None:
                self.tracer.record(
                    TraceEvent(self.cycle, "release", m.msg_id,
                               src=hop.src, dst=hop.dst, vc=hop.vc)
                )
        return True

    def step(self) -> int:
        """Advance one cycle; returns the number of flits that moved."""
        self.net.new_cycle()
        moved = 0
        for m in self._active_messages():
            # Head first, then body flits in order (each over a
            # distinct hop, so per-message ordering is conflict-free).
            for f in range(m.num_flits):
                if self._try_advance_flit(m, f):
                    moved += 1
            if m.delivered_flits == m.num_flits and m.deliver_cycle is None:
                m.deliver_cycle = self.cycle + 1
                if self.tracer is not None:
                    self.tracer.record(
                        TraceEvent(self.cycle, "deliver", m.msg_id,
                                   src=m.source, dst=m.dest)
                    )
        self.cycle += 1
        if moved == 0 and any(
            not m.is_delivered and m.inject_cycle < self.cycle
            for m in self.messages.values()
        ):
            self._idle_cycles += 1
            if self._idle_cycles >= self._deadlock_check_every:
                graph = build_wait_graph(self.messages.values(), self.net)
                cycle = find_deadlock_cycle(graph)
                if cycle is not None:
                    raise DeadlockError(cycle)
        else:
            self._idle_cycles = 0
        return moved

    def run(self, max_cycles: int = 100000) -> SimStats:
        """Run until every message is delivered (or ``max_cycles``).

        Raises :class:`DeadlockError` if a wait-for cycle forms, and
        ``RuntimeError`` on non-deadlock timeout.
        """
        while self.cycle < max_cycles:
            if all(m.is_delivered for m in self.messages.values()):
                break
            self.step()
        if not all(m.is_delivered for m in self.messages.values()):
            raise RuntimeError(
                f"simulation did not drain within {max_cycles} cycles"
            )
        return self.stats()

    def stats(self) -> SimStats:
        """Aggregate statistics over all delivered messages."""
        return SimStats.from_messages(self.cycle, list(self.messages.values()))
