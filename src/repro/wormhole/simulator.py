"""Cycle-driven flit-level wormhole simulator.

Simulates deterministic k-round dimension-ordered wormhole routing on
a faulty mesh with one virtual channel per round (the paper's
deadlock-free discipline) — the simulated stand-in for the Blue Gene
3D-mesh hardware the paper targets.

Model (standard wormhole switching, Dally & Seitz [8]):

- a message's flits follow one path in a pipelined manner;
- each (link, VC) resource carries one flit per cycle, is exclusively
  owned from head arrival to tail departure, and has a small
  downstream buffer (``buffer_flits``);
- a blocked head leaves all flits in place (no buffering of whole
  messages at intermediate nodes — crucially, a message *continues in
  a pipelined fashion through all k rounds*, Section 1);
- ejection consumes flits immediately at the destination; injection
  waits until the first hop's resource is acquired.

Arbitration is oldest-first (by injection cycle, then message id),
which is deterministic and starvation-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.geometry import Link, Node
from ..routing.multiround import FaultGrids, find_k_round_route
from ..routing.ordering import KRoundOrdering
from .deadlock import (
    DeadlockError,
    SimulationTimeout,
    build_wait_graph,
    find_deadlock_cycle,
    snapshot_stalls,
)
from .network import VirtualNetwork
from .packets import Hop, Message
from .stats import SimStats
from .trace import SYSTEM_MSG_ID, TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chaos import FaultEvent, FaultSchedule

__all__ = ["WormholeSimulator"]

#: Abort reasons attached to messages torn out by live faults.
ABORT_ENDPOINT_FAILED = "endpoint-failed"
ABORT_UNREACHABLE = "unreachable-after-fault"
ABORT_RETRY_BUDGET = "retry-budget-exhausted"
ABORT_QUARANTINED = "quarantined"


class WormholeSimulator:
    """Flit-level simulator of k-round DOR wormhole routing.

    Parameters
    ----------
    faults:
        The faulty mesh.
    orderings:
        k-round ordering; round ``t`` travels on VC ``t`` by default.
    buffer_flits:
        Per-resource downstream buffer depth.
    policy:
        Intermediate-node policy for route materialization (see
        :func:`repro.routing.find_k_round_route`).
    vc_of_round:
        Maps round index -> VC.  The default (identity) is the paper's
        deadlock-free discipline; pass ``lambda t: 0`` to deliberately
        break it and watch :class:`DeadlockError` fire.
    deadlock_check_every:
        How often (cycles without any flit movement) to run the
        wait-graph cycle detector.
    tracer:
        Optional :class:`repro.wormhole.Tracer` recording the event
        stream (injections, acquisitions, flit hops, deliveries).
    schedule:
        Optional :class:`repro.wormhole.FaultSchedule` of *live* fault
        events.  At the start of each cycle, due events are applied:
        the fault state grows, in-flight messages whose remaining path
        crosses a new fault are aborted and drained, and each victim is
        re-injected on a fresh route with bounded retry + exponential
        backoff (or aborted with an explicit reason).
    on_fault:
        Callback ``(event, new_node_faults, new_link_faults)`` invoked
        after a fault event is applied and victims are drained but
        *before* they are re-routed — the hook where
        :class:`repro.wormhole.ChaosEngine` runs the checkpoint /
        rollback / reconfigure epoch.
    max_retries:
        How many times a torn-out message may be re-injected before it
        is aborted with ``retry-budget-exhausted``.
    retry_backoff:
        Base re-injection delay in cycles; retry ``r`` waits
        ``retry_backoff * 2**(r-1)`` cycles (exponential backoff).
    """

    def __init__(
        self,
        faults: FaultSet,
        orderings: KRoundOrdering,
        buffer_flits: int = 2,
        policy: str = "shortest",
        vc_of_round: Optional[Callable[[int], int]] = None,
        num_vcs: Optional[int] = None,
        seed: int = 0,
        deadlock_check_every: int = 4,
        tracer: Optional[Tracer] = None,
        schedule: Optional["FaultSchedule"] = None,
        on_fault: Optional[
            Callable[["FaultEvent", Tuple[Node, ...], Tuple[Link, ...]], None]
        ] = None,
        max_retries: int = 3,
        retry_backoff: int = 8,
    ):
        self.faults = faults
        self.mesh = faults.mesh
        self.orderings = orderings
        self.policy = policy
        self._vc_of_round = vc_of_round or (lambda t: t)
        self.net = VirtualNetwork(
            faults,
            num_vcs=(orderings.k if num_vcs is None else num_vcs),
            buffer_flits=buffer_flits,
        )
        self.grids = FaultGrids(faults)
        self.rng = np.random.default_rng(seed)
        self.cycle = 0
        self.messages: Dict[int, Message] = {}
        self._next_id = 0
        self._deadlock_check_every = deadlock_check_every
        self._idle_cycles = 0
        self.tracer = tracer
        self.schedule = schedule
        self._schedule_pos = 0
        self.on_fault = on_fault
        if max_retries < 0 or retry_backoff < 1:
            raise ValueError("need max_retries >= 0 and retry_backoff >= 1")
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.quarantined: Set[Node] = set()
        self.fault_events_applied = 0

    # ------------------------------------------------------------------
    # Route construction and message submission
    # ------------------------------------------------------------------
    def build_hops(self, src: Node, dst: Node) -> Optional[List[Hop]]:
        """Materialize a k-round route as VC-annotated hops, or None if
        unreachable."""
        paths = find_k_round_route(
            self.grids, self.orderings, src, dst, policy=self.policy, rng=self.rng
        )
        if paths is None:
            return None
        hops: List[Hop] = []
        for t, path in enumerate(paths):
            vc = self._vc_of_round(t)
            for u, v in zip(path, path[1:]):
                hops.append(Hop(tuple(u), tuple(v), vc))
        for hop in hops:
            self.net.validate_hop(hop)
        return hops

    def send(
        self,
        src: Node,
        dst: Node,
        num_flits: int = 16,
        inject_cycle: Optional[int] = None,
        hops: Optional[List[Hop]] = None,
    ) -> Message:
        """Queue a message; raises ValueError if ``dst`` is not
        k-round reachable from ``src``."""
        src = tuple(int(x) for x in src)
        dst = tuple(int(x) for x in dst)
        if hops is None:
            hops = self.build_hops(src, dst)
            if hops is None:
                raise ValueError(f"{dst} is not k-round reachable from {src}")
        else:
            for hop in hops:
                self.net.validate_hop(hop)
        when = self.cycle if inject_cycle is None else int(inject_cycle)
        if when < self.cycle:
            raise ValueError("cannot inject in the past")
        msg = Message(
            msg_id=self._next_id,
            source=src,
            dest=dst,
            num_flits=int(num_flits),
            hops=hops,
            inject_cycle=when,
        )
        self._next_id += 1
        if not hops:  # src == dst: delivered without entering the network
            msg.delivered_flits = msg.num_flits
            msg.deliver_cycle = when
        self.messages[msg.msg_id] = msg
        if self.tracer is not None:
            self.tracer.record(
                TraceEvent(when, "inject", msg.msg_id, src=src, dst=dst)
            )
        return msg

    # ------------------------------------------------------------------
    # Live faults (chaos): abort/drain/retry machinery
    # ------------------------------------------------------------------
    def set_orderings(self, orderings: KRoundOrdering) -> None:
        """Adopt an escalated k-round discipline mid-run (degradation
        ladder).  Grows the VC count so round ``t`` still gets VC ``t``;
        in-flight messages keep their old (shorter) routes."""
        self.orderings = orderings
        want = max(self.net.num_vcs, orderings.k)
        if want > self.net.num_vcs:
            self.net.grow_vcs(want)

    def quarantine(self, nodes: Sequence[Node]) -> None:
        """Mark ``nodes`` as unreachable-by-policy: torn-out messages
        with a quarantined endpoint are aborted instead of retried.
        Unaffected in-flight messages are left to finish."""
        self.quarantined.update(tuple(int(x) for x in v) for v in nodes)

    def inject_faults(
        self,
        node_faults: Sequence[Node] = (),
        link_faults: Sequence[Link] = (),
    ) -> List[Message]:
        """Kill hardware *now* (programmatic live fault, bypassing any
        schedule).  Returns the torn-out victim messages."""
        from .chaos import FaultEvent

        event = FaultEvent(self.cycle, tuple(node_faults), tuple(link_faults))
        return self._apply_fault_event(event)

    def _process_due_events(self) -> None:
        if self.schedule is None:
            return
        while (
            self._schedule_pos < len(self.schedule)
            and self.schedule[self._schedule_pos].cycle <= self.cycle
        ):
            event = self.schedule[self._schedule_pos]
            self._schedule_pos += 1
            self._apply_fault_event(event)

    def _apply_fault_event(self, event: "FaultEvent") -> List[Message]:
        """Grow the fault state, tear out and drain affected messages,
        run the reconfiguration hook, then re-dispatch the victims."""
        new_nodes = tuple(
            v for v in event.node_faults if not self.faults.node_is_faulty(v)
        )
        new_links = tuple(
            (u, w)
            for (u, w) in event.link_faults
            if not self.faults.link_is_faulty(u, w)
        )
        if not new_nodes and not new_links:
            return []  # stale event: everything already dead
        self.faults = self.faults.with_faults(new_nodes, new_links)
        self.grids.add_faults(new_nodes, new_links)
        self.net.apply_faults(self.faults)
        self.fault_events_applied += 1
        if self.tracer is not None:
            for v in new_nodes:
                self.tracer.record(
                    TraceEvent(self.cycle, "fault", SYSTEM_MSG_ID, src=v)
                )
            for (u, w) in new_links:
                self.tracer.record(
                    TraceEvent(self.cycle, "fault", SYSTEM_MSG_ID, src=u, dst=w)
                )
        node_set = set(new_nodes)
        link_set = set(new_links)
        victims = [
            m
            for m in self.messages.values()
            if not m.is_finished and self._route_hit(m, node_set, link_set)
        ]
        for m in victims:
            self._tear_down(m)
        if self.on_fault is not None:
            self.on_fault(event, new_nodes, new_links)
        for m in victims:
            self._redispatch(m)
        return victims

    @staticmethod
    def _route_hit(m: Message, nodes: Set[Node], links: Set[Link]) -> bool:
        """Does the part of ``m``'s route that is still in use (owned
        or yet to be crossed by some flit) touch a new fault?"""
        for hop in m.hops[m.tail_pos + 1 :]:
            if (
                hop.src in nodes
                or hop.dst in nodes
                or (hop.src, hop.dst) in links
            ):
                return True
        return False

    def _tear_down(self, m: Message) -> None:
        """Abort-and-drain: discard buffered flits and force-release
        every resource the message owns (its flits evaporate; wormhole
        hardware would sink them via the fault-adjacent routers)."""
        for pos in m.flit_pos:
            if 0 <= pos < m.num_hops - 1:
                self.net.drop_buffer_flit(m.hops[pos])
        self.net.release_message(m.msg_id)

    def _redispatch(self, m: Message) -> None:
        """Retry a torn-out message on a post-reconfiguration route, or
        abort it with an explicit reason (never silently)."""
        if m.source in self.quarantined or m.dest in self.quarantined:
            return self._abort(m, ABORT_QUARANTINED)
        if self.faults.node_is_faulty(m.dest) or self.faults.node_is_faulty(
            m.source
        ):
            return self._abort(m, ABORT_ENDPOINT_FAILED)
        entered = m.head_pos >= 0
        if entered and (m.attempts - 1) >= self.max_retries:
            return self._abort(m, ABORT_RETRY_BUDGET)
        hops = self.build_hops(m.source, m.dest)
        if hops is None:
            return self._abort(m, ABORT_UNREACHABLE)
        if entered:
            # The message was mid-flight: charge a retry and back off
            # exponentially before re-entering the network.
            delay = self.retry_backoff * (2 ** (m.attempts - 1))
            if self.tracer is not None:
                self.tracer.record(
                    TraceEvent(self.cycle, "abort", m.msg_id,
                               src=m.source, dst=m.dest, reason="retry")
                )
            m.reset_for_retry(hops, self.cycle + delay)
            if self.tracer is not None:
                self.tracer.record(
                    TraceEvent(m.inject_cycle, "reinject", m.msg_id,
                               src=m.source, dst=m.dest)
                )
        else:
            # Still queued at the source: re-route silently (the NIC
            # just swaps the route before first injection).
            m.hops = hops
            m.inject_cycle = max(m.inject_cycle, self.cycle)
            if self.tracer is not None:
                self.tracer.record(
                    TraceEvent(self.cycle, "reinject", m.msg_id,
                               src=m.source, dst=m.dest,
                               reason="rerouted-before-injection")
                )

    def _abort(self, m: Message, reason: str) -> None:
        m.abort_cycle = self.cycle
        m.abort_reason = reason
        if self.tracer is not None:
            self.tracer.record(
                TraceEvent(self.cycle, "abort", m.msg_id,
                           src=m.source, dst=m.dest, reason=reason)
            )

    # ------------------------------------------------------------------
    # Simulation loop
    # ------------------------------------------------------------------
    def _active_messages(self) -> List[Message]:
        """Messages eligible to move this cycle, oldest first."""
        out = [
            m
            for m in self.messages.values()
            if not m.is_finished and m.inject_cycle <= self.cycle
        ]
        out.sort(key=lambda m: (m.inject_cycle, m.msg_id))
        return out

    def _try_advance_flit(self, m: Message, f: int) -> bool:
        """Attempt to move flit ``f`` one hop; returns True on motion."""
        pos = m.flit_pos[f]
        nxt = pos + 1
        if nxt >= m.num_hops:
            return False  # already at destination (delivered elsewhere)
        if f > 0 and m.flit_pos[f - 1] < nxt:
            return False  # cannot pass the preceding flit
        hop = m.hops[nxt]
        if not self.net.channel_free_this_cycle(hop):
            return False
        if f == 0:
            if not self.net.buffer_has_space(hop) and nxt != m.num_hops - 1:
                # Head can always eject at the final hop.
                return False
            newly_acquired = self.net.owner(hop) is None
            if not self.net.try_acquire(hop, m.msg_id):
                return False
            if newly_acquired and self.tracer is not None:
                self.tracer.record(
                    TraceEvent(self.cycle, "acquire", m.msg_id,
                               src=hop.src, dst=hop.dst, vc=hop.vc)
                )
            if nxt != m.num_hops - 1 and not self.net.buffer_has_space(hop):
                return False
        else:
            if self.net.owner(hop) != m.msg_id:
                return False  # resource already released? cannot happen
            if nxt != m.num_hops - 1 and not self.net.buffer_has_space(hop):
                return False
        # Move: leave old buffer (if we were in one), enter the new.
        self.net.mark_channel_used(hop)
        if pos >= 0 and pos < m.num_hops - 1:
            self.net.buffer_pop(m.hops[pos])
        if nxt != m.num_hops - 1:
            self.net.buffer_push(hop)
        else:
            m.delivered_flits += 1
        m.flit_pos[f] = nxt
        if self.tracer is not None:
            self.tracer.record(
                TraceEvent(self.cycle, "flit", m.msg_id, flit=f,
                           src=hop.src, dst=hop.dst, vc=hop.vc)
            )
        # Tail crossed hop `nxt`: release it.
        if f == m.num_flits - 1:
            self.net.release(hop, m.msg_id)
            if self.tracer is not None:
                self.tracer.record(
                    TraceEvent(self.cycle, "release", m.msg_id,
                               src=hop.src, dst=hop.dst, vc=hop.vc)
                )
        return True

    def step(self) -> int:
        """Advance one cycle; returns the number of flits that moved.

        Due live-fault events are applied first, so a fault at cycle
        ``c`` affects cycle ``c``'s movement.
        """
        self._process_due_events()
        self.net.new_cycle()
        moved = 0
        for m in self._active_messages():
            # Head first, then body flits in order (each over a
            # distinct hop, so per-message ordering is conflict-free).
            for f in range(m.num_flits):
                if self._try_advance_flit(m, f):
                    moved += 1
            if m.delivered_flits == m.num_flits and m.deliver_cycle is None:
                m.deliver_cycle = self.cycle + 1
                if self.tracer is not None:
                    self.tracer.record(
                        TraceEvent(self.cycle, "deliver", m.msg_id,
                                   src=m.source, dst=m.dest)
                    )
        self.cycle += 1
        if moved == 0 and any(
            not m.is_finished and m.inject_cycle < self.cycle
            for m in self.messages.values()
        ):
            self._idle_cycles += 1
            if self._idle_cycles >= self._deadlock_check_every:
                graph = build_wait_graph(self.messages.values(), self.net)
                cycle = find_deadlock_cycle(graph)
                if cycle is not None:
                    raise DeadlockError(
                        cycle,
                        snapshot_stalls(
                            self.cycle, self.messages.values(), self.net
                        ),
                    )
        else:
            self._idle_cycles = 0
        return moved

    def _drained(self) -> bool:
        """Every message terminal (delivered or aborted-with-reason)
        and every scheduled fault event applied."""
        if self.schedule is not None and self._schedule_pos < len(self.schedule):
            return False
        return all(m.is_finished for m in self.messages.values())

    def run(self, max_cycles: int = 100000) -> SimStats:
        """Run until every message is delivered or explicitly aborted
        and the fault schedule (if any) is exhausted.

        Raises the typed :class:`DeadlockError` if a wait-for cycle
        forms, and :class:`SimulationTimeout` (with stalled-message
        diagnostics attached) on non-deadlock timeout.
        """
        while self.cycle < max_cycles:
            if self._drained():
                break
            self.step()
        if not self._drained():
            raise SimulationTimeout(
                max_cycles,
                snapshot_stalls(self.cycle, self.messages.values(), self.net),
            )
        return self.stats()

    def stats(self) -> SimStats:
        """Aggregate statistics over all delivered messages."""
        return SimStats.from_messages(self.cycle, list(self.messages.values()))
