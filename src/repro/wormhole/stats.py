"""Aggregate statistics for wormhole simulation runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..routing.turns import count_turns
from .packets import Message

__all__ = ["SimStats"]


@dataclass(frozen=True)
class SimStats:
    """Summary of a drained (or partially drained) simulation.

    Attributes
    ----------
    cycles:
        Total simulated cycles.
    delivered:
        Number of fully delivered messages.
    total_messages:
        Number of messages submitted.
    avg_latency, p95_latency, max_latency:
        Injection-to-tail-delivery latency statistics (cycles) over
        delivered messages.
    throughput_flits_per_cycle:
        Delivered flits divided by simulated cycles.
    avg_hops, avg_turns, max_turns:
        Route-shape statistics (turns are the paper's requirement (iv)
        metric).
    """

    cycles: int
    delivered: int
    total_messages: int
    avg_latency: float
    p95_latency: float
    max_latency: int
    throughput_flits_per_cycle: float
    avg_hops: float
    avg_turns: float
    max_turns: int

    @classmethod
    def from_messages(cls, cycles: int, messages: Sequence[Message]) -> "SimStats":
        done = [m for m in messages if m.is_delivered]
        latencies = [m.latency for m in done if m.latency is not None]
        flits = sum(m.num_flits for m in done)
        turns = [count_turns(m.path_nodes()) for m in done if m.num_hops > 0]
        hops = [m.num_hops for m in done]
        return cls(
            cycles=cycles,
            delivered=len(done),
            total_messages=len(messages),
            avg_latency=float(np.mean(latencies)) if latencies else 0.0,
            p95_latency=float(np.percentile(latencies, 95)) if latencies else 0.0,
            max_latency=int(max(latencies)) if latencies else 0,
            throughput_flits_per_cycle=(flits / cycles) if cycles else 0.0,
            avg_hops=float(np.mean(hops)) if hops else 0.0,
            avg_turns=float(np.mean(turns)) if turns else 0.0,
            max_turns=int(max(turns)) if turns else 0,
        )
