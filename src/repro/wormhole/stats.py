"""Aggregate statistics for wormhole simulation runs."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .packets import Message
from .vector import _ragged_ranges

__all__ = ["SimStats"]


def _batched_turn_counts(messages: Sequence[Message]) -> np.ndarray:
    """Vectorized :func:`repro.routing.turns.count_turns` over many
    messages: one flat coordinate array, per-hop direction codes, one
    ``reduceat`` for the per-message direction-change counts.  Every
    message must have at least one hop."""
    counts = np.zeros(len(messages), dtype=np.int64)
    if not messages:
        return counts
    pts = []
    nhops = np.empty(len(messages), dtype=np.int64)
    for i, m in enumerate(messages):
        p = m.path_nodes()
        nhops[i] = len(p) - 1
        pts.extend(p)
    P = np.asarray(pts, dtype=np.int64)
    D = P[1:] - P[:-1]
    # Message i's points start at pt_starts[i]; its hop vectors are the
    # D-rows [pt_starts[i], pt_starts[i] + nhops[i]) — the row joining
    # two consecutive messages is never selected.
    pt_starts = np.zeros(len(messages), dtype=np.intp)
    np.cumsum(nhops[:-1] + 1, out=pt_starts[1:])
    H = D[_ragged_ranges(pt_starts, nhops)]
    if np.any(np.abs(H).sum(axis=1) != 1):
        raise ValueError("path contains a non-unit hop")
    dim = np.argmax(H != 0, axis=1)
    sign = H[np.arange(H.shape[0]), dim]
    code = 2 * dim + (sign > 0)
    hseg = np.zeros(len(messages), dtype=np.intp)
    np.cumsum(nhops[:-1], out=hseg[1:])
    change = np.empty(code.shape[0], dtype=np.int64)
    change[0] = 0
    change[1:] = code[1:] != code[:-1]
    change[hseg] = 0  # a message's first hop has no previous direction
    return np.add.reduceat(change, hseg)


@dataclass(frozen=True)
class SimStats:
    """Summary of a drained (or partially drained) simulation.

    Attributes
    ----------
    cycles:
        Total simulated cycles.
    delivered:
        Number of fully delivered messages.
    total_messages:
        Number of messages submitted.
    avg_latency, p95_latency, max_latency:
        Injection-to-tail-delivery latency statistics (cycles) over
        delivered messages (final attempt).
    throughput_flits_per_cycle:
        Delivered flits divided by simulated cycles.
    avg_hops, avg_turns, max_turns:
        Route-shape statistics (turns are the paper's requirement (iv)
        metric).
    aborted:
        Messages permanently given up on, each with an explicit
        ``abort_reason`` (live-fault chaos runs; 0 otherwise).
    in_flight:
        Messages neither delivered nor aborted (0 after a full drain).
    retried_delivered:
        Delivered messages that needed at least one live-fault retry.
    total_retries:
        Re-injections summed over all messages.
    abort_reasons:
        Sorted ``(reason, count)`` pairs over aborted messages.
    avg_total_latency:
        Mean first-injection-to-delivery latency, *including* cycles
        lost to aborts, backoff and retries.
    """

    cycles: int
    delivered: int
    total_messages: int
    avg_latency: float
    p95_latency: float
    max_latency: int
    throughput_flits_per_cycle: float
    avg_hops: float
    avg_turns: float
    max_turns: int
    aborted: int = 0
    in_flight: int = 0
    retried_delivered: int = 0
    total_retries: int = 0
    abort_reasons: Tuple[Tuple[str, int], ...] = ()
    avg_total_latency: float = 0.0

    @property
    def all_accounted(self) -> bool:
        """No silent loss: every submitted message is delivered or
        aborted-with-reason (i.e. nothing is still dangling)."""
        return self.delivered + self.aborted == self.total_messages

    @classmethod
    def from_messages(cls, cycles: int, messages: Sequence[Message]) -> "SimStats":
        done = [m for m in messages if m.is_delivered]
        aborted = [m for m in messages if m.is_aborted]
        latencies = [m.latency for m in done if m.latency is not None]
        total_latencies = [
            m.total_latency for m in done if m.total_latency is not None
        ]
        flits = sum(m.num_flits for m in done)
        turns = _batched_turn_counts([m for m in done if m.num_hops > 0])
        hops = [m.num_hops for m in done]
        reasons = Counter(m.abort_reason for m in aborted)
        return cls(
            cycles=cycles,
            delivered=len(done),
            total_messages=len(messages),
            avg_latency=float(np.mean(latencies)) if latencies else 0.0,
            p95_latency=float(np.percentile(latencies, 95)) if latencies else 0.0,
            max_latency=int(max(latencies)) if latencies else 0,
            throughput_flits_per_cycle=(flits / cycles) if cycles else 0.0,
            avg_hops=float(np.mean(hops)) if hops else 0.0,
            avg_turns=float(np.mean(turns)) if turns.size else 0.0,
            max_turns=int(turns.max()) if turns.size else 0,
            aborted=len(aborted),
            in_flight=len(messages) - len(done) - len(aborted),
            retried_delivered=sum(1 for m in done if m.was_retried),
            total_retries=sum(m.attempts - 1 for m in messages),
            abort_reasons=tuple(sorted(reasons.items())),
            avg_total_latency=(
                float(np.mean(total_latencies)) if total_latencies else 0.0
            ),
        )
