"""Spanning-tree reachability engine (footnote 7 of the paper).

The line-grouped kernel of :mod:`repro.core.reachability` costs
O(k d^3 f^3); the paper notes that "for f sufficiently large compared
to N, it will be more efficient to compute R^(k) by computing the
k-round spanning tree from each SES representative node, using time
O(d^2 f N)".  This module implements that alternative engine on the
dense grids of :mod:`repro.routing.multiround` and an ``auto`` policy
choosing between the two, mirroring the paper's cost model.

Both engines produce identical matrices (cross-checked by the test
suite), so ``find_lamb_set`` results do not depend on the choice.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.regions import Rect, rect_intersection_matrix
from ..routing.multiround import FaultGrids, reach_set_one_round
from ..routing.ordering import KRoundOrdering
from .reachability import ReachabilityData, density

__all__ = [
    "one_round_reachability_matrix_spanning",
    "find_reachability_spanning",
    "recommended_engine",
]


def one_round_reachability_matrix_spanning(
    grids: FaultGrids,
    pi,
    sources: np.ndarray,
    dests: np.ndarray,
) -> np.ndarray:
    """``R[i, l] = sources[i] can (F, pi)-reach dests[l]``, computed by
    flooding a one-round reach grid from every source (O(p d N))."""
    mesh = grids.mesh
    S = np.asarray(sources, dtype=np.int64).reshape(-1, mesh.d)
    D = np.asarray(dests, dtype=np.int64).reshape(-1, mesh.d)
    p, q = S.shape[0], D.shape[0]
    out = np.zeros((p, q), dtype=bool)
    if p == 0 or q == 0:
        return out
    dest_flat = mesh.indices_of(D)
    start = np.zeros(mesh.widths, dtype=bool)
    for i in range(p):
        v = tuple(int(x) for x in S[i])
        if not grids.good[v]:
            raise ValueError(f"source representative {v} is faulty")
        start[v] = True
        reach = reach_set_one_round(grids, pi, start)
        start[v] = False
        out[i] = reach.reshape(-1)[dest_flat]
    return out


def find_reachability_spanning(
    faults: FaultSet,
    orderings: KRoundOrdering,
    ses_partitions: Sequence[Sequence[Rect]],
    des_partitions: Sequence[Sequence[Rect]],
    ses_reps: Sequence[np.ndarray],
    des_reps: Sequence[np.ndarray],
) -> ReachabilityData:
    """Drop-in replacement for :func:`repro.core.find_reachability`
    that floods k-round reach grids from each round-1 SES
    representative instead of multiplying per-round matrices.

    Produces the same ``R^(k)`` (and the same per-round ``R_t`` /
    intersection matrices for API compatibility).
    """
    import scipy.sparse as sp

    mesh = faults.mesh
    k = orderings.k
    grids = FaultGrids(faults)

    # R^(k) directly: flood k rounds from each round-1 SES rep.
    S = np.asarray(ses_reps[0], dtype=np.int64).reshape(-1, mesh.d)
    D = np.asarray(des_reps[-1], dtype=np.int64).reshape(-1, mesh.d)
    p, q = S.shape[0], D.shape[0]
    dest_flat = mesh.indices_of(D) if q else np.empty(0, np.int64)
    partial = [np.zeros((p, q), dtype=bool) for _ in range(k)]
    start = np.zeros(mesh.widths, dtype=bool)
    for i in range(p):
        v = tuple(int(x) for x in S[i])
        start[v] = True
        frontier = start.copy()
        start[v] = False
        for t in range(k):
            frontier = reach_set_one_round(grids, orderings[t], frontier)
            partial[t][i] = frontier.reshape(-1)[dest_flat]
    Rk = partial[-1]

    # Per-round matrices and intersections, for parity with the fast
    # engine's ReachabilityData (cheap relative to the floods above).
    round_matrices: List[np.ndarray] = []
    for t in range(k):
        round_matrices.append(
            one_round_reachability_matrix_spanning(
                grids, orderings[t], ses_reps[t], des_reps[t]
            )
        )
    intersection_matrices = [
        sp.csr_matrix(
            rect_intersection_matrix(des_partitions[t], ses_partitions[t + 1])
        )
        for t in range(k - 1)
    ]
    stats = {
        "R1_density": density(round_matrices[0]),
        "Rk_density": density(Rk),
        "engine": 1.0,  # marker: spanning engine
    }
    if intersection_matrices:
        stats["I1_density"] = density(intersection_matrices[0])
    return ReachabilityData(
        Rk=Rk,
        round_matrices=round_matrices,
        intersection_matrices=intersection_matrices,
        partial=partial,
        stats=stats,
    )


#: Calibrated unit costs (seconds) for the engine cost model, measured
#: on the benchmark suite: effective per-element cost of the p^3 BLAS
#: product chain, per-axis-slice Python cost of a flood scan, and
#: per-element numpy cost of flood propagation.
_COST_PRODUCT = 7e-12
_COST_PY_STEP = 1e-5
_COST_NP_ELEM = 1.5e-9


def recommended_engine(faults: FaultSet, orderings: KRoundOrdering) -> str:
    """Cost-model choice between the two reachability engines.

    The paper's asymptotics (O(k d^3 f^3) for the representative-pair
    products vs O(d^2 f N) for per-representative floods, footnote 7)
    are weighted with measured constants: the vectorized product chain
    has tiny per-element cost, while each flood pays a Python-level
    scan per axis slice.  Returns ``"lines"`` or ``"spanning"``.
    """
    d = faults.mesh.d
    f = max(1, faults.f)
    N = faults.mesh.num_nodes
    k = orderings.k
    # Representative count: bounded by the Theorem 6.4 bound and by
    # the number of good nodes (partition sets are disjoint, nonempty).
    p = min((2 * d - 1) * f + 1, max(1, N - f))
    cost_lines = _COST_PRODUCT * k * p * p * p
    widths_sum = sum(faults.mesh.widths)
    cost_spanning = k * p * (
        _COST_PY_STEP * widths_sum + _COST_NP_ELEM * d * N
    )
    return "lines" if cost_lines <= cost_spanning else "spanning"
