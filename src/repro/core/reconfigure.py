"""The roll-back / reconfigure loop (Section 1).

"In some modern parallel computers, a system diagnostic program will
be invoked when new faults are detected.  This will roll back to a
previous checkpoint of the application, redefine the new set of
faults, and reconfigure the machine assuming static faults and global
knowledge.  Our approach and algorithm would be part of the
reconfiguration step."

:class:`ReconfigurationManager` packages exactly that loop: it holds
the machine's cumulative fault state, recomputes the lamb set whenever
faults are reported (keeping surviving previous lambs predetermined so
placement decisions remain stable across epochs — Section 7's
extension), and exposes the per-epoch history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..mesh.faults import FaultSet
from ..mesh.geometry import Link, Mesh, Node
from ..obs import get_registry
from ..routing.ordering import KRoundOrdering
from .lamb import LambResult, find_lamb_set

__all__ = [
    "Epoch",
    "ReconfigurationManager",
    "ReconfigurationError",
    "LADDER_RUNG_FAILURES",
    "largest_good_component",
]


class ReconfigurationError(RuntimeError):
    """Every rung of the degradation ladder failed."""


#: Exception types that mean "this ladder rung legitimately failed"
#: (degenerate partitions, infeasible covers, numeric overflow in the
#: reachability products).  Anything else — a ``TypeError`` from a bad
#: argument, a ``KeyboardInterrupt``, an ``AssertionError`` from a
#: broken invariant — is a *bug*, and the ladder must not absorb it
#: into a silent ``None`` and climb on.
LADDER_RUNG_FAILURES: Tuple[type, ...] = (ValueError, ArithmeticError)


def largest_good_component(faults: FaultSet) -> Tuple[Set[Node], Set[Node]]:
    """Split the good nodes into (largest connected component, rest).

    An edge is usable if at least one direction survives (a
    half-duplex link still physically connects its endpoints for the
    purpose of "is this region attached to the machine").  Used by the
    quarantine rung of the degradation ladder.
    """
    mesh = faults.mesh
    good = [v for v in mesh.nodes() if not faults.node_is_faulty(v)]
    unseen = set(good)
    best: Set[Node] = set()
    # Seed the flood fills in mesh enumeration order; popping from the
    # ``unseen`` set would break equal-size-component ties in hash
    # order and make the quarantine region run-order dependent.
    for start in good:
        if start not in unseen:
            continue
        unseen.remove(start)
        comp = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for v in mesh.neighbors(u):
                if v not in unseen:
                    continue
                if faults.link_is_faulty(u, v) and faults.link_is_faulty(v, u):
                    continue
                unseen.discard(v)
                comp.add(v)
                frontier.append(v)
        if len(comp) > len(best):
            best = comp
    return best, set(good) - best


@dataclass(frozen=True)
class Epoch:
    """One reconfiguration: the fault state and the resulting lambs.

    ``at_cycle`` is the simulator cycle of the triggering fault event
    (-1 when not driven by a live simulation).  ``escalated_rounds``
    and ``quarantined`` record the degradation ladder: how many extra
    routing rounds this epoch had to add, and which (good but
    unreachable) nodes were given up and excluded from the survivor
    set.  A quarantined node is treated as a fault in ``result.faults``
    even though the hardware is alive.
    """

    index: int
    new_node_faults: Tuple[Node, ...]
    new_link_faults: Tuple[Link, ...]
    result: LambResult
    at_cycle: int = -1
    escalated_rounds: int = 0
    quarantined: Tuple[Node, ...] = ()
    #: Why lower rungs of the ladder failed before this epoch's rung
    #: succeeded (``"k=<rounds>: <error>"`` strings, in climb order).
    #: Empty when the first rung succeeded outright.
    rung_failures: Tuple[str, ...] = ()

    @property
    def num_faults(self) -> int:
        return self.result.faults.f

    @property
    def num_lambs(self) -> int:
        return self.result.size

    @property
    def num_survivors(self) -> int:
        return (
            self.result.mesh.num_nodes
            - self.result.faults.num_node_faults
            - self.result.size
        )

    @property
    def degraded(self) -> bool:
        """Whether the degradation ladder went past its first rung."""
        return self.escalated_rounds > 0 or bool(self.quarantined)


class ReconfigurationManager:
    """Tracks fault epochs and recomputes lamb sets.

    Parameters
    ----------
    mesh, orderings:
        The machine and its routing discipline.
    sticky_lambs:
        Keep previous lambs predetermined across epochs (default).  A
        sticky lamb that later fails outright is dropped from the
        predetermined set (it is now simply faulty).
    method, engine:
        Forwarded to :func:`find_lamb_set`.
    """

    def __init__(
        self,
        mesh: Mesh,
        orderings: KRoundOrdering,
        sticky_lambs: bool = True,
        method: str = "bipartite",
        engine: str = "lines",
    ):
        self.mesh = mesh
        self.orderings = orderings
        self.sticky_lambs = sticky_lambs
        self.method = method
        self.engine = engine
        self._node_faults: List[Node] = []
        self._link_faults: List[Link] = []
        self._quarantined: Set[Node] = set()
        self.epochs: List[Epoch] = []
        #: Rung-failure reasons of the degradation climb in progress
        #: (reset per report; published on the resulting Epoch).
        self._rung_failures: List[str] = []

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[Epoch]:
        return self.epochs[-1] if self.epochs else None

    @property
    def current_lambs(self) -> FrozenSet[Node]:
        return self.current.result.lambs if self.epochs else frozenset()

    @property
    def quarantined(self) -> FrozenSet[Node]:
        """Good-but-given-up nodes accumulated across degraded epochs."""
        return frozenset(self._quarantined)

    def fault_set(self) -> FaultSet:
        return FaultSet(self.mesh, self._node_faults, self._link_faults)

    # ------------------------------------------------------------------
    def report_faults(
        self,
        node_faults: Iterable[Sequence[int]] = (),
        link_faults: Iterable[Tuple[Sequence[int], Sequence[int]]] = (),
    ) -> Epoch:
        """Diagnose-and-reconfigure: add the newly detected faults and
        recompute the lamb set.  Returns the new epoch."""
        new_nodes = tuple(tuple(int(x) for x in v) for v in node_faults)
        new_links = tuple(
            (tuple(int(x) for x in u), tuple(int(x) for x in w))
            for (u, w) in link_faults
        )
        if not new_nodes and not new_links and self.epochs:
            raise ValueError("no new faults reported")
        self._node_faults.extend(new_nodes)
        self._link_faults.extend(new_links)
        faults = self.fault_set()
        predetermined: Tuple[Node, ...] = ()
        if self.sticky_lambs and self.epochs:
            predetermined = tuple(
                v for v in self.current_lambs if not faults.node_is_faulty(v)
            )
        result = find_lamb_set(
            faults,
            self.orderings,
            method=self.method,
            predetermined=predetermined,
            engine=self.engine,
        )
        epoch = Epoch(
            index=len(self.epochs),
            new_node_faults=new_nodes,
            new_link_faults=new_links,
            result=result,
        )
        self.epochs.append(epoch)
        return epoch

    # ------------------------------------------------------------------
    # Degradation ladder
    # ------------------------------------------------------------------
    def _sticky_predetermined(self, faults: FaultSet) -> Tuple[Node, ...]:
        if not (self.sticky_lambs and self.epochs):
            return ()
        return tuple(
            v for v in self.current_lambs if not faults.node_is_faulty(v)
        )

    def _try_lambs(
        self, faults: FaultSet, orderings: KRoundOrdering
    ) -> Optional[LambResult]:
        """One ladder rung: compute a lamb set, or None on failure.

        Only *domain* failures (:data:`LADDER_RUNG_FAILURES`) turn
        into ``None`` — and even then the reason is recorded on the
        report and counted in the telemetry registry, never swallowed.
        A non-domain exception (a genuine bug) propagates: the old
        bare ``except Exception`` silently converted typos in the
        pipeline into "every rung failed" quarantine storms.
        """
        try:
            return find_lamb_set(
                faults,
                orderings,
                method=self.method,
                predetermined=self._sticky_predetermined(faults),
                engine=self.engine,
            )
        except LADDER_RUNG_FAILURES as exc:
            reason = f"k={orderings.k}: {type(exc).__name__}: {exc}"
            self._rung_failures.append(reason)
            get_registry().inc(
                "ladder_rung_failures_total", error=type(exc).__name__
            )
            return None

    def _extended(self, extra: int) -> KRoundOrdering:
        """The current discipline with ``extra`` repeats of its last
        round appended (k -> k + extra)."""
        if extra == 0:
            return self.orderings
        rounds = tuple(self.orderings) + (self.orderings[-1],) * extra
        return KRoundOrdering(rounds)

    def report_faults_degraded(
        self,
        node_faults: Iterable[Sequence[int]] = (),
        link_faults: Iterable[Tuple[Sequence[int], Sequence[int]]] = (),
        *,
        lamb_budget: Optional[int] = None,
        max_extra_rounds: int = 1,
        at_cycle: int = -1,
    ) -> Epoch:
        """Diagnose-and-reconfigure with graceful degradation.

        The ladder, climbed until a rung yields a lamb set within
        ``lamb_budget`` (None = unbounded):

        1. recompute the lamb set at the current ``k``;
        2. escalate ``k -> k+1 .. k+max_extra_rounds`` rounds (more
           reachability, bigger routing tables — the escalated
           discipline is *adopted* for later epochs and the simulator
           grows a VC per extra round);
        3. **quarantine**: give up the good nodes outside the largest
           surviving component (they are henceforth treated as faults)
           and recompute on the remaining machine;
        4. last resort: accept the smallest lamb set any rung produced
           rather than crash; raise :class:`ReconfigurationError` only
           if every rung failed outright.
        """
        new_nodes = tuple(tuple(int(x) for x in v) for v in node_faults)
        new_links = tuple(
            (tuple(int(x) for x in u), tuple(int(x) for x in w))
            for (u, w) in link_faults
        )
        if not new_nodes and not new_links and self.epochs:
            raise ValueError("no new faults reported")
        self._node_faults.extend(new_nodes)
        self._link_faults.extend(new_links)
        self._rung_failures = []
        budget = float("inf") if lamb_budget is None else int(lamb_budget)
        # Previously quarantined nodes stay out of the machine.
        faults = self.fault_set()
        if self._quarantined:
            faults = faults.with_nodes_as_faults(sorted(self._quarantined))

        def climb(f: FaultSet, attempts: List) -> Optional[Tuple]:
            for extra in range(max_extra_rounds + 1):
                orderings = self._extended(extra)
                result = self._try_lambs(f, orderings)
                if result is None:
                    continue
                attempts.append((extra, orderings, result))
                if result.size <= budget:
                    return (extra, orderings, result)
            return None

        plain_attempts: List[Tuple[int, KRoundOrdering, LambResult]] = []
        q_attempts: List[Tuple[int, KRoundOrdering, LambResult]] = []
        chosen = climb(faults, plain_attempts)
        quarantined_now: Tuple[Node, ...] = ()
        if chosen is None:
            # Rung 3: quarantine everything outside the largest
            # surviving component and reconfigure the remainder.
            _, rest = largest_good_component(faults)
            if rest:
                chosen = climb(
                    faults.with_nodes_as_faults(sorted(rest)), q_attempts
                )
                if chosen is not None or q_attempts:
                    quarantined_now = tuple(sorted(rest))
                    self._quarantined.update(rest)
        if chosen is None:
            # Rung 4: accept the least-bad oversized result (prefer
            # the quarantined machine — its results match the
            # quarantine bookkeeping above).
            fallback = q_attempts or plain_attempts
            if not fallback:
                detail = (
                    "; rung failures: " + "; ".join(self._rung_failures)
                    if self._rung_failures
                    else ""
                )
                raise ReconfigurationError(
                    f"no rung of the degradation ladder produced a lamb "
                    f"set for {faults}{detail}"
                )
            chosen = min(fallback, key=lambda t: t[2].size)
        extra, orderings, result = chosen
        if extra > 0:
            self.orderings = orderings  # adopt the escalated discipline
        epoch = Epoch(
            index=len(self.epochs),
            new_node_faults=new_nodes,
            new_link_faults=new_links,
            result=result,
            at_cycle=at_cycle,
            escalated_rounds=extra,
            quarantined=quarantined_now,
            rung_failures=tuple(self._rung_failures),
        )
        self.epochs.append(epoch)
        return epoch

    # ------------------------------------------------------------------
    def lamb_growth(self) -> List[int]:
        """Lamb-set size per epoch."""
        return [e.num_lambs for e in self.epochs]

    def monotone_lambs(self) -> bool:
        """Whether (with sticky lambs) every epoch's lamb set contains
        the previous epoch's surviving lambs."""
        for prev, cur in zip(self.epochs, self.epochs[1:]):
            kept = {
                v
                for v in prev.result.lambs
                if not cur.result.faults.node_is_faulty(v)
            }
            if not kept <= set(cur.result.lambs):
                return False
        return True
