"""The roll-back / reconfigure loop (Section 1).

"In some modern parallel computers, a system diagnostic program will
be invoked when new faults are detected.  This will roll back to a
previous checkpoint of the application, redefine the new set of
faults, and reconfigure the machine assuming static faults and global
knowledge.  Our approach and algorithm would be part of the
reconfiguration step."

:class:`ReconfigurationManager` packages exactly that loop: it holds
the machine's cumulative fault state, recomputes the lamb set whenever
faults are reported (keeping surviving previous lambs predetermined so
placement decisions remain stable across epochs — Section 7's
extension), and exposes the per-epoch history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..mesh.faults import FaultSet
from ..mesh.geometry import Link, Mesh, Node
from ..routing.ordering import KRoundOrdering
from .lamb import LambResult, find_lamb_set

__all__ = ["Epoch", "ReconfigurationManager"]


@dataclass(frozen=True)
class Epoch:
    """One reconfiguration: the fault state and the resulting lambs."""

    index: int
    new_node_faults: Tuple[Node, ...]
    new_link_faults: Tuple[Link, ...]
    result: LambResult

    @property
    def num_faults(self) -> int:
        return self.result.faults.f

    @property
    def num_lambs(self) -> int:
        return self.result.size

    @property
    def num_survivors(self) -> int:
        return (
            self.result.mesh.num_nodes
            - self.result.faults.num_node_faults
            - self.result.size
        )


class ReconfigurationManager:
    """Tracks fault epochs and recomputes lamb sets.

    Parameters
    ----------
    mesh, orderings:
        The machine and its routing discipline.
    sticky_lambs:
        Keep previous lambs predetermined across epochs (default).  A
        sticky lamb that later fails outright is dropped from the
        predetermined set (it is now simply faulty).
    method, engine:
        Forwarded to :func:`find_lamb_set`.
    """

    def __init__(
        self,
        mesh: Mesh,
        orderings: KRoundOrdering,
        sticky_lambs: bool = True,
        method: str = "bipartite",
        engine: str = "lines",
    ):
        self.mesh = mesh
        self.orderings = orderings
        self.sticky_lambs = sticky_lambs
        self.method = method
        self.engine = engine
        self._node_faults: List[Node] = []
        self._link_faults: List[Link] = []
        self.epochs: List[Epoch] = []

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[Epoch]:
        return self.epochs[-1] if self.epochs else None

    @property
    def current_lambs(self) -> FrozenSet[Node]:
        return self.current.result.lambs if self.epochs else frozenset()

    def fault_set(self) -> FaultSet:
        return FaultSet(self.mesh, self._node_faults, self._link_faults)

    # ------------------------------------------------------------------
    def report_faults(
        self,
        node_faults: Iterable[Sequence[int]] = (),
        link_faults: Iterable[Tuple[Sequence[int], Sequence[int]]] = (),
    ) -> Epoch:
        """Diagnose-and-reconfigure: add the newly detected faults and
        recompute the lamb set.  Returns the new epoch."""
        new_nodes = tuple(tuple(int(x) for x in v) for v in node_faults)
        new_links = tuple(
            (tuple(int(x) for x in u), tuple(int(x) for x in w))
            for (u, w) in link_faults
        )
        if not new_nodes and not new_links and self.epochs:
            raise ValueError("no new faults reported")
        self._node_faults.extend(new_nodes)
        self._link_faults.extend(new_links)
        faults = self.fault_set()
        predetermined: Tuple[Node, ...] = ()
        if self.sticky_lambs and self.epochs:
            predetermined = tuple(
                v for v in self.current_lambs if not faults.node_is_faulty(v)
            )
        result = find_lamb_set(
            faults,
            self.orderings,
            method=self.method,
            predetermined=predetermined,
            engine=self.engine,
        )
        epoch = Epoch(
            index=len(self.epochs),
            new_node_faults=new_nodes,
            new_link_faults=new_links,
            result=result,
        )
        self.epochs.append(epoch)
        return epoch

    # ------------------------------------------------------------------
    def lamb_growth(self) -> List[int]:
        """Lamb-set size per epoch."""
        return [e.num_lambs for e in self.epochs]

    def monotone_lambs(self) -> bool:
        """Whether (with sticky lambs) every epoch's lamb set contains
        the previous epoch's surviving lambs."""
        for prev, cur in zip(self.epochs, self.epochs[1:]):
            kept = {
                v
                for v in prev.result.lambs
                if not cur.result.faults.node_is_faulty(v)
            }
            if not kept <= set(cur.result.lambs):
                return False
        return True
