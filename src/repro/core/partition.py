"""Find-SES-Partition and Find-DES-Partition (Section 6.1, Fig. 11).

Partitions the good nodes of a faulty mesh into at most
``(2d - 1) f + 1`` rectangular source-equivalent (SES) or
destination-equivalent (DES) sets, in time polynomial in ``d`` and
``f`` and *independent of the mesh size*.

The implementation works in "pi-space": coordinates are permuted so
that the routing order becomes ascending, the recursion peels off the
last-routed dimension (exactly as in the paper, which presents the
ascending case), and the resulting rectangles are mapped back to
natural coordinates.  Directed link faults are handled as half-integer
cuts: a cut *within* a slab contributes that slab to the recursion set
``H``; a cut *between* two slabs splits the maximal intervals of step
2(c) without forcing either slab into ``H`` (this preserves both
Lemma 6.1 — the final segment of a route out of ``S' . c`` is
identical for all sources in the set — and Lemma 6.3 — the interval
sets remain internally fault-free).

Every rectangle produced is fault-free, so its minimal corner is a
valid representative; ``rep(S) = S.lo`` reproduces the paper's
``rep(S) = (0, ..., 0, l_j, c_{j+1}, ..., c_d)`` convention.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh, Node
from ..mesh.regions import Rect
from .ordering_utils import flip_link_faults
from ..routing.ordering import Ordering

__all__ = [
    "find_ses_partition",
    "find_des_partition",
    "partition_representatives",
]

# In pi-space, a node fault is a coordinate tuple; a link fault is
# (position, line_coords_without_position, lower_coordinate) meaning a
# cut between lower and lower+1 along that position (direction is
# irrelevant for partitioning: we split conservatively on any cut).
_PNode = Tuple[int, ...]
_PCut = Tuple[int, Tuple[int, ...], int]


def _to_pi_space(
    faults: FaultSet, pi: Ordering
) -> Tuple[List[int], List[_PNode], List[_PCut]]:
    mesh = faults.mesh
    perm = pi.perm
    widths = [mesh.widths[j] for j in perm]
    pnodes = [tuple(v[j] for j in perm) for v in faults.node_faults]
    pcuts: List[_PCut] = []
    seen: Set[_PCut] = set()
    inv = {dim: t for t, dim in enumerate(perm)}
    for (u, w) in faults.link_faults:
        j = next(i for i in range(mesh.d) if u[i] != w[i])
        t = inv[j]
        pu = tuple(u[dim] for dim in perm)
        lower = min(u[j], w[j])
        key = pu[:t] + pu[t + 1 :]
        cut = (t, key, lower)
        if cut not in seen:
            seen.add(cut)
            pcuts.append(cut)
    return widths, pnodes, pcuts


def _split_intervals(
    n: int, blocked: Set[int], cuts_between: Set[int]
) -> List[Tuple[int, int]]:
    """Maximal intervals of ``[0, n-1] - blocked`` that do not span any
    cut between ``c`` and ``c+1`` for ``c`` in ``cuts_between``."""
    out = []
    start = None
    for x in range(n):
        if x in blocked:
            if start is not None:
                out.append((start, x - 1))
                start = None
            continue
        if start is None:
            start = x
        if x in cuts_between and x + 1 < n:
            out.append((start, x))
            start = None
    if start is not None:
        out.append((start, n - 1))
    return out


def _find_partition_pi_space(
    widths: Sequence[int], pnodes: List[_PNode], pcuts: List[_PCut]
) -> List[Tuple[Tuple[int, int], ...]]:
    """Recursive Fig. 11 kernel; returns rects as interval tuples in
    pi-space."""
    d = len(widths)
    last = d - 1
    n_last = widths[last]
    if d == 1:
        blocked = {v[0] for v in pnodes}
        cuts = {lower for (t, _key, lower) in pcuts}
        return [((a, b),) for (a, b) in _split_intervals(n_last, blocked, cuts)]
    # Step 2(a): slabs (values of the last coordinate) containing a node
    # fault or an intra-slab link fault.
    H: Set[int] = {v[last] for v in pnodes}
    for (t, key, _lower) in pcuts:
        if t != last:
            # key omits position t; the last coordinate sits at index
            # last - 1 of key (since t < last).
            H.add(key[-1])
    out: List[Tuple[Tuple[int, int], ...]] = []
    # Step 2(b): recurse into each faulty slab.
    for c in sorted(H):
        sub_nodes = [v[:last] for v in pnodes if v[last] == c]
        sub_cuts = [
            (t, key[:-1], lower)
            for (t, key, lower) in pcuts
            if t != last and key[-1] == c
        ]
        for rect in _find_partition_pi_space(widths[:last], sub_nodes, sub_cuts):
            out.append(rect + ((c, c),))
    # Steps 2(c)-(d): fault-free slab runs, split at inter-slab cuts.
    last_cuts = {lower for (t, _key, lower) in pcuts if t == last}
    prefix = tuple((0, w - 1) for w in widths[:last])
    for (a, b) in _split_intervals(n_last, H, last_cuts):
        out.append(prefix + ((a, b),))
    return out


def _from_pi_space(
    mesh: Mesh, pi: Ordering, rects: List[Tuple[Tuple[int, int], ...]]
) -> List[Rect]:
    out = []
    for intervals in rects:
        lo = [0] * mesh.d
        hi = [0] * mesh.d
        for t, dim in enumerate(pi.perm):
            lo[dim], hi[dim] = intervals[t]
        out.append(Rect(mesh, lo, hi))
    return out


def find_ses_partition(faults: FaultSet, pi: Ordering) -> List[Rect]:
    """An SES partition for ``(F, pi)`` of size at most
    ``(2d - 1) f + 1`` (Theorem 6.4).

    Every returned rectangle is fault-free and the rectangles partition
    the good nodes.
    """
    if pi.d != faults.mesh.d:
        raise ValueError("ordering dimensionality mismatch")
    widths, pnodes, pcuts = _to_pi_space(faults, pi)
    return _from_pi_space(
        faults.mesh, pi, _find_partition_pi_space(widths, pnodes, pcuts)
    )


def find_des_partition(faults: FaultSet, pi: Ordering) -> List[Rect]:
    """A DES partition for ``(F, pi)``.

    Uses the duality of Lemma 6.2: a set is a DES for ``pi`` iff it is
    an SES for the reversed ordering *with all directed link faults
    flipped* (flipping matters only when link faults fail in a single
    direction).
    """
    flipped = flip_link_faults(faults)
    return find_ses_partition(flipped, pi.reversed())


def partition_representatives(rects: Sequence[Rect]) -> List[Node]:
    """One representative (the minimal corner) per rectangle.

    Valid because the Fig. 11 rectangles are fault-free, so any member
    — in particular ``S.lo`` — is a good node (Lemma 4.1 then lets a
    single member stand in for the whole set).
    """
    return [r.lo for r in rects]
