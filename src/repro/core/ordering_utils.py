"""Small fault/ordering transformations shared by the core modules."""

from __future__ import annotations

from ..mesh.faults import FaultSet

__all__ = ["flip_link_faults"]


def flip_link_faults(faults: FaultSet) -> FaultSet:
    """The fault set with every directed link fault reversed.

    Node faults are unchanged.  Used by the DES/SES duality (a DES for
    ``pi`` is an SES for ``pi`` reversed on the link-flipped fault set)
    and by reverse-reachability computations.
    """
    if not faults.link_faults:
        return faults
    return FaultSet(
        faults.mesh,
        faults.node_faults,
        [(w, u) for (u, w) in faults.link_faults],
    )
