"""Exact equivalence classes: SEC and DEC partitions (Remark 4.1).

The SEC (source equivalence class) partition is the unique
minimum-size SES partition; likewise DEC for destinations.  Computing
them requires whole-mesh reachability, so they cost O(d N^2 / 64)-ish
time and are used only for validation and for the ablation comparing
SEC sizes with the Fig. 11 rectangular partitions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.geometry import Node
from ..routing.multiround import FaultGrids, multi_source_reach_sets
from ..routing.ordering import Ordering

__all__ = [
    "one_round_reach_matrix",
    "sec_partition",
    "dec_partition",
    "is_ses",
    "is_des",
    "is_partition_of_good_nodes",
]


def one_round_reach_matrix(faults: FaultSet, pi: Ordering) -> np.ndarray:
    """N x N boolean matrix of one-round ``(F, pi)``-reachability.

    Uses the bit-parallel multi-source kernel (64 sources per axis
    scan); :func:`reach_set_one_round` per source is the sequential
    oracle it is pinned against."""
    mesh = faults.mesh
    grids = FaultGrids(faults)
    N = mesh.num_nodes
    out = np.zeros((N, N), dtype=bool)
    good = [v for v in mesh.nodes() if not faults.node_is_faulty(v)]
    rows = multi_source_reach_sets(grids, [pi], good)
    for v, row in zip(good, rows):
        out[mesh.index_of(v)] = row
    return out


def _group_by_signature(
    faults: FaultSet, signatures: np.ndarray
) -> List[List[Node]]:
    mesh = faults.mesh
    groups: Dict[bytes, List[Node]] = {}
    order: List[bytes] = []
    for v in mesh.nodes():
        if faults.node_is_faulty(v):
            continue
        key = signatures[mesh.index_of(v)].tobytes()
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(v)
    return [groups[k] for k in order]


def sec_partition(faults: FaultSet, pi: Ordering) -> List[List[Node]]:
    """The SEC partition: good nodes grouped by identical reach-sets
    as sources (the equivalence relation of Remark 4.1)."""
    R = one_round_reach_matrix(faults, pi)
    return _group_by_signature(faults, np.packbits(R, axis=1))


def dec_partition(faults: FaultSet, pi: Ordering) -> List[List[Node]]:
    """The DEC partition: good nodes grouped by identical reachability
    as destinations."""
    R = one_round_reach_matrix(faults, pi)
    return _group_by_signature(faults, np.packbits(R.T, axis=1))


def is_ses(faults: FaultSet, pi: Ordering, nodes: Sequence[Node]) -> bool:
    """Definition 4.1.1 check: all members have identical reach-sets."""
    R = one_round_reach_matrix(faults, pi)
    mesh = faults.mesh
    nodes = [tuple(v) for v in nodes]
    if any(faults.node_is_faulty(v) for v in nodes):
        return False
    if not nodes:
        return True
    first = R[mesh.index_of(nodes[0])]
    return all(np.array_equal(R[mesh.index_of(v)], first) for v in nodes[1:])


def is_des(faults: FaultSet, pi: Ordering, nodes: Sequence[Node]) -> bool:
    """Definition 4.1.1 check for destinations."""
    R = one_round_reach_matrix(faults, pi)
    mesh = faults.mesh
    nodes = [tuple(v) for v in nodes]
    if any(faults.node_is_faulty(v) for v in nodes):
        return False
    if not nodes:
        return True
    first = R[:, mesh.index_of(nodes[0])]
    return all(np.array_equal(R[:, mesh.index_of(v)], first) for v in nodes[1:])


def is_partition_of_good_nodes(
    faults: FaultSet, groups: Sequence[Sequence[Node]]
) -> bool:
    """Whether the groups are pairwise disjoint and cover exactly the
    good nodes (Definition 4.1.2's partition requirement)."""
    seen: Set[Node] = set()
    for g in groups:
        for v in g:
            v = tuple(v)
            if v in seen:
                return False
            seen.add(v)
    good = {v for v in faults.mesh.nodes() if not faults.node_is_faulty(v)}
    return seen == good
