"""The lamb-set algorithms Lamb1 and Lamb2 (Section 6).

``find_lamb_set`` runs the three-phase pipeline of Fig. 14:

1. *Find-SES-Partition* / *Find-DES-Partition* per round ordering
   (:mod:`repro.core.partition`),
2. *Find-Reachability* (:mod:`repro.core.reachability`),
3. a reduction to weighted vertex cover —

   - ``method="bipartite"`` (**Lamb1**): WVC on a bipartite graph,
     solved *optimally* via max-flow; the resulting lamb set is within
     a factor 2 of the minimum (Lemma 6.6 / Theorem 6.7);
   - ``method="general"`` (**Lamb2**): WVC on a general graph over the
     nonempty intersections ``S_i ∩ D_j`` with the Bar-Yehuda–Even
     2-approximation (Theorem 6.9 with r = 2);
   - ``method="general-exact"``: same graph with exact branch-and-bound
     WVC — an *optimal* lamb set, exponential time, small instances
     only (Corollary 6.10).

Section 7 extensions are built in: per-node *values* (weights become
value sums) and *predetermined* lamb nodes (removed from every set and
re-added to the final lamb set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..graphs.bipartite_vc import min_weight_vertex_cover_bipartite
from ..graphs.wvc import wvc_exact, wvc_local_ratio
from ..obs import get_registry
from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh, Node
from ..mesh.regions import Rect
from ..routing.linefaults import LineFaultIndex
from ..routing.ordering import KRoundOrdering, Ordering
from .partition import find_des_partition, find_ses_partition
from .reachability import ReachabilityData, find_reachability

__all__ = ["LambResult", "find_lamb_set", "METHODS"]

METHODS = ("bipartite", "general", "general-exact")


@dataclass
class LambResult:
    """Everything produced by one run of the lamb pipeline.

    Attributes
    ----------
    lambs:
        The lamb set Λ as a frozen set of node tuples.
    chosen_ses, chosen_des:
        Indices of the SES's / DES's whose union forms Λ (bipartite
        method; empty for the general methods, which choose
        intersections instead).
    ses_partition, des_partition:
        The round-1 SES partition and round-k DES partition.
    reach:
        The :class:`ReachabilityData` (contains ``R^(k)`` and
        densities).
    cover_weight:
        Weight of the vertex cover that produced Λ.
    timings:
        Per-phase wall-clock seconds (``partition``, ``reachability``,
        ``wvc``, ``total``) — the quantity plotted in Fig. 26.
    """

    mesh: Mesh
    faults: FaultSet
    orderings: KRoundOrdering
    method: str
    lambs: FrozenSet[Node]
    chosen_ses: Tuple[int, ...]
    chosen_des: Tuple[int, ...]
    ses_partition: List[Rect]
    des_partition: List[Rect]
    reach: ReachabilityData
    cover_weight: float
    predetermined: FrozenSet[Node] = frozenset()
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """|Λ|, the number of lamb nodes."""
        return len(self.lambs)

    @property
    def num_ses(self) -> int:
        return len(self.ses_partition)

    @property
    def num_des(self) -> int:
        return len(self.des_partition)

    def is_lamb(self, node: Sequence[int]) -> bool:
        return tuple(node) in self.lambs

    def is_survivor(self, node: Sequence[int]) -> bool:
        """Good node that is neither faulty nor a lamb."""
        node = tuple(node)
        return (
            self.mesh.contains(node)
            and not self.faults.node_is_faulty(node)
            and node not in self.lambs
        )

    def survivors(self) -> List[Node]:
        """All survivor nodes (materializes the mesh; small meshes)."""
        return [v for v in self.mesh.nodes() if self.is_survivor(v)]

    def additional_damage(self) -> float:
        """|Λ| / f, the paper's 'additional damage' metric (Fig. 19)."""
        if self.faults.f == 0:
            return 0.0
        return self.size / self.faults.f


def _rect_weights(
    rects: Sequence[Rect], values: Mapping[Node, float]
) -> List[float]:
    """Vertex weights: set sizes adjusted by per-node values
    (Section 7: the weight of a vertex is the sum of the values of its
    nodes, defaulting to 1)."""
    weights = [float(r.size) for r in rects]
    if values:
        for node, val in values.items():
            if not 0.0 <= val <= 1.0:
                raise ValueError(f"value of {node} must lie in [0, 1]")
            for i, r in enumerate(rects):
                if r.contains(node):
                    weights[i] -= 1.0 - val
                    break
    return weights


def find_lamb_set(
    faults: FaultSet,
    orderings: KRoundOrdering,
    method: str = "bipartite",
    values: Optional[Mapping[Node, float]] = None,
    predetermined: Iterable[Node] = (),
    index: Optional[LineFaultIndex] = None,
    wvc_max_vertices: int = 40,
    engine: str = "lines",
    packed: Optional[bool] = None,
) -> LambResult:
    """Find a ``(k, F, pi_vec)``-lamb set (Definition 2.6).

    Parameters
    ----------
    faults:
        The fault set (nodes and/or directed links).
    orderings:
        The k-round ordering; use
        ``repro.routing.repeated(xyz(), 2)`` for the paper's standard
        two rounds of XYZ.
    method:
        ``"bipartite"`` (Lamb1, 2-approximation, the default),
        ``"general"`` (Lamb2 with a 2-approximate WVC), or
        ``"general-exact"`` (optimal lamb set, exponential time).
    values:
        Optional map node -> value in [0, 1]; the algorithm prefers
        sacrificing low-value nodes (Section 7).
    predetermined:
        Nodes that must be lambs regardless (Section 7); they are
        excluded from every SES/DES weight and added to Λ at the end.
    index:
        A prebuilt :class:`LineFaultIndex` (rebuilt if omitted).
    wvc_max_vertices:
        Size guard for the exponential exact WVC solver used by
        ``method="general-exact"`` (ignored by the other methods).
    engine:
        Reachability engine: ``"lines"`` (the O(k d^3 f^3)
        representative-pair kernel, mesh-size independent — the
        default), ``"spanning"`` (per-representative k-round floods,
        O(d^2 f N), better when f is large relative to N — footnote 7
        of the paper), or ``"auto"`` (cost-model choice).
    packed:
        Product kernel for the ``"lines"`` engine's R·I·R chain:
        ``True`` forces the bit-packed uint64 kernels, ``False`` the
        dense-bool oracle, ``None`` (default) auto-selects by matrix
        size.  Both are bit-identical (ignored by ``"spanning"``).

    Returns
    -------
    LambResult

    Examples
    --------
    The worked example of Section 5 (12x12 mesh, three faults):

    >>> from repro.mesh import Mesh, FaultSet
    >>> from repro.routing import xy, repeated
    >>> mesh = Mesh((12, 12))
    >>> faults = FaultSet(mesh, [(9, 1), (11, 6), (10, 10)])
    >>> result = find_lamb_set(faults, repeated(xy(), 2))
    >>> sorted(result.lambs)
    [(10, 11), (11, 10)]
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}")
    if engine not in ("lines", "spanning", "auto"):
        raise ValueError("engine must be 'lines', 'spanning' or 'auto'")
    if engine == "auto":
        from .spanning import recommended_engine

        engine = recommended_engine(faults, orderings)
    mesh = faults.mesh
    predetermined = frozenset(tuple(v) for v in predetermined)
    for v in predetermined:
        if faults.node_is_faulty(v):
            raise ValueError(f"predetermined lamb {v} is faulty")
    values = dict(values or {})
    for v in predetermined:
        values[v] = 0.0

    reg = get_registry()
    with reg.span(
        "lamb.find_lamb_set", method=method, engine=engine,
        f=faults.f, k=orderings.k,
    ) as sp_total:
        # Phase 1 (Find-SES-Partition / Find-DES-Partition, Fig. 14):
        # the line-fault index plus the per-round partitions (shared
        # across identical round orderings).
        with reg.span("lamb.partition") as sp_partition:
            if index is None:
                index = LineFaultIndex(faults)
            ses_cache: Dict[Ordering, List[Rect]] = {}
            des_cache: Dict[Ordering, List[Rect]] = {}
            ses_partitions: List[List[Rect]] = []
            des_partitions: List[List[Rect]] = []
            for pi in orderings:
                if pi not in ses_cache:
                    ses_cache[pi] = find_ses_partition(faults, pi)
                    des_cache[pi] = find_des_partition(faults, pi)
                ses_partitions.append(ses_cache[pi])
                des_partitions.append(des_cache[pi])
            rep_cache: Dict[int, np.ndarray] = {}

            def reps(rects: List[Rect]) -> np.ndarray:
                key = id(rects)
                if key not in rep_cache:
                    if rects:
                        rep_cache[key] = np.asarray(
                            [r.lo for r in rects], dtype=np.int64
                        )
                    else:
                        rep_cache[key] = np.empty((0, mesh.d), dtype=np.int64)
                return rep_cache[key]

            ses_reps = [reps(p) for p in ses_partitions]
            des_reps = [reps(p) for p in des_partitions]

        # Phase 2 (Find-Reachability: the R^(k) boolean products).
        with reg.span("lamb.reachability", engine=engine) as sp_reach:
            if engine == "spanning":
                from .spanning import find_reachability_spanning

                reach = find_reachability_spanning(
                    faults, orderings, ses_partitions, des_partitions,
                    ses_reps, des_reps,
                )
            else:
                reach = find_reachability(
                    index, orderings, ses_partitions, des_partitions,
                    ses_reps, des_reps, packed=packed,
                )

        # Phase 3 (Reduce-WVC + the max-flow / local-ratio cover).
        with reg.span("lamb.wvc", method=method) as sp_wvc:
            ses = ses_partitions[0]
            des = des_partitions[-1]
            Rk = reach.Rk
            zeros = np.argwhere(~Rk)
            lambs: Set[Node] = set()
            chosen_ses: Tuple[int, ...] = ()
            chosen_des: Tuple[int, ...] = ()
            cover_weight = 0.0
            if zeros.size:
                if method == "bipartite":
                    chosen_ses, chosen_des, cover_weight = _reduce_bipartite(
                        ses, des, zeros, values
                    )
                    for i in chosen_ses:
                        lambs.update(ses[i].nodes())
                    for j in chosen_des:
                        lambs.update(des[j].nodes())
                else:
                    lambs, cover_weight = _reduce_general(
                        ses, des, Rk, zeros, values,
                        exact=(method == "general-exact"),
                        wvc_max_vertices=wvc_max_vertices,
                    )
            lambs.update(predetermined)
    reg.inc("lamb_runs_total", method=method)
    reg.inc("lamb_nodes_total", len(lambs))

    return LambResult(
        mesh=mesh,
        faults=faults,
        orderings=orderings,
        method=method,
        lambs=frozenset(lambs),
        chosen_ses=chosen_ses,
        chosen_des=chosen_des,
        ses_partition=ses,
        des_partition=des,
        reach=reach,
        cover_weight=cover_weight,
        predetermined=predetermined,
        timings={
            "partition": sp_partition.seconds,
            "reachability": sp_reach.seconds,
            "wvc": sp_wvc.seconds,
            "total": sp_total.seconds,
        },
    )


def _reduce_bipartite(
    ses: Sequence[Rect],
    des: Sequence[Rect],
    zeros: np.ndarray,
    values: Mapping[Node, float],
) -> Tuple[Tuple[int, ...], Tuple[int, ...], float]:
    """Reduce-WVC(Bipartite), Fig. 13."""
    rel_s = sorted({int(i) for i, _ in zeros})
    rel_d = sorted({int(j) for _, j in zeros})
    s_pos = {i: a for a, i in enumerate(rel_s)}
    d_pos = {j: b for b, j in enumerate(rel_d)}
    left_w = _rect_weights([ses[i] for i in rel_s], values)
    right_w = _rect_weights([des[j] for j in rel_d], values)
    edges = [(s_pos[int(i)], d_pos[int(j)]) for i, j in zeros]
    cover_l, cover_r, weight = min_weight_vertex_cover_bipartite(
        left_w, right_w, edges
    )
    return (
        tuple(rel_s[a] for a in sorted(cover_l)),
        tuple(rel_d[b] for b in sorted(cover_r)),
        weight,
    )


def _reduce_general(
    ses: Sequence[Rect],
    des: Sequence[Rect],
    Rk: np.ndarray,
    zeros: np.ndarray,
    values: Mapping[Node, float],
    exact: bool,
    wvc_max_vertices: int = 40,
) -> Tuple[Set[Node], float]:
    """Reduce-WVC(General), Fig. 16.

    Vertices are the nonempty intersections ``S_i ∩ D_j`` restricted to
    those with at least one incident edge; ``u_{i,j} ~ u_{i',j'}`` iff
    ``R^(k)(i, j') = 0`` or ``R^(k)(i', j) = 0``.
    """
    zero_rows = {int(i) for i, _ in zeros}
    zero_cols = {int(j) for _, j in zeros}
    # Candidate vertices: an intersection vertex u_{i,j} has an edge
    # only if row i or column j contains a zero (pair it with some
    # vertex in the zero's column/row).
    vertices: List[Tuple[int, int, Rect]] = []
    for i, S in enumerate(ses):
        for j, D in enumerate(des):
            if i not in zero_rows and j not in zero_cols:
                continue
            if S.intersection_size(D) == 0:
                continue
            vertices.append((i, j, S.intersection(D)))
    n = len(vertices)
    edges: List[Tuple[int, int]] = []
    for a in range(n):
        i, j, _ = vertices[a]
        for b in range(a + 1, n):
            i2, j2, _ = vertices[b]
            if not Rk[i, j2] or not Rk[i2, j]:
                edges.append((a, b))
    weights = _rect_weights([r for _, _, r in vertices], values)
    if exact:
        cover = wvc_exact(n, weights, edges, max_vertices=wvc_max_vertices)
    else:
        cover = wvc_local_ratio(n, weights, edges)
    lambs: Set[Node] = set()
    weight = 0.0
    for a in cover:
        _, _, rect = vertices[a]
        lambs.update(rect.nodes())
        weight += weights[a]
    return lambs, weight
