"""Generic-topology lamb finding (Section 7).

The rectangular partition machinery is mesh-specific, but the lamb
*method* only needs a set of nodes and a "simple reachability" relation
``R(v, w, F)``.  This module implements the general recipe the paper
sketches: treat every node as its own SES and DES (exactly the
construction behind Theorem 9.3), reduce to vertex cover, and solve.
Cost is O(N^2)-ish, so it targets small instances — tori, hypercubes
with exotic orderings, or arbitrary graphs.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..graphs.bipartite_vc import min_weight_vertex_cover_bipartite
from ..graphs.wvc import wvc_exact, wvc_local_ratio
from ..mesh.faults import FaultSet
from ..mesh.torus import Torus
from ..routing.dor import torus_one_round_reachable
from ..routing.ordering import KRoundOrdering

__all__ = [
    "k_round_matrix_from_relation",
    "generic_lamb_set",
    "torus_reach_matrix",
    "torus_lamb_set",
]

NodeT = Hashable


def k_round_matrix_from_relation(
    nodes: Sequence[NodeT],
    round_relations: Sequence[Callable[[NodeT, NodeT], bool]],
) -> np.ndarray:
    """Build ``R^(k)`` over explicit nodes from per-round scalar
    one-round reachability predicates (Definition 2.5.2 unrolled via
    boolean matrix products)."""
    n = len(nodes)
    acc: Optional[np.ndarray] = None
    cache: Dict[int, np.ndarray] = {}
    for rel in round_relations:
        key = id(rel)
        if key not in cache:
            R = np.zeros((n, n), dtype=bool)
            for i, v in enumerate(nodes):
                for j, w in enumerate(nodes):
                    R[i, j] = rel(v, w)
            cache[key] = R
        R = cache[key]
        if acc is None:
            acc = R
        else:
            acc = (acc.astype(np.float32) @ R.astype(np.float32)) > 0.5
    assert acc is not None
    return acc


def generic_lamb_set(
    nodes: Sequence[NodeT],
    Rk: np.ndarray,
    method: str = "bipartite",
    weights: Optional[Sequence[float]] = None,
) -> Set[NodeT]:
    """Find a lamb set over explicit good nodes given ``R^(k)``.

    ``Rk[i, j]`` says node ``i`` can k-round-reach node ``j``.  With
    ``method="bipartite"`` this is Lamb1 with singleton SES/DES sets
    (2-approximate); ``"general-exact"`` solves the Theorem 9.3 vertex
    cover exactly (optimal lamb set, exponential time);
    ``"general"`` uses the 2-approximate WVC.
    """
    n = len(nodes)
    if Rk.shape != (n, n):
        raise ValueError("Rk shape mismatch")
    if weights is None:
        weights = [1.0] * n
    zeros = np.argwhere(~Rk)
    if zeros.size == 0:
        return set()
    if method == "bipartite":
        rel_s = sorted({int(i) for i, _ in zeros})
        rel_d = sorted({int(j) for _, j in zeros})
        s_pos = {i: a for a, i in enumerate(rel_s)}
        d_pos = {j: b for b, j in enumerate(rel_d)}
        edges = [(s_pos[int(i)], d_pos[int(j)]) for i, j in zeros]
        cl, cr, _ = min_weight_vertex_cover_bipartite(
            [weights[i] for i in rel_s], [weights[j] for j in rel_d], edges
        )
        out = {nodes[rel_s[a]] for a in cl}
        out |= {nodes[rel_d[b]] for b in cr}
        return out
    # General graph: vertex per node; edge (u, u') iff one of the two
    # directions is unreachable (Theorem 9.3 construction).
    bad = ~Rk | ~Rk.T
    pairs = np.argwhere(np.triu(bad, k=1))
    edges = [(int(a), int(b)) for a, b in pairs]
    if method == "general-exact":
        cover = wvc_exact(n, list(weights), edges)
    elif method == "general":
        cover = wvc_local_ratio(n, list(weights), edges)
    else:
        raise ValueError(f"unknown method {method!r}")
    return {nodes[a] for a in cover}


def torus_reach_matrix(
    faults: FaultSet, orderings: KRoundOrdering
) -> Tuple[List, np.ndarray]:
    """``(good_nodes, R^(k))`` for a torus with minimal-direction
    dimension-ordered routing (small tori only: O(k N^2) route walks).
    """
    torus = faults.mesh
    if not isinstance(torus, Torus):
        raise TypeError("expected a Torus")
    good = faults.good_nodes()
    rel_by_pi: Dict = {}
    rels = []
    for pi in orderings:
        if pi not in rel_by_pi:
            rel_by_pi[pi] = (
                lambda v, w, pi=pi: torus_one_round_reachable(faults, pi, v, w)
            )
        rels.append(rel_by_pi[pi])
    return good, k_round_matrix_from_relation(good, rels)


def torus_lamb_set(
    faults: FaultSet, orderings: KRoundOrdering, method: str = "bipartite"
) -> Set:
    """Lamb set for a faulty torus (Section 7 extension)."""
    good, Rk = torus_reach_matrix(faults, orderings)
    return generic_lamb_set(good, Rk, method=method)
