"""Core of the reproduction: the lamb-set machinery of Sections 4-7."""

from .bounds import (
    one_round_expected_lamb_lower_bound,
    partition_size_bound,
    partition_size_bound_loose,
)
from .equivalence import (
    dec_partition,
    is_des,
    is_partition_of_good_nodes,
    is_ses,
    one_round_reach_matrix,
    sec_partition,
)
from .generic import (
    generic_lamb_set,
    k_round_matrix_from_relation,
    torus_lamb_set,
    torus_reach_matrix,
)
from .lamb import METHODS, LambResult, find_lamb_set
from .partition import (
    find_des_partition,
    find_ses_partition,
    partition_representatives,
)
from .reachability import (
    ReachabilityData,
    bool_matmul,
    density,
    find_reachability,
    one_round_reachability_matrix,
)
from .reconfigure import (
    Epoch,
    ReconfigurationError,
    ReconfigurationManager,
    largest_good_component,
)
from .routing_table import RouteEntry, RoutingTable, build_routing_table
from .spanning import (
    find_reachability_spanning,
    one_round_reachability_matrix_spanning,
    recommended_engine,
)
from .validate import (
    full_reach_matrix,
    is_lamb_set,
    is_survivor_set,
    survivor_violations,
)

__all__ = [
    "find_lamb_set",
    "LambResult",
    "METHODS",
    "find_ses_partition",
    "find_des_partition",
    "partition_representatives",
    "one_round_reachability_matrix",
    "find_reachability",
    "ReachabilityData",
    "bool_matmul",
    "density",
    "sec_partition",
    "dec_partition",
    "is_ses",
    "is_des",
    "is_partition_of_good_nodes",
    "one_round_reach_matrix",
    "full_reach_matrix",
    "is_lamb_set",
    "is_survivor_set",
    "survivor_violations",
    "partition_size_bound",
    "partition_size_bound_loose",
    "one_round_expected_lamb_lower_bound",
    "generic_lamb_set",
    "ReconfigurationManager",
    "ReconfigurationError",
    "largest_good_component",
    "Epoch",
    "RoutingTable",
    "RouteEntry",
    "build_routing_table",
    "find_reachability_spanning",
    "one_round_reachability_matrix_spanning",
    "recommended_engine",
    "k_round_matrix_from_relation",
    "torus_lamb_set",
    "torus_reach_matrix",
]
