"""Definition-level validation of lamb sets and survivor sets.

These are O(N)-per-node brute-force checks (Definition 2.6) used by the
test suite and small examples to certify outputs of the fast pipeline.
They are exact for meshes with node and directed-link faults.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.geometry import Node
from ..routing.multiround import (
    FaultGrids,
    multi_source_reach_sets,
    reach_set_k_rounds,
)
from ..routing.ordering import KRoundOrdering

__all__ = [
    "full_reach_matrix",
    "is_survivor_set",
    "is_lamb_set",
    "survivor_violations",
]


def full_reach_matrix(
    faults: FaultSet, orderings: KRoundOrdering
) -> np.ndarray:
    """The N x N boolean matrix of k-round reachability between all
    node pairs (index order = ``Mesh.index_of``).  Faulty rows/columns
    are all False except nothing — a faulty node reaches nothing and is
    reached by nothing."""
    mesh = faults.mesh
    grids = FaultGrids(faults)
    N = mesh.num_nodes
    out = np.zeros((N, N), dtype=bool)
    good = [v for v in mesh.nodes() if not faults.node_is_faulty(v)]
    rows = multi_source_reach_sets(grids, orderings, good)
    for v, row in zip(good, rows):
        out[mesh.index_of(v)] = row
    return out


def survivor_violations(
    faults: FaultSet,
    orderings: KRoundOrdering,
    survivors: Iterable[Node],
    limit: int = 10,
) -> List[Tuple[Node, Node]]:
    """Pairs ``(v, w)`` of claimed survivors with ``v`` unable to
    k-round-reach ``w`` (at most ``limit`` reported)."""
    mesh = faults.mesh
    grids = FaultGrids(faults)
    survivors = [tuple(v) for v in survivors]
    out: List[Tuple[Node, Node]] = []
    for v in survivors:
        if faults.node_is_faulty(v):
            out.append((v, v))
            if len(out) >= limit:
                return out
            continue
        reach = reach_set_k_rounds(grids, orderings, v)
        for w in survivors:
            if not reach[w]:
                out.append((v, w))
                if len(out) >= limit:
                    return out
    return out


def is_survivor_set(
    faults: FaultSet, orderings: KRoundOrdering, survivors: Iterable[Node]
) -> bool:
    """Definition 2.6: every member can k-round-reach every member."""
    return not survivor_violations(faults, orderings, survivors, limit=1)


def is_lamb_set(
    faults: FaultSet, orderings: KRoundOrdering, lambs: Iterable[Node]
) -> bool:
    """Definition 2.6: Λ contains no faulty node and
    ``nodes(M) - (Λ ∪ F_N)`` is a survivor set."""
    lamb_set: Set[Node] = {tuple(v) for v in lambs}
    for v in sorted(lamb_set):
        if faults.node_is_faulty(v):
            return False
    survivors = [
        v
        for v in faults.mesh.nodes()
        if v not in lamb_set and not faults.node_is_faulty(v)
    ]
    return is_survivor_set(faults, orderings, survivors)
