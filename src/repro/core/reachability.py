"""Representative-level reachability matrices (Section 6.2, Fig. 12).

Implements *Find-Reachability*: the per-round one-round reachability
matrices ``R_t`` between SES and DES representatives, the intersection
matrices ``I_t``, and the k-round boolean product
``R^(k) = R_1 I_1 R_2 ... I_{k-1} R_k`` (Lemma 5.1).

The one-round matrix is computed by a faulty-line-grouped vectorized
kernel rather than p*q independent route walks: segment ``t`` of the
``pi``-route from source ``v`` to destination ``w`` lies on the line
determined by ``w``'s already-routed coordinates and ``v``'s
not-yet-routed coordinates, so for each of the O(f) obstacle-carrying
lines per dimension we can locate the affected (source, destination)
pairs by hash-grouping and mark the blocked ones with two
``searchsorted`` calls per source (see DESIGN.md).  Every (i, l) pair
maps to exactly one line per dimension, so total work is O(d p q) in
numpy inner loops.

Matrix products follow the paper's engineering notes: the intersection
matrices are typically very sparse (~1% density on M3(32) at 3%
faults) so ``R_t I_t`` uses ``scipy.sparse``; the dense product uses
float32 BLAS — the moral equivalent of the paper's 32-bit bitwise-word
trick.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..mesh.regions import Rect, rect_intersection_matrix
from ..obs import get_registry
from ..routing.linefaults import LineFaultIndex
from ..routing.ordering import KRoundOrdering, Ordering

__all__ = [
    "one_round_reachability_matrix",
    "bool_matmul",
    "density",
    "PackedBoolMatrix",
    "packed_bool_matmul",
    "ReachabilityData",
    "find_reachability",
]


def _group_rows(
    arr: np.ndarray, cols: Sequence[int]
) -> Dict[Tuple[int, ...], np.ndarray]:
    """Group row indices of ``arr`` by the tuple of values in ``cols``.

    Vectorized: one ``np.unique(..., return_inverse=True)`` over the
    key columns plus a stable argsort of the inverse labels replaces
    the former per-row Python loop (this runs once per dimension per
    one-round matrix, with ``p, q ~ (2d-1)f + 1`` rows — see
    ``benchmarks/bench_reachability.py::test_group_rows``).  Row
    indices within each group are ascending, exactly as the loop
    produced them, so downstream results are bit-identical.

    ``arr`` must be an integer coordinate array; packed matrices and
    float/bool arrays are rejected with a typed error instead of being
    silently coerced through ``np.unique`` (whose float tuple keys
    would never match the integer partition keys downstream).
    """
    if isinstance(arr, PackedBoolMatrix):
        raise TypeError(
            "_group_rows groups integer representative coordinates; "
            "got a PackedBoolMatrix (unpack-copy round-trips are "
            "deliberately not implicit — call .unpack() only if you "
            "really mean it)"
        )
    arr = np.asarray(arr)
    if arr.dtype.kind not in ("i", "u"):
        raise TypeError(
            f"_group_rows needs an integer coordinate array, got "
            f"dtype {arr.dtype}"
        )
    n = arr.shape[0]
    if len(cols) == 0:
        return {(): np.arange(n)}
    if n == 0:
        return {}
    key_arr = np.ascontiguousarray(arr[:, list(cols)])
    uniq, inverse = np.unique(key_arr, axis=0, return_inverse=True)
    inverse = inverse.ravel()  # numpy >= 2.1 returns (n, 1) for axis=0
    order = np.argsort(inverse, kind="stable").astype(np.intp, copy=False)
    counts = np.bincount(inverse, minlength=uniq.shape[0])
    splits = np.split(order, np.cumsum(counts)[:-1])
    return {
        tuple(int(x) for x in uniq[g]): idx for g, idx in enumerate(splits)
    }


def one_round_reachability_matrix(
    index: LineFaultIndex,
    pi: Ordering,
    sources: np.ndarray,
    dests: np.ndarray,
    validate: bool = True,
    packed: bool = False,
) -> Union[np.ndarray, "PackedBoolMatrix"]:
    """Boolean matrix ``R[i, l] = sources[i] can (F, pi)-reach dests[l]``.

    ``sources`` and ``dests`` are ``(p, d)`` / ``(q, d)`` integer arrays
    of *good* nodes (checked when ``validate`` is True).  With
    ``packed=True`` the result is returned as a
    :class:`PackedBoolMatrix` (rows bit-packed into uint64 words),
    ready for the packed R·I·R product chain.

    The blocked-pair scatter is batched per destination group rather
    than per faulty line: every line that maps to the same destination
    key carries a *disjoint* source set (a source determines its line's
    source-key projection uniquely), so their (lo, hi) window rows can
    be concatenated and OR-scattered in one ``np.ix_`` call per group.
    For round dimension ``t = 0`` the destination key is empty and the
    whole dimension collapses to a single broadcast — this is where the
    former per-line loop spent most of its time in tiny numpy calls.
    """
    mesh = index.mesh
    d = mesh.d
    S = np.asarray(sources, dtype=np.int64).reshape(-1, d)
    D = np.asarray(dests, dtype=np.int64).reshape(-1, d)
    p, q = S.shape[0], D.shape[0]
    if validate and (p or q):
        faulty = index.faults.node_fault_indices()
        for arr, name in ((S, "source"), (D, "destination")):
            if arr.size and any(int(i) in faulty for i in mesh.indices_of(arr)):
                raise ValueError(f"a {name} representative is faulty")
    blocked = np.zeros((p, q), dtype=bool)
    if p == 0 or q == 0:
        out = ~blocked
        return PackedBoolMatrix.pack(out) if packed else out
    perm = pi.perm
    inf = np.inf
    for t in range(d):
        j = perm[t]
        src_dims = [perm[u] for u in range(t + 1, d)]
        dst_dims = [perm[u] for u in range(t)]
        if index.num_faulty_lines(j) == 0:
            continue
        src_groups = _group_rows(S, src_dims)
        dst_groups = _group_rows(D, dst_dims)

        def key_pos(m: int) -> int:
            return m if m < j else m - 1

        src_pos = [key_pos(m) for m in src_dims]
        dst_pos = [key_pos(m) for m in dst_dims]
        # Collect per-line (lo, hi) windows, then flush them in batched
        # broadcast+scatter calls bucketed by whichever side repeats
        # fewer keys.  Lines sharing a destination key have *disjoint*
        # source sets (and vice versa), so concatenation within a
        # bucket never collides — one ``np.ix_`` per bucket replaces
        # one per faulty line.  For the first round dimension the
        # destination key is empty and the whole dimension collapses to
        # a single scatter; for the last, the source key does.
        matched: List[
            Tuple[
                Tuple[int, ...],
                Tuple[int, ...],
                np.ndarray,
                np.ndarray,
                np.ndarray,
                np.ndarray,
            ]
        ] = []
        skeys: set = set()
        dkeys: set = set()
        for key, up, down in index.faulty_lines(j):
            skey = tuple(key[m] for m in src_pos)
            I = src_groups.get(skey)
            if I is None:
                continue
            dkey = tuple(key[m] for m in dst_pos)
            L = dst_groups.get(dkey)
            if L is None:
                continue
            a = S[I, j].astype(np.float64)
            if down.size:
                idx = np.searchsorted(down, a)
                lo = np.where(idx > 0, down[np.maximum(idx - 1, 0)], -inf)
            else:
                lo = np.full(a.shape, -inf)
            if up.size:
                idx = np.searchsorted(up, a)
                hi = np.where(idx < up.size, up[np.minimum(idx, up.size - 1)], inf)
            else:
                hi = np.full(a.shape, inf)
            matched.append((skey, dkey, I, L, lo, hi))
            skeys.add(skey)
            dkeys.add(dkey)
        if not matched:
            continue
        if len(dkeys) <= len(skeys):
            # Bucket by destination key: concatenate along the source
            # (row) axis; every row keeps its own (lo, hi) window.
            by_dkey: Dict[Tuple[int, ...], List] = {}
            for skey, dkey, I, L, lo, hi in matched:
                by_dkey.setdefault(dkey, []).append((I, lo, hi))
            for dkey, parts in by_dkey.items():
                L = dst_groups[dkey]
                w = D[L, j].astype(np.float64)
                if len(parts) == 1:
                    I, lo, hi = parts[0]
                else:
                    I = np.concatenate([part[0] for part in parts])
                    lo = np.concatenate([part[1] for part in parts])
                    hi = np.concatenate([part[2] for part in parts])
                blocked[np.ix_(I, L)] |= (w[None, :] <= lo[:, None]) | (
                    w[None, :] >= hi[:, None]
                )
        else:
            # Bucket by source key: concatenate along the destination
            # (column) axis; each column selects its line's (lo, hi)
            # window for the shared source rows.
            by_skey: Dict[Tuple[int, ...], List] = {}
            for skey, dkey, I, L, lo, hi in matched:
                by_skey.setdefault(skey, []).append((L, lo, hi))
            for skey, parts in by_skey.items():
                I = src_groups[skey]
                if len(parts) == 1:
                    L, lo, hi = parts[0]
                    w = D[L, j].astype(np.float64)
                    lo_sel = lo[:, None]
                    hi_sel = hi[:, None]
                else:
                    L = np.concatenate([part[0] for part in parts])
                    w = D[L, j].astype(np.float64)
                    lo_mat = np.stack([part[1] for part in parts], axis=1)
                    hi_mat = np.stack([part[2] for part in parts], axis=1)
                    line_of = np.repeat(
                        np.arange(len(parts)),
                        [part[0].size for part in parts],
                    )
                    lo_sel = lo_mat[:, line_of]
                    hi_sel = hi_mat[:, line_of]
                blocked[np.ix_(I, L)] |= (w[None, :] <= lo_sel) | (
                    w[None, :] >= hi_sel
                )
    out = ~blocked
    return PackedBoolMatrix.pack(out) if packed else out


def density(matrix) -> float:
    """Fraction of nonzero entries.

    Accepts dense bool arrays, scipy sparse matrices, and
    :class:`PackedBoolMatrix` (counted in place via popcount — no
    unpack round-trip).  Dense inputs of non-bool dtype raise
    ``TypeError``: a float or int matrix reaching this function is a
    bug upstream, and ``count_nonzero`` would quietly report something
    that is not a boolean density.
    """
    size = matrix.shape[0] * matrix.shape[1]
    if size == 0:
        return 0.0
    if isinstance(matrix, PackedBoolMatrix):
        return matrix.count_nonzero() / size
    if sp.issparse(matrix):
        return matrix.nnz / size
    matrix = np.asarray(matrix)
    if matrix.dtype != np.bool_:
        raise TypeError(
            f"density expects a boolean matrix (or sparse/packed); got "
            f"dense dtype {matrix.dtype}"
        )
    return float(np.count_nonzero(matrix)) / size


_SPARSE_THRESHOLD = 0.05


def bool_matmul(A: np.ndarray, B) -> np.ndarray:
    """Boolean matrix product of a dense bool matrix with a dense or
    sparse bool matrix, returning dense bool.

    Routes through ``scipy.sparse`` when the right factor is sparse (or
    sparse enough), and through a float32 BLAS product otherwise.
    float32 accumulation is exact here: row sums are bounded by the
    inner dimension, far below 2**24.
    """
    if A.shape[1] != B.shape[0]:
        raise ValueError("inner dimensions differ")
    if A.shape[0] == 0 or B.shape[1] == 0 or A.shape[1] == 0:
        return np.zeros((A.shape[0], B.shape[1]), dtype=bool)
    # NOTE: accumulate in int32 — scipy sparse products keep the input
    # dtype, and int8 row sums overflow (wrap) once the inner dimension
    # exceeds 127, silently corrupting the boolean threshold.
    if sp.issparse(B):
        out = (sp.csr_matrix(A.astype(np.int32)) @ B.astype(np.int32)) > 0
        return np.asarray(out.todense())
    if density(B) < _SPARSE_THRESHOLD or density(A) < _SPARSE_THRESHOLD:
        out = (
            sp.csr_matrix(A.astype(np.int32)) @ sp.csr_matrix(B.astype(np.int32))
        ) > 0
        return np.asarray(out.todense())
    return (A.astype(np.float32) @ B.astype(np.float32)) > 0.5


# ----------------------------------------------------------------------
# Bit-packed boolean matrices
# ----------------------------------------------------------------------

_WORD_BITS = 64
# Phase-1 width of the saturating product kernel: OR together the first
# _SATURATE_PROBE set bits of each row and keep only rows that did not
# reach all-ones for the full gather.  R·I·R accumulators saturate to
# density ~1.0 on paper-scale fault sets (Section 6.2), so the probe
# usually finishes the product outright.
_SATURATE_PROBE = 48

# Cumulative wall-clock spent packing/unpacking, published as telemetry
# by find_reachability (zero deltas included so the exporter schema is
# stable from the first packed run onward).
_pack_seconds = 0.0
_unpack_seconds = 0.0


def _pack_words(dense: np.ndarray) -> np.ndarray:
    """Pack the rows of a dense bool matrix into little-endian uint64
    words, zero-padded to a whole number of words."""
    global _pack_seconds
    t0 = time.perf_counter()
    dense = np.ascontiguousarray(dense, dtype=bool)
    ncols = dense.shape[1]
    nbytes = ((ncols + _WORD_BITS - 1) // _WORD_BITS) * (_WORD_BITS // 8)
    b = np.packbits(dense, axis=1, bitorder="little")
    if b.shape[1] < nbytes:
        b = np.pad(b, ((0, 0), (0, nbytes - b.shape[1])))
    words = b.view(np.uint64)
    _pack_seconds += time.perf_counter() - t0
    return words


class PackedBoolMatrix:
    """A dense boolean matrix with each row packed into uint64 words.

    This is the paper's Section 6.2 bitwise-word trick done properly:
    64 matrix entries per machine word, so the R·I·R products of
    *Find-Reachability* become word-wide OR-gathers instead of float32
    BLAS or scipy-sparse round-trips.  All operations are bit-identical
    to their dense-bool counterparts (``bool_matmul`` stays the oracle;
    see ``tests/test_reachability.py``).

    The padding bits beyond ``shape[1]`` are an invariant zero: ``pack``
    writes them as zero and AND/OR of zeros stays zero, which is what
    makes ``count_nonzero`` a plain popcount.
    """

    __slots__ = ("shape", "words")

    def __init__(self, shape: Tuple[int, int], words: np.ndarray):
        nrows, ncols = shape
        expect = (nrows, (ncols + _WORD_BITS - 1) // _WORD_BITS)
        if words.dtype != np.uint64 or words.shape != expect:
            raise TypeError(
                f"words must be uint64 with shape {expect}, got "
                f"{words.dtype} {words.shape}"
            )
        self.shape = (int(nrows), int(ncols))
        self.words = words

    # -- construction ---------------------------------------------------
    @classmethod
    def pack(cls, dense) -> "PackedBoolMatrix":
        """Pack a dense bool array (or scipy sparse matrix)."""
        if isinstance(dense, PackedBoolMatrix):
            return dense
        if sp.issparse(dense):
            dense = np.asarray(dense.todense(), dtype=bool)
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise TypeError("PackedBoolMatrix packs 2-D matrices")
        if dense.dtype != np.bool_:
            raise TypeError(
                f"PackedBoolMatrix.pack expects bool entries, got "
                f"dtype {dense.dtype}"
            )
        return cls(dense.shape, _pack_words(dense))

    def unpack(self) -> np.ndarray:
        """The dense bool matrix this packs (fresh array)."""
        global _unpack_seconds
        t0 = time.perf_counter()
        nrows, ncols = self.shape
        if nrows == 0 or ncols == 0:
            out = np.zeros(self.shape, dtype=bool)
        else:
            out = np.unpackbits(
                self.words.view(np.uint8), axis=1, count=ncols,
                bitorder="little",
            ).astype(bool)
        _unpack_seconds += time.perf_counter() - t0
        return out

    def transpose(self) -> "PackedBoolMatrix":
        return PackedBoolMatrix.pack(self.unpack().T)

    @property
    def T(self) -> "PackedBoolMatrix":
        return self.transpose()

    # -- elementwise composition ---------------------------------------
    def _check_same_shape(self, other: "PackedBoolMatrix") -> None:
        if not isinstance(other, PackedBoolMatrix):
            raise TypeError(
                f"expected PackedBoolMatrix, got {type(other).__name__}"
            )
        if other.shape != self.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")

    def bitwise_and(self, other: "PackedBoolMatrix") -> "PackedBoolMatrix":
        self._check_same_shape(other)
        return PackedBoolMatrix(self.shape, self.words & other.words)

    def bitwise_or(self, other: "PackedBoolMatrix") -> "PackedBoolMatrix":
        self._check_same_shape(other)
        return PackedBoolMatrix(self.shape, self.words | other.words)

    __and__ = bitwise_and
    __or__ = bitwise_or

    # -- counting -------------------------------------------------------
    def row_counts(self) -> np.ndarray:
        """Per-row popcounts (int64)."""
        if self.words.size == 0:
            return np.zeros(self.shape[0], dtype=np.int64)
        return np.bitwise_count(self.words).sum(axis=1, dtype=np.int64)

    def count_nonzero(self) -> int:
        if self.words.size == 0:
            return 0
        return int(np.bitwise_count(self.words).sum(dtype=np.int64))

    def density(self) -> float:
        return density(self)

    # -- product --------------------------------------------------------
    def matmul(self, other: "PackedBoolMatrix") -> "PackedBoolMatrix":
        """Boolean matrix product, adaptive and exact.

        ``(A @ B)[i, l] = OR_j A[i, j] & B[j, l]`` — i.e. row ``i`` of
        the product is the OR of the packed rows of ``B`` selected by
        row ``i`` of ``A``.  Kernel selection:

        * gather: ``bitwise_or.reduceat`` over ``B``'s rows gathered by
          ``A``'s nonzeros — linear in ``nnz(A)``, wins when the left
          factor is sparse;
        * transpose: ``(Bᵀ Aᵀ)ᵀ`` when the *right* factor is much
          sparser (the R·I case: I is ~1–8% dense while the
          accumulator is not);
        * saturating probe: when the left factor is dense, OR the first
          ``_SATURATE_PROBE`` set bits of each row first and fall back
          to the full gather only for rows that did not reach all-ones
          (R·I·R accumulators saturate, so the probe usually decides
          every row).
        """
        if not isinstance(other, PackedBoolMatrix):
            raise TypeError(
                f"expected PackedBoolMatrix, got {type(other).__name__}"
            )
        p, n = self.shape
        n2, q = other.shape
        if n != n2:
            raise ValueError("inner dimensions differ")
        if p == 0 or q == 0 or n == 0:
            return PackedBoolMatrix.pack(np.zeros((p, q), dtype=bool))
        nnz_self = self.count_nonzero()
        nnz_other = other.count_nonzero()
        if nnz_self == 0 or nnz_other == 0:
            return PackedBoolMatrix.pack(np.zeros((p, q), dtype=bool))
        # Estimated gather cost is (rows gathered) x (words per row).
        cost_direct = nnz_self * other.words.shape[1]
        cost_transposed = nnz_other * ((p + _WORD_BITS - 1) // _WORD_BITS)
        if cost_transposed * 2 < cost_direct:
            # Pay two transposes to gather along the sparse factor.
            return other.transpose()._matmul_gather(self.transpose()).transpose()
        return self._matmul_gather(other)

    def _unpack_rows(self, rows: np.ndarray) -> np.ndarray:
        """Dense bool view of a subset of rows (no full unpack)."""
        return np.unpackbits(
            self.words[rows].view(np.uint8), axis=1, count=self.shape[1],
            bitorder="little",
        ).astype(bool)

    def _matmul_gather(self, other: "PackedBoolMatrix") -> "PackedBoolMatrix":
        p, n = self.shape
        q = other.shape[1]
        Bw = other.words
        out = np.zeros((p, Bw.shape[1]), dtype=np.uint64)
        counts = self.row_counts()
        nz_rows = np.count_nonzero(counts)
        if nz_rows == 0:
            return PackedBoolMatrix((p, q), out)
        mean_nnz = counts.sum() / nz_rows
        if mean_nnz > 2 * _SATURATE_PROBE and q > _WORD_BITS:
            # Saturating probe: OR up to _SATURATE_PROBE set bits of
            # each row, taken from the leading columns only — a full
            # np.nonzero of a dense left factor costs more than the
            # whole product, so scan a narrow head instead (for the
            # near-saturated R·I·R accumulators almost every row has
            # plenty of set bits up front).
            W = min(n, 4 * _SATURATE_PROBE)
            head = np.unpackbits(
                self.words.view(np.uint8), axis=1, count=W,
                bitorder="little",
            ).astype(bool)
            rows, cols = np.nonzero(head)
            head_counts = np.bincount(rows, minlength=p)
            probe_counts = np.minimum(head_counts, _SATURATE_PROBE)
            starts = np.zeros(p, dtype=np.intp)
            np.cumsum(head_counts[:-1], out=starts[1:])
            take = _ragged_ranges(starts, probe_counts)
            nonempty = np.flatnonzero(probe_counts)
            probe_starts = np.zeros(p, dtype=np.intp)
            np.cumsum(probe_counts[:-1], out=probe_starts[1:])
            out[nonempty] = np.bitwise_or.reduceat(
                Bw[cols[take]], probe_starts[nonempty], axis=0
            )
            # A row is final once it reaches the OR of *all* of B's rows
            # (the ceiling): ORing further rows cannot move it.  The
            # ceiling — not all-ones — is the right saturation target,
            # since columns of B that are empty everywhere (unreachable
            # destinations) keep every product row below all-ones.  A
            # row is also final when the probe already covered every
            # one of its set bits.
            ceiling = np.bitwise_or.reduce(Bw, axis=0)
            full = np.all(out == ceiling[None, :], axis=1)
            rest = np.flatnonzero(~full & (counts > probe_counts))
            if rest.size:
                rrows, rcols = np.nonzero(self._unpack_rows(rest))
                rest_counts = np.bincount(rrows, minlength=rest.size)
                sub_starts = np.zeros(rest.size, dtype=np.intp)
                np.cumsum(rest_counts[:-1], out=sub_starts[1:])
                out[rest] = np.bitwise_or.reduceat(Bw[rcols], sub_starts,
                                                   axis=0)
        else:
            rows, cols = np.nonzero(self.unpack())
            row_counts = np.bincount(rows, minlength=p)
            starts = np.zeros(p, dtype=np.intp)
            np.cumsum(row_counts[:-1], out=starts[1:])
            nonempty = np.flatnonzero(row_counts)
            out[nonempty] = np.bitwise_or.reduceat(
                Bw[cols], starts[nonempty], axis=0
            )
        return PackedBoolMatrix((p, q), out)

    __matmul__ = matmul

    def equals(self, other: "PackedBoolMatrix") -> bool:
        return self.shape == other.shape and np.array_equal(
            self.words, other.words
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedBoolMatrix(shape={self.shape}, "
            f"nnz={self.count_nonzero()})"
        )


def _ragged_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + counts[i])`` ranges without
    a Python-level loop (the standard repeat/cumsum trick)."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.intp)
    nonzero = counts > 0
    s = starts[nonzero]
    c = counts[nonzero]
    out = np.ones(total, dtype=np.intp)
    ends = np.cumsum(c)
    out[0] = s[0]
    out[ends[:-1]] = s[1:] - (s[:-1] + c[:-1] - 1)
    return np.cumsum(out)


def packed_bool_matmul(A, B) -> PackedBoolMatrix:
    """Boolean matrix product through the packed kernels.

    Accepts any mix of dense bool, scipy sparse, and packed operands;
    returns packed.  Bit-identical to ``bool_matmul`` (the dense
    oracle) by construction — pinned by property tests.
    """
    return PackedBoolMatrix.pack(A).matmul(PackedBoolMatrix.pack(B))


@dataclass
class ReachabilityData:
    """Output of :func:`find_reachability`.

    Attributes
    ----------
    Rk:
        The ``p_1 x q_k`` k-round reachability matrix ``R^(k)``.
    round_matrices:
        The per-round one-round matrices ``R_t``.
    intersection_matrices:
        The ``I_t`` matrices (``q_t x p_{t+1}``), stored sparse.
    partial:
        ``partial[r]`` is ``R^(r+1)`` — useful for route selection
        (Section 6.2's remark on intermediate matrices).
    stats:
        Densities mirroring the paper's Section 6.2 measurements.
    """

    Rk: np.ndarray
    round_matrices: List[np.ndarray]
    intersection_matrices: List[sp.spmatrix]
    partial: List[np.ndarray]
    stats: Dict[str, float] = field(default_factory=dict)


# Auto-select the packed product path once a single product touches at
# least this many matrix entries.  Below it, pack/unpack overhead beats
# the kernel win; paper-scale runs ((2d-1)f + 1 representatives at a few
# percent faults) sit far above it.
_PACK_AUTO_THRESHOLD = 32768


def find_reachability(
    index: LineFaultIndex,
    orderings: KRoundOrdering,
    ses_partitions: Sequence[Sequence[Rect]],
    des_partitions: Sequence[Sequence[Rect]],
    ses_reps: Sequence[np.ndarray],
    des_reps: Sequence[np.ndarray],
    packed: Optional[bool] = None,
) -> ReachabilityData:
    """Algorithm *Find-Reachability* (Fig. 12).

    ``ses_partitions[t]`` / ``des_partitions[t]`` are the partitions
    for round ``t``'s ordering, with representative arrays
    ``ses_reps[t]`` / ``des_reps[t]`` (``(m, d)`` int arrays).  When the
    k-round ordering is uniform, pass the same objects for every round;
    identical rounds share one ``R_t`` computation.

    ``packed`` selects the product kernel for Step 3: ``True`` forces
    the bit-packed word kernels, ``False`` forces the dense-bool oracle
    (``bool_matmul``), and ``None`` (default) picks packed
    automatically once the matrices are large enough to pay for the
    packing.  Both paths are bit-identical; the public fields of
    :class:`ReachabilityData` are dense either way.
    """
    k = orderings.k
    if not (len(ses_partitions) == len(des_partitions) == k):
        raise ValueError(f"need {k} partitions per side")
    pack_t0 = _pack_seconds
    unpack_t0 = _unpack_seconds
    # Step 1: R_t (cache by round ordering identity).
    round_matrices: List[np.ndarray] = []
    cache: Dict[Tuple[Ordering, int, int], np.ndarray] = {}
    for t in range(k):
        pi = orderings[t]
        key = (pi, id(ses_reps[t]), id(des_reps[t]))
        if key not in cache:
            cache[key] = one_round_reachability_matrix(
                index, pi, ses_reps[t], des_reps[t]
            )
        round_matrices.append(cache[key])
    # Step 2: I_t = (D_{t,j} intersects S_{t+1,i}).
    intersection_matrices: List[sp.spmatrix] = []
    icache: Dict[Tuple[int, int], sp.spmatrix] = {}
    for t in range(k - 1):
        key = (id(des_partitions[t]), id(ses_partitions[t + 1]))
        if key in icache:
            intersection_matrices.append(icache[key])
            continue
        dense = rect_intersection_matrix(des_partitions[t], ses_partitions[t + 1])
        I = sp.csr_matrix(dense)
        icache[key] = I
        intersection_matrices.append(I)
    # Step 3: the product, keeping partial results.
    if packed is None:
        largest = max(
            (R.shape[0] * R.shape[1] for R in round_matrices), default=0
        )
        use_packed = k > 1 and largest >= _PACK_AUTO_THRESHOLD
    else:
        use_packed = bool(packed) and k > 1
    partial: List[np.ndarray] = [round_matrices[0]]
    r1i1_density: Optional[float] = None
    if use_packed:
        packed_rounds: Dict[int, PackedBoolMatrix] = {}

        def packed_round(t: int) -> PackedBoolMatrix:
            key = id(round_matrices[t])
            if key not in packed_rounds:
                packed_rounds[key] = PackedBoolMatrix.pack(round_matrices[t])
            return packed_rounds[key]

        acc_packed = packed_round(0)
        for t in range(1, k):
            acc_packed = acc_packed.matmul(
                PackedBoolMatrix.pack(intersection_matrices[t - 1])
            )
            if t == 1:
                r1i1_density = density(acc_packed)
            acc_packed = acc_packed.matmul(packed_round(t))
            partial.append(acc_packed.unpack())
        acc = partial[-1]
    else:
        acc = round_matrices[0]
        for t in range(1, k):
            acc = bool_matmul(acc, intersection_matrices[t - 1])
            if t == 1:
                r1i1_density = density(acc)
            acc = bool_matmul(acc, round_matrices[t])
            partial.append(acc)
    stats = {
        "R1_density": density(round_matrices[0]),
        "Rk_density": density(acc),
        "packed_products": 1.0 if use_packed else 0.0,
    }
    if intersection_matrices:
        stats["I1_density"] = density(intersection_matrices[0])
        if r1i1_density is None:
            r1i1_density = density(
                bool_matmul(round_matrices[0], intersection_matrices[0])
            )
        stats["R1I1_density"] = r1i1_density
    pack_delta = _pack_seconds - pack_t0
    unpack_delta = _unpack_seconds - unpack_t0
    stats["pack_seconds"] = pack_delta
    stats["unpack_seconds"] = unpack_delta
    reg = get_registry()
    # Zero-delta incs keep both engine label sets present in exporter
    # output regardless of which path this run took.
    eng = "packed" if use_packed else "dense"
    for label in ("packed", "dense"):
        reg.inc("reachability_runs_total", 1 if label == eng else 0,
                engine=label)
    reg.observe("reachability_pack_seconds", pack_delta, op="pack")
    reg.observe("reachability_pack_seconds", unpack_delta, op="unpack")
    return ReachabilityData(
        Rk=acc,
        round_matrices=round_matrices,
        intersection_matrices=intersection_matrices,
        partial=partial,
        stats=stats,
    )
