"""Representative-level reachability matrices (Section 6.2, Fig. 12).

Implements *Find-Reachability*: the per-round one-round reachability
matrices ``R_t`` between SES and DES representatives, the intersection
matrices ``I_t``, and the k-round boolean product
``R^(k) = R_1 I_1 R_2 ... I_{k-1} R_k`` (Lemma 5.1).

The one-round matrix is computed by a faulty-line-grouped vectorized
kernel rather than p*q independent route walks: segment ``t`` of the
``pi``-route from source ``v`` to destination ``w`` lies on the line
determined by ``w``'s already-routed coordinates and ``v``'s
not-yet-routed coordinates, so for each of the O(f) obstacle-carrying
lines per dimension we can locate the affected (source, destination)
pairs by hash-grouping and mark the blocked ones with two
``searchsorted`` calls per source (see DESIGN.md).  Every (i, l) pair
maps to exactly one line per dimension, so total work is O(d p q) in
numpy inner loops.

Matrix products follow the paper's engineering notes: the intersection
matrices are typically very sparse (~1% density on M3(32) at 3%
faults) so ``R_t I_t`` uses ``scipy.sparse``; the dense product uses
float32 BLAS — the moral equivalent of the paper's 32-bit bitwise-word
trick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..mesh.regions import Rect, rect_intersection_matrix
from ..routing.linefaults import LineFaultIndex
from ..routing.ordering import KRoundOrdering, Ordering

__all__ = [
    "one_round_reachability_matrix",
    "bool_matmul",
    "density",
    "ReachabilityData",
    "find_reachability",
]


def _group_rows(
    arr: np.ndarray, cols: Sequence[int]
) -> Dict[Tuple[int, ...], np.ndarray]:
    """Group row indices of ``arr`` by the tuple of values in ``cols``.

    Vectorized: one ``np.unique(..., return_inverse=True)`` over the
    key columns plus a stable argsort of the inverse labels replaces
    the former per-row Python loop (this runs once per dimension per
    one-round matrix, with ``p, q ~ (2d-1)f + 1`` rows — see
    ``benchmarks/bench_reachability.py::test_group_rows``).  Row
    indices within each group are ascending, exactly as the loop
    produced them, so downstream results are bit-identical.
    """
    n = arr.shape[0]
    if len(cols) == 0:
        return {(): np.arange(n)}
    if n == 0:
        return {}
    key_arr = np.ascontiguousarray(arr[:, list(cols)])
    uniq, inverse = np.unique(key_arr, axis=0, return_inverse=True)
    inverse = inverse.ravel()  # numpy >= 2.1 returns (n, 1) for axis=0
    order = np.argsort(inverse, kind="stable").astype(np.intp, copy=False)
    counts = np.bincount(inverse, minlength=uniq.shape[0])
    splits = np.split(order, np.cumsum(counts)[:-1])
    return {
        tuple(int(x) for x in uniq[g]): idx for g, idx in enumerate(splits)
    }


def one_round_reachability_matrix(
    index: LineFaultIndex,
    pi: Ordering,
    sources: np.ndarray,
    dests: np.ndarray,
    validate: bool = True,
) -> np.ndarray:
    """Boolean matrix ``R[i, l] = sources[i] can (F, pi)-reach dests[l]``.

    ``sources`` and ``dests`` are ``(p, d)`` / ``(q, d)`` integer arrays
    of *good* nodes (checked when ``validate`` is True).
    """
    mesh = index.mesh
    d = mesh.d
    S = np.asarray(sources, dtype=np.int64).reshape(-1, d)
    D = np.asarray(dests, dtype=np.int64).reshape(-1, d)
    p, q = S.shape[0], D.shape[0]
    if validate and (p or q):
        faulty = index.faults.node_fault_indices()
        for arr, name in ((S, "source"), (D, "destination")):
            if arr.size and any(int(i) in faulty for i in mesh.indices_of(arr)):
                raise ValueError(f"a {name} representative is faulty")
    blocked = np.zeros((p, q), dtype=bool)
    if p == 0 or q == 0:
        return ~blocked
    perm = pi.perm
    inf = np.inf
    for t in range(d):
        j = perm[t]
        src_dims = [perm[u] for u in range(t + 1, d)]
        dst_dims = [perm[u] for u in range(t)]
        if index.num_faulty_lines(j) == 0:
            continue
        src_groups = _group_rows(S, src_dims)
        dst_groups = _group_rows(D, dst_dims)

        def key_pos(m: int) -> int:
            return m if m < j else m - 1

        src_pos = [key_pos(m) for m in src_dims]
        dst_pos = [key_pos(m) for m in dst_dims]
        for key, up, down in index.faulty_lines(j):
            skey = tuple(key[m] for m in src_pos)
            I = src_groups.get(skey)
            if I is None:
                continue
            dkey = tuple(key[m] for m in dst_pos)
            L = dst_groups.get(dkey)
            if L is None:
                continue
            a = S[I, j].astype(np.float64)
            if down.size:
                idx = np.searchsorted(down, a)
                lo = np.where(idx > 0, down[np.maximum(idx - 1, 0)], -inf)
            else:
                lo = np.full(a.shape, -inf)
            if up.size:
                idx = np.searchsorted(up, a)
                hi = np.where(idx < up.size, up[np.minimum(idx, up.size - 1)], inf)
            else:
                hi = np.full(a.shape, inf)
            w = D[L, j].astype(np.float64)
            blocked[np.ix_(I, L)] |= (w[None, :] <= lo[:, None]) | (
                w[None, :] >= hi[:, None]
            )
    return ~blocked


def density(matrix) -> float:
    """Fraction of nonzero entries (works for dense bool and sparse)."""
    size = matrix.shape[0] * matrix.shape[1]
    if size == 0:
        return 0.0
    if sp.issparse(matrix):
        return matrix.nnz / size
    return float(np.count_nonzero(matrix)) / size


_SPARSE_THRESHOLD = 0.05


def bool_matmul(A: np.ndarray, B) -> np.ndarray:
    """Boolean matrix product of a dense bool matrix with a dense or
    sparse bool matrix, returning dense bool.

    Routes through ``scipy.sparse`` when the right factor is sparse (or
    sparse enough), and through a float32 BLAS product otherwise.
    float32 accumulation is exact here: row sums are bounded by the
    inner dimension, far below 2**24.
    """
    if A.shape[1] != B.shape[0]:
        raise ValueError("inner dimensions differ")
    if A.shape[0] == 0 or B.shape[1] == 0 or A.shape[1] == 0:
        return np.zeros((A.shape[0], B.shape[1]), dtype=bool)
    # NOTE: accumulate in int32 — scipy sparse products keep the input
    # dtype, and int8 row sums overflow (wrap) once the inner dimension
    # exceeds 127, silently corrupting the boolean threshold.
    if sp.issparse(B):
        out = (sp.csr_matrix(A.astype(np.int32)) @ B.astype(np.int32)) > 0
        return np.asarray(out.todense())
    if density(B) < _SPARSE_THRESHOLD or density(A) < _SPARSE_THRESHOLD:
        out = (
            sp.csr_matrix(A.astype(np.int32)) @ sp.csr_matrix(B.astype(np.int32))
        ) > 0
        return np.asarray(out.todense())
    return (A.astype(np.float32) @ B.astype(np.float32)) > 0.5


@dataclass
class ReachabilityData:
    """Output of :func:`find_reachability`.

    Attributes
    ----------
    Rk:
        The ``p_1 x q_k`` k-round reachability matrix ``R^(k)``.
    round_matrices:
        The per-round one-round matrices ``R_t``.
    intersection_matrices:
        The ``I_t`` matrices (``q_t x p_{t+1}``), stored sparse.
    partial:
        ``partial[r]`` is ``R^(r+1)`` — useful for route selection
        (Section 6.2's remark on intermediate matrices).
    stats:
        Densities mirroring the paper's Section 6.2 measurements.
    """

    Rk: np.ndarray
    round_matrices: List[np.ndarray]
    intersection_matrices: List[sp.spmatrix]
    partial: List[np.ndarray]
    stats: Dict[str, float] = field(default_factory=dict)


def find_reachability(
    index: LineFaultIndex,
    orderings: KRoundOrdering,
    ses_partitions: Sequence[Sequence[Rect]],
    des_partitions: Sequence[Sequence[Rect]],
    ses_reps: Sequence[np.ndarray],
    des_reps: Sequence[np.ndarray],
) -> ReachabilityData:
    """Algorithm *Find-Reachability* (Fig. 12).

    ``ses_partitions[t]`` / ``des_partitions[t]`` are the partitions
    for round ``t``'s ordering, with representative arrays
    ``ses_reps[t]`` / ``des_reps[t]`` (``(m, d)`` int arrays).  When the
    k-round ordering is uniform, pass the same objects for every round;
    identical rounds share one ``R_t`` computation.
    """
    k = orderings.k
    if not (len(ses_partitions) == len(des_partitions) == k):
        raise ValueError(f"need {k} partitions per side")
    # Step 1: R_t (cache by round ordering identity).
    round_matrices: List[np.ndarray] = []
    cache: Dict[Tuple[Ordering, int, int], np.ndarray] = {}
    for t in range(k):
        pi = orderings[t]
        key = (pi, id(ses_reps[t]), id(des_reps[t]))
        if key not in cache:
            cache[key] = one_round_reachability_matrix(
                index, pi, ses_reps[t], des_reps[t]
            )
        round_matrices.append(cache[key])
    # Step 2: I_t = (D_{t,j} intersects S_{t+1,i}).
    intersection_matrices: List[sp.spmatrix] = []
    icache: Dict[Tuple[int, int], sp.spmatrix] = {}
    for t in range(k - 1):
        key = (id(des_partitions[t]), id(ses_partitions[t + 1]))
        if key in icache:
            intersection_matrices.append(icache[key])
            continue
        dense = rect_intersection_matrix(des_partitions[t], ses_partitions[t + 1])
        I = sp.csr_matrix(dense)
        icache[key] = I
        intersection_matrices.append(I)
    # Step 3: the product, keeping partial results.
    partial: List[np.ndarray] = [round_matrices[0]]
    acc = round_matrices[0]
    for t in range(1, k):
        acc = bool_matmul(acc, intersection_matrices[t - 1])
        acc = bool_matmul(acc, round_matrices[t])
        partial.append(acc)
    stats = {
        "R1_density": density(round_matrices[0]),
        "Rk_density": density(acc),
    }
    if intersection_matrices:
        stats["I1_density"] = density(intersection_matrices[0])
        stats["R1I1_density"] = density(
            bool_matmul(round_matrices[0], intersection_matrices[0])
        )
    return ReachabilityData(
        Rk=acc,
        round_matrices=round_matrices,
        intersection_matrices=intersection_matrices,
        partial=partial,
        stats=stats,
    )
