"""Closed-form bounds from the paper.

- Theorem 6.4: the size bound (Eq. 1) on the partitions returned by
  Find-SES/DES-Partition, and its loose form ``(2d - 1) f + 1``.
- Theorem 3.1: the lower bound on the expected minimum lamb-set size
  with one round of routing on ``M_3(n)`` — the result that justifies
  using two rounds.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "partition_size_bound",
    "partition_size_bound_loose",
    "one_round_expected_lamb_lower_bound",
]


def partition_size_bound(widths: Sequence[int], f: int) -> int:
    """Theorem 6.4 / Eq. (1):

    ``B(d, f) = sum_{j=2}^{d} min(2f, n_d n_{d-1} ... n_{j+1} (n_j - 1)) + f + 1``

    (with the ``j = d`` term equal to ``n_d - 1``).  This is the bound
    plotted against the measured SES counts in Fig. 25.

    >>> partition_size_bound((32, 32, 32), 983)
    2007
    """
    widths = tuple(int(n) for n in widths)
    d = len(widths)
    if f < 0:
        raise ValueError("f must be nonnegative")
    total = f + 1
    for j in range(2, d + 1):  # paper's 1-indexed j
        prod = widths[j - 1] - 1  # (n_j - 1)
        for m in range(j + 1, d + 1):  # n_{j+1} ... n_d
            prod *= widths[m - 1]
        total += min(2 * f, prod)
    return total


def partition_size_bound_loose(d: int, f: int) -> int:
    """The loose form ``(2d - 1) f + 1`` of Theorem 6.4."""
    return (2 * d - 1) * f + 1


def one_round_expected_lamb_lower_bound(n: int, f: int) -> float:
    """Theorem 3.1: with ``f <= n`` random node faults on ``M_3(n)``
    and one round of routing, the expected minimum lamb-set size is at
    least ``f n^2/4 - f^2 n/4 + f^3/12 - f``.

    >>> int(one_round_expected_lamb_lower_bound(32, 32))
    2698
    """
    if f > n:
        raise ValueError("Theorem 3.1 requires f <= n")
    return f * n**2 / 4 - f**2 * n / 4 + f**3 / 12 - f
