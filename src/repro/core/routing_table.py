"""Routing-table generation: the deliverable of a reconfiguration.

After the lamb set is chosen, the machine needs concrete routes.  For
k-round dimension-ordered routing a route is fully determined by its
``k - 1`` intermediate nodes (Definition 2.3), so the reconfiguration
artifact is a table mapping (source, destination) survivor pairs to
intermediate lists.  Routes that succeed with *fewer* rounds store
fewer intermediates (the head simply continues on the later rounds'
virtual channels without turning, so shorter routes are strictly
better); the table records the minimal number of rounds actually
needed, which the paper's intermediate matrices ``R^(r)`` expose
(Section 6.2).

For large meshes an all-pairs table is O(N^2); this module therefore
also offers on-demand route resolution backed by the same per-source
flood machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh, Node
from ..routing.multiround import FaultGrids, find_k_round_route
from ..routing.ordering import KRoundOrdering
from .lamb import LambResult

__all__ = ["RouteEntry", "RoutingTable", "build_routing_table"]


@dataclass(frozen=True)
class RouteEntry:
    """One source->destination route: the chosen intermediates and the
    number of rounds actually used (<= k)."""

    source: Node
    dest: Node
    intermediates: Tuple[Node, ...]
    rounds_used: int
    hops: int
    turns: int


class RoutingTable:
    """Survivor-to-survivor routes for a reconfigured machine.

    Built lazily or exhaustively (:func:`build_routing_table`).  Lambs
    and faulty nodes are rejected as endpoints — lambs may appear as
    intermediates, which is precisely their job.
    """

    def __init__(
        self,
        result: LambResult,
        policy: str = "shortest",
        seed: int = 0,
        grids: Optional[FaultGrids] = None,
    ) -> None:
        self.result = result
        self.faults: FaultSet = result.faults
        self.mesh: Mesh = result.mesh
        self.orderings: KRoundOrdering = result.orderings
        self.policy = policy
        # ``grids`` lets an incremental caller (the control-plane
        # compiler) hand over pre-updated fault grids instead of
        # rebuilding them from the cumulative fault set.
        self._grids = FaultGrids(self.faults) if grids is None else grids
        self._rng = np.random.default_rng(seed)
        self._entries: Dict[Tuple[Node, Node], RouteEntry] = {}

    @property
    def grids(self) -> FaultGrids:
        """The fault grids backing route resolution (clone before
        mutating — published tables are immutable by convention)."""
        return self._grids

    # ------------------------------------------------------------------
    def lookup(self, source: Sequence[int], dest: Sequence[int]) -> RouteEntry:
        """The route entry for a survivor pair (computed on demand)."""
        source = tuple(int(x) for x in source)
        dest = tuple(int(x) for x in dest)
        key = (source, dest)
        if key in self._entries:
            return self._entries[key]
        for end, name in ((source, "source"), (dest, "destination")):
            if not self.result.is_survivor(end):
                raise ValueError(f"{name} {end} is not a survivor node")
        entry = self._compute(source, dest)
        if entry is None:
            raise RuntimeError(
                f"{dest} unreachable from {source}: the lamb set is invalid"
            )
        self._entries[key] = entry
        return entry

    def _compute(self, source: Node, dest: Node) -> Optional[RouteEntry]:
        from ..routing.turns import count_turns_multiround

        paths = find_k_round_route(
            self._grids, self.orderings, source, dest,
            policy=self.policy, rng=self._rng,
        )
        if paths is None:
            return None
        # Trim trailing no-op rounds: rounds_used is the last round
        # whose path actually moves.
        rounds_used = 0
        for t, p in enumerate(paths):
            if len(p) > 1:
                rounds_used = t + 1
        rounds_used = max(rounds_used, 1)
        intermediates = tuple(p[-1] for p in paths[:-1])
        hops = sum(len(p) - 1 for p in paths)
        turns = count_turns_multiround(paths)
        return RouteEntry(
            source=source,
            dest=dest,
            intermediates=intermediates,
            rounds_used=rounds_used,
            hops=hops,
            turns=turns,
        )

    # ------------------------------------------------------------------
    def preload(self, entries: Iterable[RouteEntry]) -> None:
        """Seed the cache with precomputed entries (deserialization,
        warm hand-off between control-plane epochs).

        Every entry's endpoints must be survivors of this table's
        reconfiguration — entries from a different epoch are rejected
        rather than silently serving routes through dead hardware.
        """
        for e in entries:
            for end, name in ((e.source, "source"), (e.dest, "destination")):
                if not self.result.is_survivor(end):
                    raise ValueError(
                        f"preloaded route {e.source}->{e.dest}: "
                        f"{name} {end} is not a survivor node"
                    )
            self._entries[(e.source, e.dest)] = e

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[RouteEntry]:
        return list(self._entries.values())

    def round_usage_histogram(self) -> Dict[int, int]:
        """How many cached routes needed 1, 2, ... rounds — the
        quantity behind the paper's observation that most pairs remain
        one-round reachable under sparse faults."""
        hist: Dict[int, int] = {}
        for e in self._entries.values():
            hist[e.rounds_used] = hist.get(e.rounds_used, 0) + 1
        return hist

    def max_turns(self) -> int:
        return max((e.turns for e in self._entries.values()), default=0)


def build_routing_table(
    result: LambResult,
    pairs: Optional[Sequence[Tuple[Sequence[int], Sequence[int]]]] = None,
    policy: str = "shortest",
    seed: int = 0,
) -> RoutingTable:
    """Populate a routing table.

    ``pairs=None`` builds the full all-pairs table over survivors
    (O(|survivors|^2) — small meshes); otherwise only the given pairs
    are resolved.
    """
    table = RoutingTable(result, policy=policy, seed=seed)
    if pairs is None:
        survivors = result.survivors()
        for v in survivors:
            for w in survivors:
                if v != w:
                    table.lookup(v, w)
    else:
        for (v, w) in pairs:
            table.lookup(v, w)
    return table
