"""The step registry and the registered step catalog.

A *step* is a named, versioned, **pure** function

    ``fn(params, inputs) -> output``

where ``params`` is the step's resolved parameter dict (from the
preset, possibly overridden on the CLI), ``inputs`` maps each
dependency's instance name to that dependency's output dict, and
``output`` is a JSON-able dict.  Purity is the load-bearing property:
the workflow runner content-addresses each step execution by
``(preset digest, step identity, resolved params, dependency
digests)`` and replays the stored output on a digest hit, so a step
whose output depended on anything *outside* that key — wall-clock,
ambient RNG state, the filesystem — would poison the checkpoint cache
and break the straight-run-vs-resumed-run byte-identity guarantee.
The REP106 lint rule enforces the wall-clock half of this statically:
``time.time()`` / ``datetime.now()`` and friends are flagged inside
any function decorated with :func:`register_step`.

Execution-only parameters (worker counts, executor backends) change
wall-clock but never outputs; a step declares them in
``digest_exclude`` and the runner keeps them out of the address.

Steps record *no* telemetry themselves — the runner wraps every
execution in a ``workflow.step`` span and publishes step-level
counters and latency histograms, so cached replays and fresh runs
are observable without the step bodies caring.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from .errors import UnknownStepError

__all__ = [
    "STEPS",
    "Step",
    "StepFn",
    "StepRegistry",
    "register_step",
]

StepFn = Callable[[Dict[str, Any], Dict[str, Dict[str, Any]]], Dict[str, Any]]


@dataclass(frozen=True)
class Step:
    """One registered step type.

    ``version`` participates in the content address: bump it whenever
    the implementation's output changes for identical inputs, so stale
    checkpoints from the old implementation can never be replayed.
    """

    name: str
    fn: StepFn
    description: str
    version: int = 1
    #: Parameter names excluded from the content address (execution
    #: topology only — worker counts, executor backends).
    digest_exclude: Tuple[str, ...] = ()
    #: Default parameters, merged under the preset's.
    defaults: Dict[str, Any] = field(default_factory=dict)

    def resolve_params(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Defaults overlaid with the preset/CLI parameters."""
        merged = dict(self.defaults)
        merged.update(params)
        return merged


class StepRegistry:
    """Typed step catalog: register once, look up by name.

    The module-level :data:`STEPS` instance is the production catalog;
    tests build private registries to exercise the runner with
    synthetic steps.
    """

    def __init__(self) -> None:
        self._steps: Dict[str, Step] = {}

    def register(
        self,
        name: str,
        description: str,
        version: int = 1,
        digest_exclude: Tuple[str, ...] = (),
        defaults: Optional[Dict[str, Any]] = None,
    ) -> Callable[[StepFn], StepFn]:
        """Decorator: register ``fn`` as step ``name``.

        Registering a name twice is a programming error (two
        implementations silently racing for one content-address
        namespace), so it raises ``ValueError`` outright.
        """

        def wrap(fn: StepFn) -> StepFn:
            if name in self._steps:
                raise ValueError(f"step {name!r} already registered")
            self._steps[name] = Step(
                name=name,
                fn=fn,
                description=description,
                version=int(version),
                digest_exclude=tuple(digest_exclude),
                defaults=dict(defaults or {}),
            )
            return fn

        return wrap

    def get(self, name: str) -> Step:
        step = self._steps.get(name)
        if step is None:
            raise UnknownStepError(name, self.names())
        return step

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._steps))

    def __contains__(self, name: str) -> bool:
        return name in self._steps

    def __len__(self) -> int:
        return len(self._steps)


#: The production step catalog.
STEPS = StepRegistry()


def register_step(
    name: str,
    description: str,
    version: int = 1,
    digest_exclude: Tuple[str, ...] = (),
    defaults: Optional[Dict[str, Any]] = None,
) -> Callable[[StepFn], StepFn]:
    """Register a step in the production catalog (:data:`STEPS`).

    The REP106 lint rule keys off this decorator: functions it wraps
    must be pure — in particular, free of direct wall-clock reads.
    """
    return STEPS.register(
        name, description, version=version,
        digest_exclude=digest_exclude, defaults=defaults,
    )


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _round(x: Optional[float], digits: int = 9) -> Optional[float]:
    return None if x is None else round(float(x), digits)


def _parse_mesh_spec(spec: str):
    """``"12x12"`` / ``"torus:8x8"`` -> a Mesh/Torus instance."""
    from ..mesh import Mesh, Torus

    torus = spec.startswith("torus:")
    if torus:
        spec = spec[len("torus:"):]
    widths = tuple(int(part) for part in spec.lower().split("x"))
    return (Torus if torus else Mesh)(widths)


def _faults_from_input(inputs: Dict[str, Dict[str, Any]], step: str):
    """The FaultSet serialized by a ``generate-mesh`` dependency."""
    from ..mesh.serialization import faults_from_dict

    for name in sorted(inputs):
        payload = inputs[name]
        if isinstance(payload, dict) and "faults" in payload:
            return faults_from_dict(payload["faults"])
    raise ValueError(
        f"step {step!r} needs a dependency that produced a fault set "
        "(e.g. generate-mesh)"
    )


# ----------------------------------------------------------------------
# Registered steps
# ----------------------------------------------------------------------
@register_step(
    "generate-mesh",
    "sample a seeded fault configuration on a mesh/torus",
    defaults={"mesh": "12x12", "faults": 3, "percent": 0.0, "seed": 0},
)
def generate_mesh(
    params: Dict[str, Any], inputs: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Seeded fault-set generation — the root of most presets."""
    from ..mesh import FaultSet, random_node_faults
    from ..mesh.serialization import faults_to_dict

    mesh = _parse_mesh_spec(str(params["mesh"]))
    explicit = [tuple(int(x) for x in v) for v in params.get("fault", [])]
    count = int(params.get("faults", 0))
    if params.get("percent"):
        count = max(
            1, int(round(mesh.num_nodes * float(params["percent"]) / 100.0))
        )
    if explicit:
        faults = FaultSet(mesh, explicit)
    elif count:
        faults = random_node_faults(
            mesh, count, np.random.default_rng(int(params["seed"]))
        )
    else:
        faults = FaultSet(mesh)
    return {
        "mesh": str(params["mesh"]),
        "num_nodes": mesh.num_nodes,
        "num_faults": faults.f,
        "faults": faults_to_dict(faults),
    }


@register_step(
    "compile-routes",
    "compile the fault configuration through the reconfiguration "
    "compiler (degradation ladder + content-addressed cache)",
    defaults={
        "rounds": 2, "method": "bipartite", "policy": "shortest",
        "budget": None, "extra_rounds": 1, "verify": False,
    },
)
def compile_routes(
    params: Dict[str, Any], inputs: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """One compile of the dependency's fault set; summary output."""
    from ..routing import ascending, repeated
    from ..service.compiler import ReconfigurationCompiler
    from ..service.store import ArtifactStore

    faults = _faults_from_input(inputs, "compile-routes")
    mesh = faults.mesh
    compiler = ReconfigurationCompiler(
        mesh,
        repeated(ascending(mesh.d), int(params["rounds"])),
        store=ArtifactStore(),
        method=str(params["method"]),
        policy=str(params["policy"]),
        verify=bool(params["verify"]),
        lamb_budget=params["budget"],
        max_extra_rounds=int(params["extra_rounds"]),
    )
    artifact, source = compiler.compile(faults)
    return {
        "digest": artifact.digest,
        "source": source,
        "k": artifact.k,
        "num_lambs": artifact.num_lambs,
        "num_survivors": artifact.num_survivors,
        "degraded": artifact.degraded,
        "escalated_rounds": artifact.escalated_rounds,
        "quarantined": len(artifact.quarantined),
        "verified": artifact.verified,
    }


@register_step(
    "sample-timeline",
    "sample a seeded fail/repair timeline from renewal processes",
    defaults={
        "mesh": "8x8", "arrival": "poisson", "rate": 1.0,
        "shape": 1.5, "scale": 1.0, "repair": "deterministic",
        "mttr": 0.25, "horizon": 4.0, "seed": 0,
    },
)
def sample_timeline(
    params: Dict[str, Any], inputs: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Preview of the stochastic fault environment a campaign sees."""
    from ..reliability import (
        arrival_process,
        generate_timeline,
        repair_model,
    )

    mesh = _parse_mesh_spec(str(params["mesh"]))
    timeline = generate_timeline(
        mesh,
        arrival_process(
            str(params["arrival"]), rate=float(params["rate"]),
            shape=float(params["shape"]), scale=float(params["scale"]),
        ),
        repair_model(str(params["repair"]), float(params["mttr"])),
        float(params["horizon"]),
        np.random.default_rng(int(params["seed"])),
    )
    intervals = list(timeline.intervals())
    max_down = max((len(down) for _t0, _t1, down in intervals), default=0)
    return {
        "mesh": str(params["mesh"]),
        "horizon": _round(timeline.horizon),
        "num_faults": timeline.num_faults,
        "num_repairs": timeline.num_repairs,
        "intervals": len(intervals),
        "max_concurrent_faults": max_down,
        "observed_mttf": _round(timeline.observed_mttf),
        "observed_mttr": _round(timeline.observed_mttr),
        "repair_durations": [
            _round(x) for x in timeline.repair_durations
        ],
    }


@register_step(
    "run-campaign",
    "Monte Carlo reliability campaign: renewal faults -> compile -> "
    "survivor connectivity -> Wilson-bounded SLO verdict",
    digest_exclude=("jobs", "executor"),
    defaults={
        "mesh": "8x8", "rounds": 2, "arrival": "poisson", "rate": 1.0,
        "shape": 1.5, "scale": 1.0, "repair": "deterministic",
        "mttr": 0.25, "horizon": 4.0, "trials": 8, "seed": 0, "tag": 0,
        "budget": None, "extra_rounds": 1, "connectivity": 0.9,
        "availability": 0.99, "jobs": None, "executor": None,
    },
)
def run_campaign_step(
    params: Dict[str, Any], inputs: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """The PR-6 campaign; its report is already a pure function of the
    config (``jobs``/``executor`` are digest-excluded topology)."""
    from ..mesh import Torus
    from ..reliability import CampaignConfig, SLOTarget, run_campaign

    mesh = _parse_mesh_spec(str(params["mesh"]))
    config = CampaignConfig(
        widths=mesh.widths,
        torus=isinstance(mesh, Torus),
        k=int(params["rounds"]),
        arrival=str(params["arrival"]),
        rate=float(params["rate"]),
        shape=float(params["shape"]),
        scale=float(params["scale"]),
        repair=str(params["repair"]),
        mttr=float(params["mttr"]),
        horizon=float(params["horizon"]),
        trials=int(params["trials"]),
        seed=int(params["seed"]),
        tag=int(params["tag"]),
        lamb_budget=params["budget"],
        max_extra_rounds=int(params["extra_rounds"]),
        slo=SLOTarget(
            connectivity=float(params["connectivity"]),
            availability=float(params["availability"]),
        ),
    )
    jobs = params.get("jobs")
    report = run_campaign(
        config,
        jobs=None if jobs is None else int(jobs),
        executor=params.get("executor"),
    )
    return report.to_dict()


@register_step(
    "inject-chaos",
    "push seeded traffic through the dependency's mesh while killing "
    "hardware mid-flight (rollback/reconfigure epochs)",
    defaults={
        "messages": 120, "flits": 4, "window": 80, "buffers": 2,
        "events": 3, "seed": 0, "event_start": 20, "event_end": 260,
        "kills_per_event": 1, "link_kills_per_event": 0, "rounds": 2,
        "max_cycles": 100_000, "budget": None, "extra_rounds": 1,
        "max_retries": 3, "retry_backoff": 8, "policy": "shortest",
    },
)
def inject_chaos(
    params: Dict[str, Any], inputs: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """A live-fault chaos run over the generated fault set."""
    from ..routing import ascending, repeated
    from ..wormhole import ChaosEngine, FaultSchedule

    faults = _faults_from_input(inputs, "inject-chaos")
    mesh = faults.mesh
    seed = int(params["seed"])
    rng = np.random.default_rng(seed)
    schedule = FaultSchedule.random(
        mesh,
        int(params["events"]),
        rng,
        cycle_span=(int(params["event_start"]), int(params["event_end"])),
        nodes_per_event=int(params["kills_per_event"]),
        links_per_event=int(params["link_kills_per_event"]),
        avoid=faults.node_faults,
    )
    engine = ChaosEngine(
        faults,
        repeated(ascending(mesh.d), int(params["rounds"])),
        schedule,
        lamb_budget=params["budget"],
        max_extra_rounds=int(params["extra_rounds"]),
        buffer_flits=int(params["buffers"]),
        policy=str(params["policy"]),
        seed=seed,
        max_retries=int(params["max_retries"]),
        retry_backoff=int(params["retry_backoff"]),
    )
    engine.load_uniform_traffic(
        int(params["messages"]), rng,
        num_flits=int(params["flits"]),
        inject_window=int(params["window"]),
    )
    report = engine.run(max_cycles=int(params["max_cycles"]))
    s = report.stats
    return {
        "mesh": f"{mesh}",
        "scheduled_events": len(schedule),
        "fault_events_applied": report.fault_events_applied,
        "epochs": report.num_epochs,
        "final_rounds": report.final_rounds,
        "quarantined": len(report.quarantined),
        "cycles": s.cycles,
        "total_messages": s.total_messages,
        "delivered": s.delivered,
        "retried_delivered": s.retried_delivered,
        "aborted": s.aborted,
        "in_flight": s.in_flight,
        "total_retries": s.total_retries,
        "abort_reasons": [[r, n] for r, n in s.abort_reasons],
        "avg_latency": _round(s.avg_latency),
        "p95_latency": _round(s.p95_latency),
        "max_latency": s.max_latency,
        "avg_total_latency": _round(s.avg_total_latency),
        "avg_hops": _round(s.avg_hops),
        "max_turns": s.max_turns,
        "all_accounted": s.all_accounted,
    }


@register_step(
    "serve",
    "drive the control plane's deterministic acceptance scenario "
    "(compile cache + route queries + epoch bump + drain) as a "
    "loadtest over the dependency's fault set",
    defaults={"rounds": 2, "queries": 200, "seed": 0, "verify": False},
)
def serve_loadtest(
    params: Dict[str, Any], inputs: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """The PR-4 serve smoke, captured: every emitted line is a pure
    function of the config/seed, so the transcript digest is stable."""
    from ..service.smoke import serve_smoke

    faults = _faults_from_input(inputs, "serve")
    lines: list = []
    rc = serve_smoke(
        faults,
        rounds=int(params["rounds"]),
        queries=int(params["queries"]),
        seed=int(params["seed"]),
        verify=bool(params["verify"]),
        emit=lines.append,
    )
    transcript = "\n".join(str(line) for line in lines)
    return {
        "rc": rc,
        "queries": int(params["queries"]),
        "lines": len(lines),
        "transcript_blake2b": hashlib.blake2b(
            transcript.encode("utf-8"), digest_size=20
        ).hexdigest(),
        "ok": rc == 0,
    }


@register_step(
    "collect-telemetry",
    "run the seeded observability smoke in a fresh registry and "
    "snapshot it with timings redacted (byte-identical per seed)",
    defaults={"seed": 0, "messages": 40, "sim_engine": "frontier"},
)
def collect_telemetry(
    params: Dict[str, Any], inputs: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """Deterministic telemetry self-check.

    Deliberately *not* a snapshot of the ambient registry: ambient
    counters differ between an executed and a replayed-from-cache run,
    which would break report byte-identity.  The redacted seeded smoke
    is a pure function of its params, like every other step.
    """
    from ..obs import TelemetryRegistry
    from ..obs.smoke import run_telemetry_smoke

    reg = run_telemetry_smoke(
        seed=int(params["seed"]),
        registry=TelemetryRegistry(),
        messages=int(params["messages"]),
        sim_engine=str(params["sim_engine"]),
    )
    return {"snapshot": reg.snapshot(redact_timings=True)}


@register_step(
    "report",
    "merge every dependency's output into the final workflow report",
)
def final_report(
    params: Dict[str, Any], inputs: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    """The terminal step: a stable merge of all dependency outputs."""
    return {
        "schema": 1,
        "sections": {name: inputs[name] for name in sorted(inputs)},
    }
