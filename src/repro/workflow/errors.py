"""Typed workflow failures, under the simulator error taxonomy.

Every failure mode of the declarative engine raises a
:class:`WorkflowError` subclass (itself a
:class:`~repro.wormhole.deadlock.SimulationError`), so callers that
already catch the repo-wide taxonomy — the CLI, the chaos harness,
the service layer — handle workflow failures the same way:

- :class:`UnknownPresetError` / :class:`UnknownStepError`: a name
  resolved against the catalog/registry does not exist;
- :class:`StepFailedError`: a step body raised; carries the step
  instance name and the original exception as ``__cause__``;
- :class:`WorkflowInterrupted`: the operator hit Ctrl-C mid-step.
  By the time it propagates, every *completed* step is already
  checkpointed in the artifact store (outputs are persisted the
  moment each step finishes), so the run resumes with
  ``repro workflow resume`` — the CLI maps it to the distinct exit
  code :data:`EXIT_INTERRUPTED` instead of a raw traceback.
- :class:`WorkflowPaused` is *not* an error: it is the outcome status
  of a ``--budget-seconds`` graceful checkpoint-and-stop (exit code
  :data:`EXIT_PAUSED`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..wormhole.deadlock import SimulationError

__all__ = [
    "EXIT_INTERRUPTED",
    "EXIT_PAUSED",
    "StepFailedError",
    "UnknownPresetError",
    "UnknownStepError",
    "WorkflowError",
    "WorkflowInterrupted",
]

#: CLI exit code for a ``--budget-seconds`` checkpoint-and-stop.
EXIT_PAUSED = 3

#: CLI exit code for a Ctrl-C checkpoint (distinct from plain failure
#: ``1`` and from pause ``3``; matches the conventional 128+SIGINT).
EXIT_INTERRUPTED = 130


class WorkflowError(SimulationError):
    """Base class for typed workflow-engine failures."""


class UnknownPresetError(WorkflowError):
    """A preset name resolved against the catalog does not exist."""

    def __init__(self, name: str, available: Tuple[str, ...]):
        self.name = name
        self.available = available
        super().__init__(
            f"unknown workflow preset {name!r}; "
            f"available: {', '.join(available)}"
        )


class UnknownStepError(WorkflowError):
    """A step name resolved against the registry does not exist."""

    def __init__(self, name: str, available: Tuple[str, ...]):
        self.name = name
        self.available = available
        super().__init__(
            f"unknown workflow step {name!r}; "
            f"registered: {', '.join(available)}"
        )


class StepFailedError(WorkflowError):
    """A step body raised; the original exception is ``__cause__``."""

    def __init__(self, step: str, message: str):
        self.step = step
        super().__init__(f"workflow step {step!r} failed: {message}")


class WorkflowInterrupted(WorkflowError):
    """Ctrl-C landed mid-step.

    Attributes
    ----------
    step:
        The step instance that was executing (its output is lost; its
        completed predecessors are already checkpointed).
    completed:
        Step instance names whose outputs are in the artifact store.
    """

    def __init__(
        self,
        step: Optional[str],
        completed: Tuple[str, ...] = (),
    ):
        self.step = step
        self.completed = completed
        where = f"during step {step!r}" if step else "between steps"
        super().__init__(
            f"workflow interrupted {where}; "
            f"{len(completed)} completed step(s) checkpointed — "
            "resume with `repro workflow resume`"
        )
