"""Frozen, digestable workflow presets.

A :class:`WorkflowPreset` is a named DAG of :class:`StepSpec`s — which
registered step to run, under what instance name, with what
parameters, after which dependencies.  Presets are frozen dataclasses
with a canonical JSON form and a blake2b digest
(:func:`preset_digest`), so the *whole composition* participates in
every step's content address: edit a preset (or override a parameter
on the CLI) and every affected checkpoint key changes, while an
untouched preset resumes bit-for-bit.

The catalog (:data:`PRESETS`) ships three end-to-end campaigns:

``chaos-campaign``
    Seeded fault set -> two chaos storms of different intensity ->
    telemetry self-check -> merged report.
``reliability-slo``
    Timeline preview -> Monte-Carlo availability campaign with a
    Wilson-bounded SLO verdict -> report.
``serve-loadtest``
    Seeded fault set -> one-shot route compile -> control-plane
    acceptance loadtest over real TCP -> report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from .errors import UnknownPresetError, WorkflowError
from .steps import StepRegistry

__all__ = [
    "PRESETS",
    "StepSpec",
    "WorkflowPreset",
    "preset_by_name",
    "preset_digest",
]

#: Bump when the checkpoint envelope/addressing scheme changes: every
#: address derived under the old scheme then misses cleanly.
WORKFLOW_FORMAT_VERSION = 1


def _freeze_params(params: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted((params or {}).items()))


@dataclass(frozen=True)
class StepSpec:
    """One step instance inside a preset.

    ``name`` is the instance name (unique within the preset; defaults
    to the step type), so one preset can run the same registered step
    twice under different parameters — e.g. two chaos storms.
    """

    step: str
    name: str = ""
    params: Tuple[Tuple[str, Any], ...] = ()
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", self.step)
        object.__setattr__(self, "deps", tuple(self.deps))
        object.__setattr__(self, "params", tuple(self.params))

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "name": self.name,
            "params": {str(k): v for k, v in self.params},
            "deps": list(self.deps),
        }


def spec(
    step: str,
    name: str = "",
    params: Optional[Mapping[str, Any]] = None,
    deps: Tuple[str, ...] = (),
) -> StepSpec:
    """Ergonomic StepSpec constructor (dict params -> frozen tuple)."""
    return StepSpec(
        step=step, name=name, params=_freeze_params(params), deps=deps
    )


@dataclass(frozen=True)
class WorkflowPreset:
    """A named workflow composition (frozen; digestable)."""

    name: str
    description: str
    steps: Tuple[StepSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        seen = set()
        for s in self.steps:
            if s.name in seen:
                raise WorkflowError(
                    f"preset {self.name!r} defines step {s.name!r} twice"
                )
            for dep in s.deps:
                if dep not in seen:
                    raise WorkflowError(
                        f"preset {self.name!r}: step {s.name!r} depends "
                        f"on {dep!r}, which is not defined before it"
                    )
            seen.add(s.name)

    def step_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.steps)

    def validate(self, registry: StepRegistry) -> None:
        """Every referenced step type must exist in ``registry``."""
        for s in self.steps:
            registry.get(s.step)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workflow_version": WORKFLOW_FORMAT_VERSION,
            "name": self.name,
            "description": self.description,
            "steps": [s.as_dict() for s in self.steps],
        }


def preset_digest(
    preset: WorkflowPreset,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    registry: Optional[StepRegistry] = None,
) -> str:
    """Content address of a preset composition (+ CLI overrides).

    Overrides map step instance names to parameter patches; they enter
    the digest exactly as the preset's own parameters do, so an
    overridden run checkpoints under different keys from a stock run.

    With a ``registry``, each step's ``digest_exclude`` parameters
    (execution topology: worker counts, executor backends) are
    stripped from both the preset's params and the overrides before
    hashing — ``--set run-campaign.jobs=8`` must not invalidate
    checkpoints that ``jobs`` cannot affect.  The runner always passes
    its registry; the registry-less form digests the composition
    verbatim.
    """
    excluded: Dict[str, Tuple[str, ...]] = {}
    if registry is not None:
        for s in preset.steps:
            if s.step in registry:
                excluded[s.name] = registry.get(s.step).digest_exclude
    canon = preset.as_dict()
    for entry in canon["steps"]:
        drop = excluded.get(entry["name"], ())
        entry["params"] = {
            k: v for k, v in entry["params"].items() if k not in drop
        }
    if overrides:
        trimmed = {
            str(name): {
                str(k): patch[k]
                for k in sorted(patch)
                if k not in excluded.get(name, ())
            }
            for name, patch in sorted(overrides.items())
        }
        trimmed = {name: p for name, p in trimmed.items() if p}
        if trimmed:
            canon["overrides"] = trimmed
    payload = json.dumps(
        canon, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=20).hexdigest()


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
PRESETS: Dict[str, WorkflowPreset] = {
    "chaos-campaign": WorkflowPreset(
        name="chaos-campaign",
        description=(
            "seeded fault set -> two chaos storms (burst + sustained) "
            "-> telemetry self-check -> report"
        ),
        steps=(
            spec(
                "generate-mesh",
                params={"mesh": "10x10", "faults": 3, "seed": 7},
            ),
            spec(
                "inject-chaos",
                name="chaos-burst",
                params={
                    "messages": 120, "events": 3, "seed": 7,
                    "event_start": 20, "event_end": 160,
                },
                deps=("generate-mesh",),
            ),
            spec(
                "inject-chaos",
                name="chaos-sustained",
                params={
                    "messages": 160, "events": 5, "seed": 11,
                    "event_start": 40, "event_end": 400, "window": 200,
                },
                deps=("generate-mesh",),
            ),
            spec(
                "collect-telemetry",
                params={"seed": 7, "messages": 40},
            ),
            spec(
                "report",
                deps=(
                    "generate-mesh", "chaos-burst", "chaos-sustained",
                    "collect-telemetry",
                ),
            ),
        ),
    ),
    "reliability-slo": WorkflowPreset(
        name="reliability-slo",
        description=(
            "timeline preview -> Monte-Carlo availability campaign "
            "with Wilson-bounded SLO verdict -> report"
        ),
        steps=(
            spec(
                "sample-timeline",
                params={
                    "mesh": "8x8", "rate": 1.5, "mttr": 0.3,
                    "horizon": 2.0, "seed": 0,
                },
            ),
            spec(
                "run-campaign",
                params={
                    "mesh": "8x8", "rate": 1.5, "mttr": 0.3,
                    "horizon": 2.0, "trials": 4, "seed": 0,
                },
                deps=("sample-timeline",),
            ),
            spec(
                "report",
                deps=("sample-timeline", "run-campaign"),
            ),
        ),
    ),
    "serve-loadtest": WorkflowPreset(
        name="serve-loadtest",
        description=(
            "seeded fault set -> route compile -> control-plane "
            "acceptance loadtest (real TCP, deterministic transcript) "
            "-> report"
        ),
        steps=(
            spec(
                "generate-mesh",
                params={"mesh": "16x16", "faults": 5, "seed": 4},
            ),
            spec(
                "compile-routes",
                deps=("generate-mesh",),
            ),
            spec(
                "serve",
                params={"queries": 200, "seed": 0},
                deps=("generate-mesh",),
            ),
            spec(
                "report",
                deps=("generate-mesh", "compile-routes", "serve"),
            ),
        ),
    ),
}


def preset_by_name(name: str) -> WorkflowPreset:
    """Catalog lookup; typed error naming the alternatives on a miss."""
    preset = PRESETS.get(name)
    if preset is None:
        raise UnknownPresetError(name, tuple(sorted(PRESETS)))
    return preset
