"""The workflow runner: content-addressed checkpoint-resume execution.

Execution model
---------------
A preset's steps are declared dependencies-first (the preset
constructor enforces it), so declaration order *is* a deterministic
topological order.  For each step the runner derives a **content
address**: a blake2b digest of

    (workflow format version, preset digest incl. CLI overrides,
     step type + implementation version, instance name,
     resolved parameters minus execution-only ones,
     every dependency's address)

and consults the :class:`~repro.service.store.ArtifactStore`:

- **hit** (and not ``--force``): the stored output is replayed —
  zero recompute, source ``"cache"``;
- **miss**: the step function runs, its output is normalized through
  a JSON round-trip (so a replayed output is structurally identical
  to a fresh one) and persisted *immediately* under the address.

Because outputs are persisted the moment each step finishes, a killed
process — SIGKILL, Ctrl-C, a crashed step — loses at most the step
that was in flight.  Re-running the same preset against the same
store resumes from the last completed step, and since every step is a
pure function of its address, a straight-through run and a
kill-and-resume run produce **byte-identical** final reports (the
``make workflow-smoke`` CI gate pins this).

Operational controls
--------------------
``budget_seconds``
    Graceful checkpoint-and-stop: before each step the runner checks
    elapsed wall time and, past the budget, returns a ``"paused"``
    outcome listing the pending steps (exit code 3 on the CLI).
    The budget clock lives in the *runner*, not in any step — steps
    stay wall-clock-free (REP106).
``force``
    Recompute every step, overwriting its checkpoint.
``Ctrl-C``
    A :class:`~repro.workflow.errors.WorkflowInterrupted` is raised
    (typed, under the ``SimulationError`` taxonomy) carrying the
    in-flight step name and the completed/checkpointed predecessors.

Crash-test hook: when ``REPRO_WORKFLOW_KILL_AFTER=<instance-name>``
is set, the runner SIGKILLs its own process immediately after that
step's checkpoint is persisted — a deterministic stand-in for "the
operator's job got OOM-killed at a step boundary", used by the
kill-and-resume tests and ``make workflow-smoke``.

Every step runs inside a ``workflow.step`` telemetry span;
``workflow_steps_total{step=,source=}`` counts executions vs replays
and ``workflow_step_seconds{step=}`` records latencies.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..obs import TelemetryRegistry, get_registry
from ..service.store import ArtifactStore
from .errors import StepFailedError, WorkflowError, WorkflowInterrupted
from .presets import (
    WORKFLOW_FORMAT_VERSION,
    WorkflowPreset,
    preset_by_name,
    preset_digest,
)
from .steps import STEPS, Step, StepRegistry

__all__ = [
    "KILL_AFTER_ENV",
    "StepOutcome",
    "WorkflowOutcome",
    "WorkflowRunner",
    "step_address",
]

#: Crash-test hook: SIGKILL self right after this step checkpoints.
KILL_AFTER_ENV = "REPRO_WORKFLOW_KILL_AFTER"


def _canonical_digest(payload: Dict[str, Any]) -> str:
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.blake2b(body, digest_size=20).hexdigest()


def step_address(
    preset_hex: str,
    step: Step,
    instance: str,
    params: Mapping[str, Any],
    dep_digests: Mapping[str, str],
) -> str:
    """The content address of one step execution.

    Execution-only parameters (``step.digest_exclude``) are stripped:
    a campaign on 8 processes and the same campaign single-threaded
    share one checkpoint.
    """
    addressed = {
        k: params[k]
        for k in sorted(params)
        if k not in step.digest_exclude
    }
    return _canonical_digest({
        "workflow_version": WORKFLOW_FORMAT_VERSION,
        "preset": preset_hex,
        "step": step.name,
        "impl_version": step.version,
        "instance": instance,
        "params": addressed,
        "deps": {name: dep_digests[name] for name in sorted(dep_digests)},
    })


@dataclass
class StepOutcome:
    """One step's result within a run: identity, provenance, output."""

    name: str
    step: str
    digest: str
    source: str  # "run" | "cache"
    seconds: float
    output: Dict[str, Any]

    def row(self) -> Dict[str, Any]:
        """The JSON/table row (no output body — that lives in the
        report and the store)."""
        return {
            "name": self.name,
            "step": self.step,
            "digest": self.digest,
            "source": self.source,
            "seconds": round(self.seconds, 6),
        }


@dataclass
class WorkflowOutcome:
    """Everything one ``run()`` produced."""

    preset: str
    digest: str
    status: str  # "completed" | "paused"
    steps: List[StepOutcome] = field(default_factory=list)
    pending: Tuple[str, ...] = ()

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def executed_steps(self) -> int:
        return sum(1 for s in self.steps if s.source == "run")

    @property
    def cached_steps(self) -> int:
        return sum(1 for s in self.steps if s.source == "cache")

    @property
    def report(self) -> Optional[Dict[str, Any]]:
        """The terminal report: the ``report`` step's output when the
        preset has one (and it ran), else the last step's output."""
        by_name = {s.name: s for s in self.steps}
        if "report" in by_name:
            return by_name["report"].output
        if self.steps:
            return self.steps[-1].output
        return None

    def report_json(self) -> str:
        """The final report as stable JSON (the byte-identity
        artifact: straight run == kill-and-resume run)."""
        return json.dumps(self.report, indent=2, sort_keys=True) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "preset": self.preset,
            "digest": self.digest,
            "status": self.status,
            "executed_steps": self.executed_steps,
            "cached_steps": self.cached_steps,
            "pending": list(self.pending),
            "steps": [s.row() for s in self.steps],
        }


class WorkflowRunner:
    """Executes presets with per-step content-addressed checkpoints.

    Parameters
    ----------
    store:
        Checkpoint store (the PR-4 two-tier ArtifactStore).  ``None``
        builds an in-memory store — checkpoints then live only for
        this process (useful for tests; resume needs a disk root).
    registry:
        Step catalog; default the production :data:`~repro.workflow.steps.STEPS`.
    force:
        Recompute (and overwrite) every checkpoint.
    budget_seconds:
        Graceful checkpoint-and-stop budget; ``None`` = unlimited.
    telemetry:
        Registry for spans/counters; default the ambient one.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        registry: Optional[StepRegistry] = None,
        force: bool = False,
        budget_seconds: Optional[float] = None,
        telemetry: Optional[TelemetryRegistry] = None,
    ) -> None:
        self.store = store if store is not None else ArtifactStore()
        self.registry = registry if registry is not None else STEPS
        self.force = bool(force)
        self.budget_seconds = (
            None if budget_seconds is None else float(budget_seconds)
        )
        self._telemetry = telemetry

    # ------------------------------------------------------------------
    def _registry_now(self) -> TelemetryRegistry:
        return self._telemetry if self._telemetry is not None \
            else get_registry()

    def _load_checkpoint(
        self, digest: str, step: Step, instance: str
    ) -> Optional[Dict[str, Any]]:
        """The persisted output under ``digest``, if it is a valid
        checkpoint of this exact step implementation (anything else —
        torn record, foreign artifact, stale impl — is a miss)."""
        record = self.store.get(digest)
        if (
            isinstance(record, dict)
            and record.get("kind") == "workflow-step"
            and record.get("step") == step.name
            and record.get("impl_version") == step.version
            and record.get("instance") == instance
            and isinstance(record.get("output"), dict)
        ):
            return record["output"]
        return None

    @staticmethod
    def _normalize_output(
        instance: str, output: Any
    ) -> Dict[str, Any]:
        """JSON round-trip: a fresh output becomes structurally
        identical to its future replay (tuples -> lists, etc.)."""
        if not isinstance(output, dict):
            raise StepFailedError(
                instance,
                f"step returned {type(output).__name__}, expected a dict",
            )
        try:
            normalized: Dict[str, Any] = json.loads(
                json.dumps(output, sort_keys=True)
            )
        except (TypeError, ValueError) as exc:
            raise StepFailedError(
                instance, f"output is not JSON-able: {exc}"
            ) from exc
        return normalized

    # ------------------------------------------------------------------
    def run(
        self,
        preset: Union[str, WorkflowPreset],
        overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    ) -> WorkflowOutcome:
        """Run (or resume) ``preset``; returns the outcome.

        ``overrides`` maps step instance names to parameter patches
        (the CLI's ``--set name.key=value``); unknown names are a
        typed error, and every patch enters the preset digest so an
        overridden run checkpoints under its own keys.
        """
        if isinstance(preset, str):
            preset = preset_by_name(preset)
        preset.validate(self.registry)
        overrides = {k: dict(v) for k, v in (overrides or {}).items()}
        known = set(preset.step_names())
        for name in sorted(overrides):
            if name not in known:
                raise WorkflowError(
                    f"override targets unknown step {name!r}; preset "
                    f"{preset.name!r} has: "
                    + ", ".join(preset.step_names())
                )
        preset_hex = preset_digest(
            preset, overrides, registry=self.registry
        )
        kill_after = os.environ.get(KILL_AFTER_ENV)

        reg = self._registry_now()
        outcome = WorkflowOutcome(
            preset=preset.name, digest=preset_hex, status="completed"
        )
        started = time.monotonic()
        outputs: Dict[str, Dict[str, Any]] = {}
        digests: Dict[str, str] = {}
        current: Optional[str] = None
        try:
            with reg.span("workflow.run", preset=preset.name):
                for index, spec in enumerate(preset.steps):
                    if (
                        self.budget_seconds is not None
                        and time.monotonic() - started
                        >= self.budget_seconds
                    ):
                        outcome.status = "paused"
                        outcome.pending = tuple(
                            s.name for s in preset.steps[index:]
                        )
                        reg.inc(
                            "workflow_paused_total", preset=preset.name
                        )
                        break
                    current = spec.name
                    step = self.registry.get(spec.step)
                    params = step.resolve_params(spec.params_dict())
                    params.update(overrides.get(spec.name, {}))
                    digest = step_address(
                        preset_hex, step, spec.name, params,
                        {d: digests[d] for d in spec.deps},
                    )
                    digests[spec.name] = digest
                    output = (
                        None if self.force
                        else self._load_checkpoint(digest, step, spec.name)
                    )
                    if output is not None:
                        source, seconds = "cache", 0.0
                    else:
                        source = "run"
                        inputs = {d: outputs[d] for d in spec.deps}
                        with reg.span(
                            "workflow.step",
                            preset=preset.name, step=spec.name,
                        ) as span:
                            try:
                                output = step.fn(params, inputs)
                            except (
                                KeyboardInterrupt, WorkflowError,
                            ):
                                raise
                            except Exception as exc:
                                raise StepFailedError(
                                    spec.name, str(exc)
                                ) from exc
                        output = self._normalize_output(spec.name, output)
                        seconds = span.seconds
                        self.store.put(digest, {
                            "kind": "workflow-step",
                            "preset": preset.name,
                            "step": step.name,
                            "impl_version": step.version,
                            "instance": spec.name,
                            "output": output,
                        })
                    outputs[spec.name] = output
                    outcome.steps.append(StepOutcome(
                        name=spec.name, step=spec.step, digest=digest,
                        source=source, seconds=seconds, output=output,
                    ))
                    reg.inc(
                        "workflow_steps_total",
                        step=spec.name, source=source,
                    )
                    reg.observe(
                        "workflow_step_seconds", seconds, step=spec.name
                    )
                    current = None
                    if kill_after == spec.name:  # pragma: no cover
                        # Crash-test hook: die *uncleanly* at the step
                        # boundary (no atexit, no flush) — exercised
                        # via subprocesses in the kill-resume tests.
                        os.kill(os.getpid(), signal.SIGKILL)
        except KeyboardInterrupt:
            reg.inc("workflow_interrupted_total", preset=preset.name)
            raise WorkflowInterrupted(
                current, tuple(s.name for s in outcome.steps)
            ) from None
        return outcome
