"""Declarative workflow engine with content-addressed checkpoint-resume.

ROADMAP item 4: every end-to-end campaign — chaos sweeps, reliability
SLO runs, serve loadtests — becomes a declared composition instead of
a hand-assembled CLI incantation.

- :mod:`repro.workflow.steps` — the :class:`StepRegistry` of typed,
  versioned, **pure** steps (``generate-mesh``, ``compile-routes``,
  ``sample-timeline``, ``run-campaign``, ``serve``, ``inject-chaos``,
  ``collect-telemetry``, ``report``);
- :mod:`repro.workflow.presets` — frozen, digestable
  :class:`WorkflowPreset` DAGs (``chaos-campaign``,
  ``reliability-slo``, ``serve-loadtest``);
- :mod:`repro.workflow.runner` — the :class:`WorkflowRunner`:
  content-addresses every step execution into the
  :class:`~repro.service.store.ArtifactStore` so a killed run resumes
  from the last completed step, with ``--budget-seconds`` graceful
  pause and ``--force`` recompute;
- :mod:`repro.workflow.errors` — the typed failure taxonomy
  (``WorkflowError`` under ``SimulationError``) and the CLI exit
  codes for pause/interrupt.

The engine's contract — the reason it can checkpoint at all — is that
a straight-through run and a kill-and-resume run produce
byte-identical reports.  ``make workflow-smoke`` gates this in CI.
"""

from .errors import (
    EXIT_INTERRUPTED,
    EXIT_PAUSED,
    StepFailedError,
    UnknownPresetError,
    UnknownStepError,
    WorkflowError,
    WorkflowInterrupted,
)
from .presets import (
    PRESETS,
    StepSpec,
    WorkflowPreset,
    preset_by_name,
    preset_digest,
)
from .runner import (
    KILL_AFTER_ENV,
    StepOutcome,
    WorkflowOutcome,
    WorkflowRunner,
    step_address,
)
from .steps import STEPS, Step, StepRegistry, register_step

__all__ = [
    "EXIT_INTERRUPTED",
    "EXIT_PAUSED",
    "KILL_AFTER_ENV",
    "PRESETS",
    "STEPS",
    "Step",
    "StepOutcome",
    "StepRegistry",
    "StepSpec",
    "UnknownPresetError",
    "UnknownStepError",
    "StepFailedError",
    "WorkflowError",
    "WorkflowInterrupted",
    "WorkflowOutcome",
    "WorkflowPreset",
    "WorkflowRunner",
    "preset_by_name",
    "preset_digest",
    "register_step",
    "step_address",
]
