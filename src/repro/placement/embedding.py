"""Job placement on the reconfigured machine.

The alternative to fault-tolerant routing that real schedulers reach
for is *avoidance*: run the job inside a fully healthy axis-aligned
submesh and ignore the rest.  This module implements both worlds so
they can be compared:

- :func:`find_free_submeshes` / :func:`largest_free_cubic_submesh` —
  healthy-submesh search (sliding-window scan over the usable-node
  indicator);
- :func:`compact_placement` — a greedy compact blob of survivor nodes
  for a ``p``-rank job under the lamb regime (survivors need not be
  contiguous: any survivor can talk to any survivor in k rounds);
- :func:`placement_cost` — average pairwise L1 distance, the
  communication-volume proxy used to compare placements.

The headline comparison (see ``benchmarks/bench_placement.py``): with
a few percent of random faults, the largest healthy submesh collapses
to a small fraction of the machine, while the lamb approach keeps
nearly every good node usable.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.lamb import LambResult
from ..mesh.geometry import Node

__all__ = [
    "usable_grid",
    "find_free_submeshes",
    "largest_free_cubic_submesh",
    "compact_placement",
    "placement_cost",
]


def usable_grid(result: LambResult) -> np.ndarray:
    """Boolean grid of survivor nodes (good and not a lamb)."""
    mesh = result.mesh
    grid = np.ones(mesh.widths, dtype=bool)
    for v in result.faults.node_faults:
        grid[v] = False
    for v in result.lambs:
        grid[v] = False
    return grid


def find_free_submeshes(
    usable: np.ndarray, shape: Sequence[int]
) -> List[Node]:
    """All minimal corners of fully usable ``shape`` submeshes.

    A corner qualifies iff every node in its window is usable
    (vectorized via ``sliding_window_view``).
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) != usable.ndim:
        raise ValueError("shape dimensionality mismatch")
    if any(s < 1 for s in shape):
        raise ValueError("submesh extents must be positive")
    if any(s > n for s, n in zip(shape, usable.shape)):
        return []
    windows = np.lib.stride_tricks.sliding_window_view(usable, shape)
    full = windows.all(axis=tuple(range(usable.ndim, 2 * usable.ndim)))
    return [tuple(int(x) for x in idx) for idx in np.argwhere(full)]


def largest_free_cubic_submesh(usable: np.ndarray) -> int:
    """Side length of the largest fully usable cubic submesh
    (binary search over the window test)."""
    lo, hi = 0, min(usable.shape)
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if find_free_submeshes(usable, (mid,) * usable.ndim):
            lo = mid
        else:
            hi = mid - 1
    return lo


def compact_placement(
    result: LambResult, p: int, seed: int = 0
) -> List[Node]:
    """A compact blob of ``p`` survivor ranks.

    Greedy accretion: start at the survivor closest to the mesh
    center, repeatedly add the unplaced survivor with minimal total
    distance to the current blob's centroid.  O(p * |survivors|) — fine
    for the job sizes the examples use.
    """
    survivors = result.survivors()
    if p > len(survivors):
        raise ValueError(f"cannot place {p} ranks on {len(survivors)} survivors")
    if p == 0:
        return []
    arr = np.asarray(survivors, dtype=np.float64)
    center = np.asarray(result.mesh.widths, dtype=np.float64) / 2.0
    start = int(np.argmin(np.abs(arr - center).sum(axis=1)))
    chosen = [start]
    chosen_mask = np.zeros(len(survivors), dtype=bool)
    chosen_mask[start] = True
    centroid = arr[start].copy()
    for _ in range(p - 1):
        dists = np.abs(arr - centroid).sum(axis=1)
        dists[chosen_mask] = np.inf
        nxt = int(np.argmin(dists))
        chosen.append(nxt)
        chosen_mask[nxt] = True
        centroid = arr[chosen_mask].mean(axis=0)
    return [survivors[i] for i in chosen]


def placement_cost(placement: Sequence[Node]) -> float:
    """Average pairwise L1 distance — the communication proxy."""
    if len(placement) < 2:
        return 0.0
    arr = np.asarray(placement, dtype=np.int64)
    total = 0
    for j in range(arr.shape[1]):
        col = np.sort(arr[:, j])
        # Sum of pairwise |differences| per dimension in O(p log p).
        idx = np.arange(len(col))
        total += int((col * (2 * idx - len(col) + 1)).sum())
    pairs = len(placement) * (len(placement) - 1) / 2
    return total / pairs
