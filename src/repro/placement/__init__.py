"""Job placement: healthy-submesh search vs lamb-regime placement."""

from .embedding import (
    compact_placement,
    find_free_submeshes,
    largest_free_cubic_submesh,
    placement_cost,
    usable_grid,
)

__all__ = [
    "usable_grid",
    "find_free_submeshes",
    "largest_free_cubic_submesh",
    "compact_placement",
    "placement_cost",
]
