"""Node inactivation: rectangularizing arbitrary fault sets.

Section 1 observes that fault-shape-restricted schemes (rectangular
blocks [4], solid faults [5, 6]) can handle arbitrary faults only
after *inactivating* good nodes until the faulty/inactivated regions
have the required shapes — and poses the open question of how the
number of inactivated nodes compares to the number of lambs.

This module implements the natural rectangularization: take the
bounding box of each connected fault component, then repeatedly merge
boxes that overlap **or whose fault rings overlap** (the [4] model
needs disjoint rings), until stable.  Everything good inside a final
box is inactivated.  The inactivation-vs-lambs ablation benchmark
builds on this.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..mesh.faults import FaultSet
from ..mesh.geometry import Node

__all__ = ["rectangularize", "inactivated_nodes", "InactivationResult"]

Box = Tuple[Tuple[int, int], ...]  # per-dimension (lo, hi)


def _components(faults: FaultSet) -> List[List[Node]]:
    """Connected components of the faulty nodes (mesh adjacency)."""
    mesh = faults.mesh
    remaining: Set[Node] = set(faults.node_faults)
    comps = []
    # Seed components in F_N declaration order: a set.pop() seed is
    # hash-order dependent and would reorder the emitted components.
    for seed in faults.node_faults:
        if seed not in remaining:
            continue
        remaining.remove(seed)
        comp = [seed]
        stack = [seed]
        while stack:
            u = stack.pop()
            for v in mesh.neighbors(u):
                if v in remaining:
                    remaining.remove(v)
                    comp.append(v)
                    stack.append(v)
        comps.append(comp)
    return comps


def _bbox(nodes: Sequence[Node], d: int) -> Box:
    return tuple(
        (min(v[j] for v in nodes), max(v[j] for v in nodes)) for j in range(d)
    )


def _boxes_conflict(a: Box, b: Box, margin: int) -> bool:
    """Proximity test: the boxes conflict when they come within
    ``margin`` of each other in every dimension (margin 0 = actual
    overlap; margin 2 = their distance-1 fault rings share a node)."""
    return all(
        a_lo - margin <= b_hi and b_lo - margin <= a_hi
        for (a_lo, a_hi), (b_lo, b_hi) in zip(a, b)
    )


def _merge(a: Box, b: Box) -> Box:
    return tuple(
        (min(a_lo, b_lo), max(a_hi, b_hi))
        for (a_lo, a_hi), (b_lo, b_hi) in zip(a, b)
    )


def rectangularize(faults: FaultSet, ring_gap: int = 2) -> List[Box]:
    """Disjoint bounding boxes covering all node faults.

    ``ring_gap = 2`` (default) merges boxes whose distance-1 fault
    rings would share a node, enforcing [4]'s disjoint-ring
    requirement; ``ring_gap = 0`` merely makes the boxes disjoint.
    """
    if faults.link_faults:
        raise ValueError(
            "rectangularization is defined for node faults; convert link "
            "faults first (FaultSet.links_as_node_faults)"
        )
    d = faults.mesh.d
    boxes = [_bbox(c, d) for c in _components(faults)]
    changed = True
    while changed:
        changed = False
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                if _boxes_conflict(boxes[i], boxes[j], ring_gap):
                    merged = _merge(boxes[i], boxes[j])
                    boxes = [
                        b for k, b in enumerate(boxes) if k not in (i, j)
                    ] + [merged]
                    changed = True
                    break
            if changed:
                break
    return boxes


class InactivationResult:
    """Outcome of rectangularization: boxes plus node accounting."""

    def __init__(self, faults: FaultSet, boxes: List[Box]):
        self.faults = faults
        self.boxes = boxes
        mesh = faults.mesh
        inact: Set[Node] = set()
        for box in boxes:
            import itertools

            for v in itertools.product(*(range(lo, hi + 1) for lo, hi in box)):
                if not faults.node_is_faulty(v):
                    inact.add(v)
        self.inactivated: Set[Node] = inact

    @property
    def num_inactivated(self) -> int:
        return len(self.inactivated)


def inactivated_nodes(faults: FaultSet, ring_gap: int = 2) -> InactivationResult:
    """Rectangularize and report which good nodes get inactivated —
    the quantity to compare against the lamb count (Section 1's open
    question)."""
    return InactivationResult(faults, rectangularize(faults, ring_gap))
