"""Baseline comparators: one-round routing, fault-ring routing,
node inactivation."""

from .block_fault import BlockFaultRouter, FaultBlock, comb_blocks, staircase_blocks
from .inactivation import InactivationResult, inactivated_nodes, rectangularize
from .one_round import OneVsTwoRounds, compare_one_vs_two_rounds, one_round_lamb
from .solid_fault import SolidFaultRouter, trace_fault_ring

__all__ = [
    "one_round_lamb",
    "compare_one_vs_two_rounds",
    "OneVsTwoRounds",
    "BlockFaultRouter",
    "FaultBlock",
    "staircase_blocks",
    "comb_blocks",
    "SolidFaultRouter",
    "trace_fault_ring",
    "rectangularize",
    "inactivated_nodes",
    "InactivationResult",
]
