"""One-round-of-routing baseline (Section 3).

The paper's first result is negative: with only k = 1 round of
dimension-ordered routing, random faults force lamb sets of size
proportional to ``f * n^2`` on ``M_3(n)`` (Theorem 3.1) — a constant
fraction of the machine even for ``f = n`` faults.  This module runs
the k = 1 pipeline so experiments can contrast it with k = 2, and
reproduces the Section 3 simulation (32 faults on ``M_3(32)``: k = 1
needs thousands of lambs, k = 2 almost never needs any).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.lamb import LambResult, find_lamb_set
from ..mesh.faults import FaultSet, random_node_faults
from ..mesh.geometry import Mesh
from ..routing.ordering import Ordering, ascending, repeated

__all__ = ["one_round_lamb", "OneVsTwoRounds", "compare_one_vs_two_rounds"]


def one_round_lamb(
    faults: FaultSet, pi: Ordering, method: str = "bipartite"
) -> LambResult:
    """Run the lamb pipeline with a single round of ``pi``-routing."""
    return find_lamb_set(faults, repeated(pi, 1), method=method)


@dataclass(frozen=True)
class OneVsTwoRounds:
    """Per-trial outcome of the Section 3 comparison.

    ``lambs_k1``/``lambs_k2`` are Lamb1 (2-approximate) sizes, so
    ``lambs_k1 / 2`` lower-bounds the optimal k = 1 lamb size.
    """

    trial: int
    f: int
    lambs_k1: int
    lambs_k2: int

    @property
    def k1_optimum_lower_bound(self) -> float:
        return self.lambs_k1 / 2.0


def compare_one_vs_two_rounds(
    n: int,
    f: int,
    trials: int,
    seed: int = 0,
    d: int = 3,
) -> List[OneVsTwoRounds]:
    """Section 3's experiment: ``f`` random node faults on ``M_d(n)``,
    lamb sizes under one round vs two rounds of ascending routing."""
    mesh = Mesh.square(d, n)
    pi = ascending(d)
    out = []
    for t in range(trials):
        rng = np.random.default_rng((seed, 3, t))
        faults = random_node_faults(mesh, f, rng)
        r1 = find_lamb_set(faults, repeated(pi, 1))
        r2 = find_lamb_set(faults, repeated(pi, 2))
        out.append(OneVsTwoRounds(trial=t, f=f, lambs_k1=r1.size, lambs_k2=r2.size))
    return out
