"""Fault-ring routing baseline (in the spirit of Boppana & Chalasani).

The comparison class the paper positions itself against [4, 5, 6]
routes *around* fault regions instead of sacrificing lambs.  This
module implements a 2D e-cube (XY) router with fault-ring detours for
**rectangular, non-overlapping fault blocks kept off the mesh
boundary** — exactly the fault model under which Boppana & Chalasani's
two-virtual-channel scheme works.

The router is used for the qualitative comparisons the paper makes:

- routes acquire *extra turns* while circling fault rings (up to
  Θ(n) turns for staircase fault placements, vs. at most 3 turns for
  2-round XY lamb routing);
- faults must first be *rectangularized* (see
  :mod:`repro.baselines.inactivation`) before such schemes apply to
  arbitrary fault sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..mesh.faults import FaultSet, rectangular_block
from ..mesh.geometry import Mesh, Node

__all__ = ["FaultBlock", "BlockFaultRouter", "staircase_blocks", "comb_blocks"]


@dataclass(frozen=True)
class FaultBlock:
    """A rectangular fault region ``[x0, x1] x [y0, y1]`` (inclusive)."""

    x0: int
    x1: int
    y0: int
    y1: int

    def contains(self, node: Sequence[int]) -> bool:
        x, y = node
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def ring_nodes(self, mesh: Mesh) -> List[Node]:
        """The fault ring: the nonfaulty boundary around the block."""
        out = []
        for x in range(self.x0 - 1, self.x1 + 2):
            for y in (self.y0 - 1, self.y1 + 1):
                if mesh.contains((x, y)):
                    out.append((x, y))
        for y in range(self.y0, self.y1 + 1):
            for x in (self.x0 - 1, self.x1 + 1):
                if mesh.contains((x, y)):
                    out.append((x, y))
        return out


def staircase_blocks(
    mesh: Mesh, count: int, size: int = 1, gap: int = 2
) -> List[FaultBlock]:
    """A diagonal staircase of blocks — the adversarial placement that
    forces Θ(count) turns on fault-ring routers while a lamb router
    still uses at most 3 turns."""
    blocks = []
    x = 1
    y = 1
    for _ in range(count):
        if x + size > mesh.widths[0] - 1 or y + size > mesh.widths[1] - 1:
            break
        blocks.append(FaultBlock(x, x + size - 1, y, y + size - 1))
        x += size + gap
        y += size + gap
    return blocks


def comb_blocks(mesh: Mesh, column: int, vgap: int = 3) -> List[FaultBlock]:
    """A ladder of 2-wide blocks alternately straddling ``column`` from
    the left and from the right, vertically separated by ``vgap`` (>= 3
    keeps the fault rings disjoint).

    A Y-phase XY route up ``column`` must detour around *every* rung —
    a serpentine that costs a constant number of turns per rung, i.e. a
    constant times ``n`` turns in total (the Section 1 observation
    about fault-ring schemes) — while 2-round lamb routing never
    exceeds 3 turns on a 2D mesh."""
    if mesh.d != 2:
        raise ValueError("comb blocks are a 2D pattern")
    nx, ny = mesh.widths
    if vgap < 3:
        raise ValueError("vgap must be >= 3 to keep fault rings disjoint")
    if not 2 <= column <= nx - 4:
        raise ValueError("column must leave room for the 2-wide rungs")
    blocks = []
    left = True
    y = 2
    while y + 1 <= ny - 2:
        if left:
            blocks.append(FaultBlock(column - 1, column, y, y + 1))
        else:
            blocks.append(FaultBlock(column, column + 1, y, y + 1))
        left = not left
        y += 2 + vgap
    return blocks


class BlockFaultRouter:
    """XY routing with fault-ring detours around rectangular blocks.

    Requirements (checked at construction): 2D mesh; blocks pairwise
    non-adjacent (their fault rings must not overlap) and at least one
    node away from the mesh boundary.
    """

    def __init__(self, mesh: Mesh, blocks: Sequence[FaultBlock]):
        if mesh.d != 2:
            raise ValueError("BlockFaultRouter is a 2D baseline")
        self.mesh = mesh
        self.blocks = list(blocks)
        for b in self.blocks:
            if (b.x0 < 1 or b.y0 < 1 or b.x1 > mesh.widths[0] - 2
                    or b.y1 > mesh.widths[1] - 2):
                raise ValueError(f"block {b} touches the mesh boundary")
        for i, a in enumerate(self.blocks):
            for b in self.blocks[i + 1 :]:
                if (
                    a.x0 - 2 <= b.x1
                    and b.x0 - 2 <= a.x1
                    and a.y0 - 2 <= b.y1
                    and b.y0 - 2 <= a.y1
                ):
                    raise ValueError(f"fault rings of {a} and {b} overlap")

    # ------------------------------------------------------------------
    def fault_set(self) -> FaultSet:
        """The fault set induced by the blocks."""
        nodes: List[Node] = []
        for b in self.blocks:
            nodes.extend(
                rectangular_block(
                    self.mesh, (b.x0, b.y0), (b.x1 - b.x0 + 1, b.y1 - b.y0 + 1)
                )
            )
        return FaultSet(self.mesh, nodes)

    def _block_at(self, node: Node) -> Optional[FaultBlock]:
        for b in self.blocks:
            if b.contains(node):
                return b
        return None

    def is_faulty(self, node: Node) -> bool:
        return self._block_at(node) is not None

    # ------------------------------------------------------------------
    def route(self, src: Sequence[int], dst: Sequence[int]) -> List[Node]:
        """An XY route from ``src`` to ``dst`` with ring detours.

        Returns the explicit fault-free path.  Raises ValueError if an
        endpoint is faulty.
        """
        src = tuple(int(c) for c in src)
        dst = tuple(int(c) for c in dst)
        if self.is_faulty(src) or self.is_faulty(dst):
            raise ValueError("endpoints must be nonfaulty")
        path = [src]
        x, y = src
        gx, gy = dst
        max_len = 8 * self.mesh.num_nodes  # livelock safety net

        def check_progress() -> None:
            if len(path) > max_len:
                raise RuntimeError(
                    "fault-ring routing exceeded the step budget; "
                    "block configuration likely violates the model"
                )
        # Phase X: correct the x coordinate, detouring around blocks.
        while x != gx:
            check_progress()
            step = 1 if gx > x else -1
            if not self.is_faulty((x + step, y)):
                x += step
                path.append((x, y))
                continue
            block = self._block_at((x + step, y))
            assert block is not None
            self._detour_around_x(path, block, step, gy)
            x, y = path[-1]
        # Phase Y: correct the y coordinate.
        while y != gy:
            check_progress()
            step = 1 if gy > y else -1
            if not self.is_faulty((x, y + step)):
                y += step
                path.append((x, y))
                continue
            block = self._block_at((x, y + step))
            assert block is not None
            self._detour_around_y(path, block, step, gx)
            x, y = path[-1]
            # The detour displaced us in x; re-run the X phase.
            while x != gx:
                check_progress()
                xstep = 1 if gx > x else -1
                if self.is_faulty((x + xstep, y)):
                    inner = self._block_at((x + xstep, y))
                    assert inner is not None
                    self._detour_around_x(path, inner, xstep, gy)
                else:
                    path.append((x + xstep, y))
                x, y = path[-1]
        return path

    def _detour_around_x(
        self, path: List[Node], block: FaultBlock, step: int, gy: int
    ) -> None:
        """Traveling along X and blocked: go around via the ring row
        closer to the destination row, cross the block extent, done."""
        x, y = path[-1]
        above = block.y0 - 1
        below = block.y1 + 1
        ring_y = above if abs(gy - above) <= abs(gy - below) else below
        while y != ring_y:
            y += 1 if ring_y > y else -1
            path.append((x, y))
        past_x = block.x1 + 1 if step > 0 else block.x0 - 1
        while x != past_x:
            x += step
            path.append((x, y))

    def _detour_around_y(
        self, path: List[Node], block: FaultBlock, step: int, gx: int
    ) -> None:
        """Traveling along Y and blocked: side-step along the ring
        column closer to the destination column, cross the extent."""
        x, y = path[-1]
        left = block.x0 - 1
        right = block.x1 + 1
        ring_x = left if abs(gx - left) <= abs(gx - right) else right
        while x != ring_x:
            x += 1 if ring_x > x else -1
            path.append((x, y))
        past_y = block.y1 + 1 if step > 0 else block.y0 - 1
        while y != past_y:
            y += step
            path.append((x, y))
