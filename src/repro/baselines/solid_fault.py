"""Fault-ring routing around *solid* nonconvex fault regions.

Chalasani & Boppana [5] extend fault-ring routing from rectangular
blocks to "solid faults" — connected regions such as crosses, L's and
T's whose boundary ring is a simple cycle — at the cost of four
virtual channels ([6] brings it to three).  This module implements the
routing geometry of that family on 2D meshes:

- :func:`trace_fault_ring` computes the ordered boundary cycle (the
  *f-ring*) of a connected fault region;
- :class:`SolidFaultRouter` performs XY routing with ring traversal
  around any number of solid regions with pairwise-disjoint rings.

As with :mod:`repro.baselines.block_fault`, the point is the
comparison the paper draws: these schemes need 3-4 virtual channels
and their routes accumulate turns while circling rings, whereas the
lamb approach keeps two VCs and at most ``k(d-1) + k - 1`` turns.

Model requirements (checked): regions are 8-connected, hole-free
enough that their ring is a single simple cycle, do not touch the mesh
boundary, and rings do not overlap or touch.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh, Node

__all__ = ["trace_fault_ring", "SolidFaultRouter"]


def _neighbors8(v: Node) -> List[Node]:
    x, y = v
    return [
        (x + dx, y + dy)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        if (dx, dy) != (0, 0)
    ]


def _components8(nodes: Set[Node]) -> List[Set[Node]]:
    """8-connected components of a node set."""
    remaining = set(nodes)
    comps = []
    # Deterministic seed order: set.pop() would emit the components in
    # hash order.
    for seed in sorted(nodes):
        if seed not in remaining:
            continue
        remaining.remove(seed)
        comp = {seed}
        stack = [seed]
        while stack:
            u = stack.pop()
            for w in _neighbors8(u):
                if w in remaining:
                    remaining.remove(w)
                    comp.add(w)
                    stack.append(w)
        comps.append(comp)
    return comps


def trace_fault_ring(mesh: Mesh, region: Set[Node]) -> List[Node]:
    """The f-ring of a solid region, as an ordered closed cycle.

    The ring is the set of good nodes within L-infinity distance 1 of
    the region; for a solid region off the mesh boundary it is a
    simple rectilinear cycle (consecutive ring nodes are mesh
    neighbors).  Raises ValueError if the region violates the model.
    """
    if mesh.d != 2:
        raise ValueError("fault rings are a 2D construction")
    if not region:
        raise ValueError("empty region")
    for (x, y) in region:
        if x < 1 or y < 1 or x > mesh.widths[0] - 2 or y > mesh.widths[1] - 2:
            raise ValueError(f"region touches the mesh boundary at ({x}, {y})")
    ring: Set[Node] = set()
    for v in region:
        for w in _neighbors8(v):
            if w not in region:
                if not mesh.contains(w):
                    raise ValueError("region touches the mesh boundary")
                ring.add(w)
    # Walk the cycle using orthogonal adjacency (sorted iteration pins
    # the adjacency insertion order deterministically).
    adj: Dict[Node, List[Node]] = {}
    for v in sorted(ring):
        x, y = v
        adj[v] = [
            w
            for w in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1))
            if w in ring
        ]
    if any(len(ns) != 2 for ns in adj.values()):
        raise ValueError(
            "fault ring is not a simple cycle; the region is not solid "
            "(it may have holes or pinch points)"
        )
    start = min(ring)
    cycle = [start]
    prev: Optional[Node] = None
    cur = start
    while True:
        nxt = adj[cur][0] if adj[cur][0] != prev else adj[cur][1]
        if nxt == start:
            break
        cycle.append(nxt)
        prev, cur = cur, nxt
        if len(cycle) > len(ring):
            raise ValueError("fault ring walk did not close")
    if len(cycle) != len(ring):
        raise ValueError("fault ring is disconnected; region is not solid")
    return cycle


class SolidFaultRouter:
    """XY routing with f-ring traversal around solid fault regions.

    Parameters
    ----------
    mesh:
        A 2D mesh.
    fault_nodes:
        The faulty nodes; 8-connected components become the regions.
    """

    def __init__(self, mesh: Mesh, fault_nodes: Sequence[Node]):
        if mesh.d != 2:
            raise ValueError("SolidFaultRouter is a 2D baseline")
        self.mesh = mesh
        self.fault_nodes: FrozenSet[Node] = frozenset(
            tuple(int(x) for x in v) for v in fault_nodes
        )
        self.regions = _components8(set(self.fault_nodes))
        self.rings = [trace_fault_ring(mesh, r) for r in self.regions]
        self._region_of: Dict[Node, int] = {}
        for i, r in enumerate(self.regions):
            for v in r:
                self._region_of[v] = i
        ring_sets = [set(r) for r in self.rings]
        for i in range(len(ring_sets)):
            for j in range(i + 1, len(ring_sets)):
                if ring_sets[i] & ring_sets[j]:
                    raise ValueError(f"fault rings {i} and {j} overlap")
                if any(
                    w in ring_sets[j]
                    for v in ring_sets[i]
                    for w in self.mesh.neighbors(v)
                ):
                    raise ValueError(f"fault rings {i} and {j} touch")
        self._ring_index: List[Dict[Node, int]] = [
            {v: k for k, v in enumerate(r)} for r in self.rings
        ]

    # ------------------------------------------------------------------
    def fault_set(self) -> FaultSet:
        return FaultSet(self.mesh, sorted(self.fault_nodes))

    def is_faulty(self, node: Node) -> bool:
        return tuple(node) in self.fault_nodes

    # ------------------------------------------------------------------
    def _ring_traverse(
        self, region: int, entry: Node, exit_test, prefer_dir: int
    ) -> List[Node]:
        """Walk the ring from ``entry`` in one orientation until
        ``exit_test(node)`` holds; returns the walked nodes (excluding
        the entry).  ``prefer_dir`` (+1/-1) selects the orientation."""
        ring = self.rings[region]
        n = len(ring)
        pos = self._ring_index[region][entry]
        out: List[Node] = []
        for step in range(1, n + 1):
            node = ring[(pos + prefer_dir * step) % n]
            out.append(node)
            if exit_test(node):
                return out
        raise RuntimeError("ring traversal found no exit; model violated")

    def route(self, src: Sequence[int], dst: Sequence[int]) -> List[Node]:
        """An XY route with f-ring detours; returns the explicit path.

        Algorithm: take the ideal XY route; wherever it runs through a
        fault region, both the entry-side and exit-side neighbors of
        the faulty run are f-ring nodes of that region, so the run is
        replaced by the shorter ring arc between them.  One pass, no
        livelock, and the added turns are exactly the ring-circling
        cost the paper attributes to this family of schemes.
        """
        from ..routing.dor import dor_path
        from ..routing.ordering import xy

        src = tuple(int(c) for c in src)
        dst = tuple(int(c) for c in dst)
        if self.is_faulty(src) or self.is_faulty(dst):
            raise ValueError("endpoints must be nonfaulty")
        ideal = dor_path(self.mesh, xy(), src, dst)
        path: List[Node] = [src]
        i = 0
        while i + 1 < len(ideal):
            nxt = ideal[i + 1]
            if not self.is_faulty(nxt):
                path.append(nxt)
                i += 1
                continue
            # Contiguous faulty run ideal[i+1 .. j-1]; splice a ring arc
            # from ideal[i] to ideal[j].
            region = self._region_of[nxt]
            j = i + 1
            while self.is_faulty(ideal[j]):
                if self._region_of[ideal[j]] != region:
                    raise RuntimeError(
                        "XY route crosses two regions without a good node "
                        "between them; rings overlap"
                    )
                j += 1
            path.extend(self._ring_arc(region, ideal[i], ideal[j]))
            i = j
        return path

    def _ring_arc(self, region: int, a: Node, b: Node) -> List[Node]:
        """The shorter ring arc from ``a`` to ``b`` (excluding ``a``)."""
        ring = self.rings[region]
        index = self._ring_index[region]
        n = len(ring)
        ia, ib = index[a], index[b]
        fwd = (ib - ia) % n
        bwd = (ia - ib) % n
        if fwd <= bwd:
            return [ring[(ia + k) % n] for k in range(1, fwd + 1)]
        return [ring[(ia - k) % n] for k in range(1, bwd + 1)]
