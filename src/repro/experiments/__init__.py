"""Reproduction harness for every table and figure of the paper."""

from .figures import (
    PERCENTS,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    fig22,
    fig23,
    fig24,
    fig25,
    fig26,
    section3_one_vs_two_rounds,
)
from .chaos_experiments import (
    fault_arrival_sweep,
    reconfiguration_latency_sweep,
)
from .harness import SweepResult, TrialSeries, default_trials, lamb_trials
from .link_faults import link_fault_sweep, link_vs_node_conversion
from .parallel import (
    TrialEngine,
    engine_jobs,
    get_default_engine,
    resolve_jobs,
    set_default_jobs,
)
from .wormhole_experiments import (
    CascadeResult,
    injection_rate_sweep,
    lambs_must_route,
)
from .report import render_matrix, render_sweep, sweep_to_markdown
from .tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    WorkedExample,
    worked_example,
)

__all__ = [
    "PERCENTS",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "section3_one_vs_two_rounds",
    "SweepResult",
    "TrialSeries",
    "TrialEngine",
    "default_trials",
    "engine_jobs",
    "get_default_engine",
    "lamb_trials",
    "resolve_jobs",
    "set_default_jobs",
    "link_fault_sweep",
    "link_vs_node_conversion",
    "injection_rate_sweep",
    "lambs_must_route",
    "CascadeResult",
    "fault_arrival_sweep",
    "reconfiguration_latency_sweep",
    "render_sweep",
    "render_matrix",
    "sweep_to_markdown",
    "worked_example",
    "WorkedExample",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
]
