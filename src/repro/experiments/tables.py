"""The worked example of Section 5: Tables 1 and 2.

The 12x12 mesh with faults {(9,1), (11,6), (10,10)} (Fig. 2), its SES
partition (Fig. 3, nine sets) and DES partition (Fig. 4, seven sets),
the one-round matrix R (Table 1), the two-round matrix R^(2)
(Table 2), and the resulting lamb set Λ = S8 ∪ D5 =
{(11,10), (10,11)} of weight 2 (Fig. 10).

The paper's S/D numbering follows Figs. 3-6; the algorithm emits the
same sets in a different order, so this module pins the published
numbering explicitly and reindexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.lamb import LambResult, find_lamb_set
from ..core.partition import find_des_partition, find_ses_partition
from ..mesh.faults import FaultSet
from ..mesh.geometry import Mesh
from ..mesh.regions import Rect
from ..routing.ordering import repeated, xy

__all__ = [
    "WORKED_EXAMPLE_FAULTS",
    "PAPER_SES_SPECS",
    "PAPER_DES_SPECS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "WorkedExample",
    "worked_example",
]

#: Fault set of Fig. 2.
WORKED_EXAMPLE_FAULTS: Tuple[Tuple[int, int], ...] = ((9, 1), (11, 6), (10, 10))

#: The paper's SES numbering S1..S9 (Fig. 3), as Rect specs.
PAPER_SES_SPECS = (
    ("*", 0),
    ((0, 8), 1),
    ((10, 11), 1),
    ("*", (2, 5)),
    ((0, 10), 6),
    ("*", (7, 9)),
    ((0, 9), 10),
    (11, 10),
    ("*", 11),
)

#: The paper's DES numbering D1..D7 (Fig. 4).
PAPER_DES_SPECS = (
    ((0, 8), "*"),
    (9, 0),
    (9, (2, 11)),
    (10, (0, 9)),
    (10, 11),
    (11, (0, 5)),
    (11, (7, 11)),
)

#: Table 1 of the paper (R, one round).
PAPER_TABLE1 = np.array(
    [
        [1, 1, 0, 1, 0, 1, 0],
        [1, 0, 0, 0, 0, 0, 0],
        [0, 0, 0, 1, 0, 1, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [1, 0, 1, 1, 0, 0, 0],
        [1, 0, 1, 1, 0, 0, 1],
        [1, 0, 1, 0, 0, 0, 0],
        [0, 0, 0, 0, 0, 0, 1],
        [1, 0, 1, 0, 1, 0, 1],
    ],
    dtype=bool,
)

#: Table 2 of the paper (R^(2), two rounds).
PAPER_TABLE2 = np.array(
    [
        [1, 1, 1, 1, 1, 1, 1],
        [1, 1, 1, 1, 1, 1, 1],
        [1, 1, 1, 1, 0, 1, 1],
        [1, 1, 1, 1, 1, 1, 1],
        [1, 1, 1, 1, 1, 1, 1],
        [1, 1, 1, 1, 1, 1, 1],
        [1, 1, 1, 1, 1, 1, 1],
        [1, 0, 1, 1, 1, 0, 1],
        [1, 1, 1, 1, 1, 1, 1],
    ],
    dtype=bool,
)


@dataclass
class WorkedExample:
    """All artifacts of the Section 5 example in paper numbering."""

    faults: FaultSet
    ses: List[Rect]  # S1..S9
    des: List[Rect]  # D1..D7
    R: np.ndarray  # Table 1
    R2: np.ndarray  # Table 2
    result: LambResult

    def matches_paper(self) -> bool:
        """Whether every published artifact is reproduced exactly."""
        return (
            bool(np.array_equal(self.R, PAPER_TABLE1))
            and bool(np.array_equal(self.R2, PAPER_TABLE2))
            and sorted(self.result.lambs) == [(10, 11), (11, 10)]
            and self.result.cover_weight == 2.0
        )


def _reindex(rects: List[Rect], specs, mesh: Mesh) -> Tuple[List[Rect], List[int]]:
    """Reorder algorithm output to the paper's numbering."""
    want = [Rect.from_spec(mesh, s) for s in specs]
    index: List[int] = []
    by_bounds: Dict[Tuple, int] = {(r.lo, r.hi): i for i, r in enumerate(rects)}
    for r in want:
        key = (r.lo, r.hi)
        if key not in by_bounds:
            raise AssertionError(
                f"algorithm did not produce the paper's set {r.spec()}"
            )
        index.append(by_bounds[key])
    return want, index


def worked_example() -> WorkedExample:
    """Run the full pipeline on the Section 5 example and reindex all
    matrices to the paper's numbering."""
    mesh = Mesh((12, 12))
    faults = FaultSet(mesh, WORKED_EXAMPLE_FAULTS)
    orderings = repeated(xy(), 2)
    ses_raw = find_ses_partition(faults, xy())
    des_raw = find_des_partition(faults, xy())
    ses, s_idx = _reindex(ses_raw, PAPER_SES_SPECS, mesh)
    des, d_idx = _reindex(des_raw, PAPER_DES_SPECS, mesh)
    result = find_lamb_set(faults, orderings)
    R_raw = result.reach.round_matrices[0]
    R2_raw = result.reach.Rk
    R = R_raw[np.ix_(s_idx, d_idx)]
    R2 = R2_raw[np.ix_(s_idx, d_idx)]
    return WorkedExample(faults=faults, ses=ses, des=des, R=R, R2=R2, result=result)
