"""Ablation: rectangular SES partitions vs exact SEC partitions.

Remark 4.1: the SEC partition is the *minimum* SES partition, but
finding it requires whole-mesh reachability; the Fig. 11 rectangular
algorithm is mesh-size independent at the cost of (potentially) more
sets.  This ablation measures that cost on random instances — how many
extra sets the rectangular algorithm pays, and how the downstream
reachability stage's matrix sizes grow as a result.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.equivalence import dec_partition, sec_partition
from ..core.partition import find_des_partition, find_ses_partition
from ..mesh.faults import random_node_faults
from ..mesh.geometry import Mesh
from ..routing.ordering import ascending
from .harness import SweepResult, TrialSeries, default_trials

__all__ = ["partition_ablation_sweep"]


def partition_ablation_sweep(
    mesh: Mesh,
    fault_counts: Sequence[int],
    trials: Optional[int] = None,
    seed: int = 0,
) -> SweepResult:
    """Rectangular vs exact partition sizes over random fault counts.

    Records per trial: ``rect_ses``, ``exact_sec`` (and the DES
    analogues) plus the overhead ratio.  Exact partitions are O(N^2)
    — keep the mesh small.
    """
    trials = default_trials(10) if trials is None else trials
    pi = ascending(mesh.d)
    out = SweepResult(
        figure="partition-ablation",
        description=f"rectangular vs exact partition sizes, {mesh}",
        x_label="faults",
        meta={"mesh": mesh.widths, "trials": trials},
    )
    for i, f in enumerate(fault_counts):
        series = TrialSeries(x=f)
        for t in range(trials):
            rng = np.random.default_rng((seed, 9300 + i, t))
            faults = random_node_faults(mesh, f, rng)
            rect_ses = len(find_ses_partition(faults, pi))
            rect_des = len(find_des_partition(faults, pi))
            exact_sec = len(sec_partition(faults, pi))
            exact_dec = len(dec_partition(faults, pi))
            series.add(
                rect_ses=rect_ses,
                rect_des=rect_des,
                exact_sec=exact_sec,
                exact_dec=exact_dec,
                ses_overhead=rect_ses / max(1, exact_sec),
            )
        out.series.append(series)
    return out
