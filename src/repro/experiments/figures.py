"""Reproduction entry points for every figure of Section 8 (and the
Section 3 simulation).

Each ``figNN`` function regenerates the data behind the corresponding
paper figure and returns a :class:`SweepResult`; ``trials=None`` uses
a scaled-down default (see :func:`repro.experiments.default_trials`),
and the paper's 1000-trial counts are restored with
``REPRO_TRIALS=1000``.

The paper's fault percentages are of the node count N; fault counts
are rounded to the nearest integer (e.g. 3% of 32768 -> 983, matching
the numbers quoted in the paper).
"""

from __future__ import annotations

from typing import Optional, Sequence


from ..baselines.one_round import compare_one_vs_two_rounds
from ..core.bounds import (
    one_round_expected_lamb_lower_bound,
    partition_size_bound,
)
from ..mesh.geometry import Mesh
from .harness import SweepResult, TrialSeries, default_trials, lamb_trials

__all__ = [
    "PERCENTS",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "section3_one_vs_two_rounds",
]

#: The fault percentages used throughout Section 8.
PERCENTS: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)

#: Bisection-width ratios of Figs. 21-22.
RATIOS: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)


def _faults_for_percent(mesh: Mesh, pct: float) -> int:
    return max(1, int(round(mesh.num_nodes * pct / 100.0)))


def _percent_sweep(
    figure: str,
    description: str,
    mesh: Mesh,
    trials: int,
    seed: int,
    tag: int,
) -> SweepResult:
    out = SweepResult(
        figure=figure,
        description=description,
        x_label="% faults",
        meta={"mesh": mesh.widths, "trials": trials},
    )
    for i, pct in enumerate(PERCENTS):
        f = _faults_for_percent(mesh, pct)
        series = lamb_trials(mesh, f, trials, seed=seed, tag=tag * 100 + i)
        series.x = pct
        out.series.append(series)
    return out


def fig17(trials: Optional[int] = None, seed: int = 0) -> SweepResult:
    """Fig. 17: avg & max #lambs vs fault % on the 32x32 2D mesh."""
    trials = default_trials(100) if trials is None else trials
    return _percent_sweep(
        "fig17", "lambs vs %faults, M2(32)", Mesh.square(2, 32), trials, seed, 17
    )


def fig18(trials: Optional[int] = None, seed: int = 0) -> SweepResult:
    """Fig. 18: avg & max #lambs vs fault % on the 32^3 3D mesh
    (paper: avg 67.6 lambs at 3% = 983 faults)."""
    trials = default_trials(10) if trials is None else trials
    return _percent_sweep(
        "fig18", "lambs vs %faults, M3(32)", Mesh.square(3, 32), trials, seed, 18
    )


def fig19(
    trials: Optional[int] = None,
    seed: int = 0,
    fig17_result: Optional[SweepResult] = None,
    fig18_result: Optional[SweepResult] = None,
) -> SweepResult:
    """Fig. 19: average additional damage (#lambs / #faults) vs fault
    percentage, 2D vs 3D.  Derived from the Fig. 17/18 sweeps."""
    r2d = fig17_result or fig17(trials, seed)
    r3d = fig18_result or fig18(trials, seed)
    out = SweepResult(
        figure="fig19",
        description="additional damage (#lambs/#faults), 2D vs 3D",
        x_label="% faults",
        meta={"from": ("fig17", "fig18")},
    )
    mesh2, mesh3 = Mesh.square(2, 32), Mesh.square(3, 32)
    for pct, s2, s3 in zip(PERCENTS, r2d.series, r3d.series):
        f2 = _faults_for_percent(mesh2, pct)
        f3 = _faults_for_percent(mesh3, pct)
        series = TrialSeries(x=pct)
        series.add(
            damage_2d=s2.avg("lambs") / f2,
            damage_3d=s3.avg("lambs") / f3,
        )
        out.series.append(series)
    return out


def fig20(trials: Optional[int] = None, seed: int = 0) -> SweepResult:
    """Fig. 20: avg & max #lambs vs fault % on the 181x181 2D mesh
    (same node count as 32^3; the 2D lamb counts are much larger)."""
    trials = default_trials(10) if trials is None else trials
    return _percent_sweep(
        "fig20", "lambs vs %faults, M2(181)", Mesh.square(2, 181), trials, seed, 20
    )


def _ratio_sweep(
    figure: str, description: str, d: int, widths: Sequence[int],
    trials: int, seed: int, tag: int,
) -> SweepResult:
    out = SweepResult(
        figure=figure,
        description=description,
        x_label="faults / bisection width",
        meta={"d": d, "widths": tuple(widths), "trials": trials},
    )
    for i, ratio in enumerate(RATIOS):
        series = TrialSeries(x=ratio)
        for j, n in enumerate(widths):
            mesh = Mesh.square(d, n)
            f = max(1, int(round(ratio * mesh.bisection_width)))
            s = lamb_trials(mesh, f, trials, seed=seed, tag=tag * 1000 + i * 10 + j)
            series.add(**{f"lamb_pct_n{n}": 100.0 * s.avg("lambs") / mesh.num_nodes})
        out.series.append(series)
    return out


def fig21(trials: Optional[int] = None, seed: int = 0) -> SweepResult:
    """Fig. 21: avg lamb % of N vs faults/bisection-width, 2D meshes
    n = 32, 64, 128."""
    trials = default_trials(20) if trials is None else trials
    return _ratio_sweep(
        "fig21", "lamb%% vs f/bisection, 2D", 2, (32, 64, 128), trials, seed, 21
    )


def fig22(trials: Optional[int] = None, seed: int = 0) -> SweepResult:
    """Fig. 22: avg lamb % of N vs faults/bisection-width, 3D meshes
    n = 10, 16, 25."""
    trials = default_trials(5) if trials is None else trials
    return _ratio_sweep(
        "fig22", "lamb%% vs f/bisection, 3D", 3, (10, 16, 25), trials, seed, 22
    )


#: Mesh widths whose sizes are closest to 2^i, i = 10..15 (paper Figs. 23-24).
FIG23_WIDTHS: Sequence[int] = (32, 45, 64, 91, 128, 181)
FIG24_WIDTHS: Sequence[int] = (10, 13, 16, 20, 25, 32)


def _size_sweep(
    figure: str, description: str, d: int, widths: Sequence[int],
    trials: int, seed: int, tag: int, pct: float = 3.0,
) -> SweepResult:
    out = SweepResult(
        figure=figure,
        description=description,
        x_label="N (nodes)",
        meta={"d": d, "percent": pct, "trials": trials},
    )
    for i, n in enumerate(widths):
        mesh = Mesh.square(d, n)
        f = _faults_for_percent(mesh, pct)
        s = lamb_trials(mesh, f, trials, seed=seed, tag=tag * 100 + i)
        s.x = mesh.num_nodes
        s.values["lamb_pct"] = [
            100.0 * v / mesh.num_nodes for v in s.values["lambs"]
        ]
        out.series.append(s)
    return out


def fig23(trials: Optional[int] = None, seed: int = 0) -> SweepResult:
    """Fig. 23: avg lamb %% vs mesh size, 2D, 3%% random faults."""
    trials = default_trials(10) if trials is None else trials
    return _size_sweep(
        "fig23", "lamb%% vs N, 2D @3%% faults", 2, FIG23_WIDTHS, trials, seed, 23
    )


def fig24(trials: Optional[int] = None, seed: int = 0) -> SweepResult:
    """Fig. 24: avg lamb %% vs mesh size, 3D, 3%% random faults."""
    trials = default_trials(5) if trials is None else trials
    return _size_sweep(
        "fig24", "lamb%% vs N, 3D @3%% faults", 3, FIG24_WIDTHS, trials, seed, 24
    )


def fig25(trials: Optional[int] = None, seed: int = 0) -> SweepResult:
    """Fig. 25: avg & max #SES vs fault %% on M3(32), with the
    Theorem 6.4 bound B(d, f) for comparison."""
    trials = default_trials(10) if trials is None else trials
    mesh = Mesh.square(3, 32)
    out = SweepResult(
        figure="fig25",
        description="#SES vs %faults on M3(32) + Theorem 6.4 bound",
        x_label="% faults",
        meta={"mesh": mesh.widths, "trials": trials},
    )
    for i, pct in enumerate(PERCENTS):
        f = _faults_for_percent(mesh, pct)
        s = lamb_trials(mesh, f, trials, seed=seed, tag=2500 + i)
        s.x = pct
        s.values["bound"] = [float(partition_size_bound(mesh.widths, f))]
        out.series.append(s)
    return out


def fig26(trials: Optional[int] = None, seed: int = 0) -> SweepResult:
    """Fig. 26: average running time of the lamb pipeline vs fault %%,
    on M3(32) and M2(181).  (Absolute values differ from the paper's
    133 MHz C implementation; the growth shape is the comparison.)"""
    trials = default_trials(3) if trials is None else trials
    out = SweepResult(
        figure="fig26",
        description="avg running time vs %faults, M3(32) and M2(181)",
        x_label="% faults",
        meta={"trials": trials},
    )
    m3, m2 = Mesh.square(3, 32), Mesh.square(2, 181)
    for i, pct in enumerate(PERCENTS):
        series = TrialSeries(x=pct)
        s3 = lamb_trials(m3, _faults_for_percent(m3, pct), trials,
                         seed=seed, tag=2600 + i)
        s2 = lamb_trials(m2, _faults_for_percent(m2, pct), trials,
                         seed=seed, tag=2650 + i)
        series.add(seconds_3d=s3.avg("seconds"), seconds_2d=s2.avg("seconds"))
        out.series.append(series)
    return out


def section3_one_vs_two_rounds(
    trials: Optional[int] = None, seed: int = 0, n: int = 32, f: int = 32
) -> SweepResult:
    """Section 3's simulation: f = 32 random faults on M3(32).

    Paper: the Theorem 3.1 bound gives E[lambs] >= 2698 for k = 1
    (simulation: ~5750), while with k = 2 only 5 of 10000 trials
    needed a single lamb."""
    trials = default_trials(10) if trials is None else trials
    rows = compare_one_vs_two_rounds(n, f, trials, seed=seed)
    out = SweepResult(
        figure="section3",
        description="one round vs two rounds of XYZ routing on M3(n)",
        x_label="f",
        meta={
            "n": n,
            "theorem31_bound": one_round_expected_lamb_lower_bound(n, f),
            "trials": trials,
        },
    )
    series = TrialSeries(x=f)
    for r in rows:
        series.add(lambs_k1=r.lambs_k1, lambs_k2=r.lambs_k2)
    out.series.append(series)
    return out
