"""Link-fault experiments (extension).

The paper's algorithms handle directed link faults throughout
(Definition 2.4) but its Section 8 simulations use node faults only
"for simplicity".  These experiments fill that gap: Fig. 17/18-style
lamb sweeps under random *link* faults, plus a comparison against the
naive conversion of Section 2.2 (turn each faulty link into a faulty
node at one endpoint), quantifying how much the native link-fault
handling saves.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.lamb import find_lamb_set
from ..mesh.faults import random_link_faults
from ..mesh.geometry import Mesh
from ..routing.ordering import ascending, repeated
from .harness import SweepResult, TrialSeries, default_trials

__all__ = ["link_fault_sweep", "link_vs_node_conversion"]


def link_fault_sweep(
    mesh: Mesh,
    percents: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
    trials: Optional[int] = None,
    seed: int = 0,
    bidirectional: bool = True,
) -> SweepResult:
    """Average/max lamb counts under random link faults.

    Percentages are of the *node* count N (so the x-axis is comparable
    with Figs. 17-18); each percent point uses ``round(N * pct / 100)``
    faulty physical channels (both directions when ``bidirectional``).
    """
    trials = default_trials(10) if trials is None else trials
    orderings = repeated(ascending(mesh.d), 2)
    out = SweepResult(
        figure="linkfaults",
        description=f"lambs vs % link faults, {mesh}",
        x_label="% link faults (of N)",
        meta={"mesh": mesh.widths, "trials": trials,
              "bidirectional": bidirectional},
    )
    for i, pct in enumerate(percents):
        count = max(1, int(round(mesh.num_nodes * pct / 100.0)))
        series = TrialSeries(x=pct)
        for t in range(trials):
            rng = np.random.default_rng((seed, 9100 + i, t))
            faults = random_link_faults(
                mesh, count, rng, bidirectional=bidirectional
            )
            result = find_lamb_set(faults, orderings)
            series.add(lambs=result.size, num_ses=result.num_ses)
        out.series.append(series)
    return out


def link_vs_node_conversion(
    mesh: Mesh,
    count: int,
    trials: Optional[int] = None,
    seed: int = 0,
) -> SweepResult:
    """Native link-fault handling vs the Section 2.2 conversion.

    For the same random faulty channels, compares the lamb count when
    link faults are modeled exactly against converting each faulty
    link into a node fault ("because this introduces unnecessary
    additional faults, we consider link faults separately").
    """
    trials = default_trials(10) if trials is None else trials
    orderings = repeated(ascending(mesh.d), 2)
    out = SweepResult(
        figure="link-vs-node",
        description=f"native link faults vs node conversion, {mesh}, "
        f"{count} faulty channels",
        x_label="trial",
        meta={"mesh": mesh.widths, "count": count, "trials": trials},
    )
    series = TrialSeries(x=count)
    for t in range(trials):
        rng = np.random.default_rng((seed, 9200, t))
        faults = random_link_faults(mesh, count, rng, bidirectional=True)
        native = find_lamb_set(faults, orderings)
        converted = find_lamb_set(faults.links_as_node_faults(), orderings)
        # The conversion's lamb set sacrifices good nodes AND the
        # artificially-faulted endpoints lose their processing role:
        # count both against it.
        conversion_cost = converted.size + converted.faults.num_node_faults
        series.add(
            lambs_native=native.size,
            lambs_converted=converted.size,
            sacrificed_native=native.size,
            sacrificed_converted=conversion_cost,
        )
    out.series.append(series)
    return out
