"""Seeded multi-trial experiment runner.

All Section 8 experiments share one shape: fix a mesh and a fault
count, repeat ``trials`` times with fresh random faults, record
statistics of the lamb run.  The paper uses 1000 trials per point; the
default here is smaller so the full suite regenerates in minutes —
set the ``REPRO_TRIALS`` environment variable (or pass ``trials=``)
to restore the paper's counts.

Determinism: trial ``t`` of a sweep point draws faults from
``numpy.random.default_rng((seed, tag, t))``, so every number in
EXPERIMENTS.md is exactly reproducible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..core.lamb import LambResult, find_lamb_set
from ..mesh.faults import random_node_faults
from ..mesh.geometry import Mesh
from ..routing.ordering import KRoundOrdering, ascending, repeated

__all__ = ["TrialSeries", "SweepResult", "default_trials", "lamb_trials"]


def default_trials(fallback: int) -> int:
    """Trial count: ``REPRO_TRIALS`` env var if set, else ``fallback``."""
    raw = os.environ.get("REPRO_TRIALS", "")
    if raw:
        n = int(raw)
        if n < 1:
            raise ValueError("REPRO_TRIALS must be positive")
        return n
    return fallback


@dataclass
class TrialSeries:
    """Per-trial measurements at one sweep point."""

    x: float
    values: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, **measurements: float) -> None:
        for k, v in measurements.items():
            self.values.setdefault(k, []).append(float(v))

    def avg(self, key: str) -> float:
        return float(np.mean(self.values[key]))

    def max(self, key: str) -> float:
        return float(np.max(self.values[key]))

    def min(self, key: str) -> float:
        return float(np.min(self.values[key]))

    def std(self, key: str) -> float:
        return float(np.std(self.values[key], ddof=1)) if self.trials > 1 else 0.0

    def ci95(self, key: str) -> float:
        """Half-width of the 95% t-confidence interval on the mean
        (0 for fewer than two trials)."""
        n = len(self.values[key])
        if n < 2:
            return 0.0
        from scipy import stats

        sem = self.std(key) / np.sqrt(n)
        return float(stats.t.ppf(0.975, n - 1) * sem)

    @property
    def trials(self) -> int:
        return len(next(iter(self.values.values()))) if self.values else 0


@dataclass
class SweepResult:
    """One figure/table worth of data: a sweep over x with per-point
    trial series plus derived columns."""

    figure: str
    description: str
    x_label: str
    series: List[TrialSeries] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def column(self, key: str, agg: str = "avg") -> List[float]:
        fn = {"avg": TrialSeries.avg, "max": TrialSeries.max, "min": TrialSeries.min}[agg]
        return [fn(s, key) for s in self.series]

    @property
    def xs(self) -> List[float]:
        return [s.x for s in self.series]


def lamb_trials(
    mesh: Mesh,
    num_faults: int,
    trials: int,
    seed: int = 0,
    tag: int = 0,
    orderings: Optional[KRoundOrdering] = None,
    method: str = "bipartite",
    extra: Optional[Callable[[LambResult], Mapping[str, float]]] = None,
) -> TrialSeries:
    """Run ``trials`` lamb computations with fresh random node faults.

    Records per trial: ``lambs`` (|Λ|), ``num_ses``, ``num_des``,
    ``seconds`` (total pipeline wall clock), plus anything returned by
    ``extra(result)``.
    """
    if orderings is None:
        orderings = repeated(ascending(mesh.d), 2)
    series = TrialSeries(x=num_faults)
    for t in range(trials):
        rng = np.random.default_rng((seed, tag, t))
        faults = random_node_faults(mesh, num_faults, rng)
        result = find_lamb_set(faults, orderings, method=method)
        measurements: Dict[str, float] = {
            "lambs": result.size,
            "num_ses": result.num_ses,
            "num_des": result.num_des,
            "seconds": result.timings["total"],
        }
        if extra is not None:
            measurements.update(extra(result))
        series.add(**measurements)
    return series
