"""Seeded multi-trial experiment runner.

All Section 8 experiments share one shape: fix a mesh and a fault
count, repeat ``trials`` times with fresh random faults, record
statistics of the lamb run.  The paper uses 1000 trials per point; the
default here is smaller so the full suite regenerates in minutes —
set the ``REPRO_TRIALS`` environment variable (or pass ``trials=``)
to restore the paper's counts.

Determinism: trial ``t`` of a sweep point draws faults from
``numpy.random.default_rng((seed, tag, t))``, so every number in
EXPERIMENTS.md is exactly reproducible.  Because each trial is seeded
independently, the trials are embarrassingly parallel: pass ``jobs=``
(or set ``REPRO_JOBS``, or run ``repro experiments --jobs N``) to fan
them across a process pool via
:class:`repro.experiments.parallel.TrialEngine` with bit-identical
results for every deterministic measurement key.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np
from scipy import stats as _scipy_stats

from ..core.lamb import LambResult, find_lamb_set
from ..mesh.faults import random_node_faults
from ..mesh.geometry import Mesh
from ..routing.ordering import KRoundOrdering, ascending, repeated
from .parallel import is_picklable, resolve_engine, worker_memo

__all__ = ["TrialSeries", "SweepResult", "default_trials", "lamb_trials"]


def default_trials(fallback: int) -> int:
    """Trial count: ``REPRO_TRIALS`` env var if set, else ``fallback``."""
    raw = os.environ.get("REPRO_TRIALS", "")
    if raw:
        n = int(raw)
        if n < 1:
            raise ValueError("REPRO_TRIALS must be positive")
        return n
    return fallback


@dataclass
class TrialSeries:
    """Per-trial measurements at one sweep point."""

    x: float
    values: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, **measurements: float) -> None:
        for k, v in measurements.items():
            self.values.setdefault(k, []).append(float(v))

    def avg(self, key: str) -> float:
        return float(np.mean(self.values[key]))

    def max(self, key: str) -> float:
        return float(np.max(self.values[key]))

    def min(self, key: str) -> float:
        return float(np.min(self.values[key]))

    def std(self, key: str) -> float:
        return float(np.std(self.values[key], ddof=1)) if self.trials > 1 else 0.0

    def ci95(self, key: str) -> float:
        """Half-width of the 95% t-confidence interval on the mean
        (0 for fewer than two trials)."""
        n = len(self.values[key])
        if n < 2:
            return 0.0
        sem = self.std(key) / np.sqrt(n)
        return float(_scipy_stats.t.ppf(0.975, n - 1) * sem)

    @property
    def trials(self) -> int:
        return len(next(iter(self.values.values()))) if self.values else 0


#: Aggregations accepted by :meth:`SweepResult.column`.
_AGGS: Dict[str, Callable[[TrialSeries, str], float]] = {
    "avg": TrialSeries.avg,
    "max": TrialSeries.max,
    "min": TrialSeries.min,
    "std": TrialSeries.std,
    "ci95": TrialSeries.ci95,
}


@dataclass
class SweepResult:
    """One figure/table worth of data: a sweep over x with per-point
    trial series plus derived columns."""

    figure: str
    description: str
    x_label: str
    series: List[TrialSeries] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def column(self, key: str, agg: str = "avg") -> List[float]:
        fn = _AGGS.get(agg)
        if fn is None:
            raise ValueError(
                f"unknown agg {agg!r}; expected one of {sorted(_AGGS)}"
            )
        return [fn(s, key) for s in self.series]

    @property
    def xs(self) -> List[float]:
        return [s.x for s in self.series]


# ----------------------------------------------------------------------
# The lamb-trial kernel (shared verbatim by the serial and parallel
# paths, so ``jobs`` can never change what a trial computes).
# ----------------------------------------------------------------------
def _one_lamb_trial(
    mesh: Mesh,
    num_faults: int,
    seed: int,
    tag: int,
    t: int,
    orderings: KRoundOrdering,
    method: str,
    extra: Optional[Callable[[LambResult], Mapping[str, float]]],
) -> Dict[str, float]:
    """Trial ``t`` of a sweep point: draw faults from
    ``default_rng((seed, tag, t))``, run the lamb pipeline, and return
    the measurement row."""
    rng = np.random.default_rng((seed, tag, t))
    faults = random_node_faults(mesh, num_faults, rng)
    result = find_lamb_set(faults, orderings, method=method)
    measurements: Dict[str, float] = {
        "lambs": result.size,
        "num_ses": result.num_ses,
        "num_des": result.num_des,
        "seconds": result.timings["total"],
    }
    if extra is not None:
        measurements.update(extra(result))
    return measurements


def _lamb_trial_worker(payload: Dict[str, Any], t: int) -> Dict[str, float]:
    """Process-pool worker: one lamb trial, with per-worker reuse of
    the ``Mesh`` and ``KRoundOrdering`` objects across chunks."""
    mesh = payload["mesh"]
    mesh = worker_memo(
        ("mesh", type(mesh).__name__, mesh.widths), lambda: mesh
    )
    orderings = payload["orderings"]
    orderings = worker_memo(
        ("orderings", tuple(o.perm for o in orderings)), lambda: orderings
    )
    return _one_lamb_trial(
        mesh,
        payload["num_faults"],
        payload["seed"],
        payload["tag"],
        t,
        orderings,
        payload["method"],
        payload["extra"],
    )


def lamb_trials(
    mesh: Mesh,
    num_faults: int,
    trials: int,
    seed: int = 0,
    tag: int = 0,
    orderings: Optional[KRoundOrdering] = None,
    method: str = "bipartite",
    extra: Optional[Callable[[LambResult], Mapping[str, float]]] = None,
    jobs: Optional[int] = None,
) -> TrialSeries:
    """Run ``trials`` lamb computations with fresh random node faults.

    Records per trial: ``lambs`` (|Λ|), ``num_ses``, ``num_des``,
    ``seconds`` (total pipeline wall clock), plus anything returned by
    ``extra(result)``.

    ``jobs`` fans the trials over a process pool (``None`` uses the
    ambient :func:`repro.experiments.parallel.get_default_engine`,
    which honours ``REPRO_JOBS``).  Trial ``t`` still seeds from
    ``(seed, tag, t)``, and rows are merged in trial order, so every
    deterministic key is bit-identical to the serial path; only the
    wall-clock ``seconds`` key varies run to run (as it already does
    serially).  Non-picklable ``extra`` callables fall back to the
    serial path.
    """
    if orderings is None:
        orderings = repeated(ascending(mesh.d), 2)
    engine, owned = resolve_engine(jobs)
    try:
        parallel_ok = engine.jobs > 1 and trials > 1 and (
            not engine.requires_pickling or is_picklable(extra)
        )
        if parallel_ok:
            payload: Dict[str, Any] = {
                "mesh": mesh,
                "num_faults": num_faults,
                "seed": seed,
                "tag": tag,
                "orderings": orderings,
                "method": method,
                "extra": extra,
            }
            rows = engine.run_trials(_lamb_trial_worker, trials, payload)
        else:
            rows = [
                _one_lamb_trial(
                    mesh, num_faults, seed, tag, t, orderings, method, extra
                )
                for t in range(trials)
            ]
    finally:
        if owned:
            engine.close()
    series = TrialSeries(x=num_faults)
    for row in rows:
        series.add(**row)
    return series
