"""Fault-geometry experiments (extension).

At a fixed fault *count*, does the geometry of the faults change the
lamb cost?  The paper studies uniform random faults only; this
experiment compares uniform dust, Eden-growth clusters, and
partial-plane (midplane-loss) failures on the same meshes.

Intuition to test: clustered faults behave like one solid region —
they block the same lines many times over, so they should cost *fewer*
lambs per fault than scattered dust; a heavily damaged plane behaves
like the Section 3 pathology and should cost dramatically more.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.lamb import find_lamb_set
from ..mesh.faults import random_node_faults
from ..mesh.geometry import Mesh
from ..mesh.patterns import clustered_faults, partial_plane_faults
from ..routing.ordering import ascending, repeated
from .harness import SweepResult, TrialSeries, default_trials

__all__ = ["fault_geometry_sweep"]


def fault_geometry_sweep(
    mesh: Mesh,
    fault_counts: Sequence[int],
    trials: Optional[int] = None,
    cluster_size: int = 8,
    seed: int = 0,
) -> SweepResult:
    """Average lamb counts for uniform vs clustered vs planar faults.

    ``lambs_plane`` uses faults concentrated on the middle hyperplane
    of the last dimension (fraction chosen to hit the fault count).
    """
    trials = default_trials(10) if trials is None else trials
    orderings = repeated(ascending(mesh.d), 2)
    plane_dim = mesh.d - 1
    plane_index = mesh.widths[plane_dim] // 2
    plane_size = mesh.num_nodes // mesh.widths[plane_dim]
    out = SweepResult(
        figure="fault-geometry",
        description=f"lambs vs fault geometry, {mesh}",
        x_label="faults",
        meta={
            "mesh": mesh.widths,
            "trials": trials,
            "cluster_size": cluster_size,
        },
    )
    for i, f in enumerate(fault_counts):
        series = TrialSeries(x=f)
        for t in range(trials):
            rng = np.random.default_rng((seed, 9400 + i, t))
            uniform = random_node_faults(mesh, f, rng)
            clustered = clustered_faults(mesh, f, cluster_size, rng)
            series.add(
                lambs_uniform=find_lamb_set(uniform, orderings).size,
                lambs_clustered=find_lamb_set(clustered, orderings).size,
            )
            if f <= plane_size:
                planar = partial_plane_faults(
                    mesh, plane_dim, plane_index, f / plane_size, rng
                )
                series.add(lambs_plane=find_lamb_set(planar, orderings).size)
        out.series.append(series)
    return out
