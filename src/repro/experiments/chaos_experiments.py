"""Chaos experiments: graceful degradation under live fault arrival.

The paper reconfigures for a *static* fault set; the chaos engine
replays the full deployment loop — faults arriving mid-flight,
checkpoint/rollback epochs, retries with backoff, quarantine as the
last rung of the degradation ladder.  These sweeps measure what that
robustness costs:

- :func:`fault_arrival_sweep` — delivered / retried-then-delivered /
  aborted counts and latency (with and without retry time) as the
  number of mid-flight fault events grows;
- :func:`reconfiguration_latency_sweep` — wall-clock seconds per
  rollback epoch (the lamb pipeline re-run) vs. cumulative fault
  count, i.e. how fast the machine comes back after each event.

Each trial is a fully seeded, self-contained
:func:`repro.wormhole.seeded_chaos_run`, so both sweeps fan their
trials over the :class:`repro.experiments.parallel.TrialEngine`
(``jobs=`` / ``REPRO_JOBS``) with bit-identical counts and cycle
statistics; only the wall-clock ``epoch_seconds`` keys vary run to
run.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..wormhole.chaos import seeded_chaos_run
from .harness import SweepResult, TrialSeries, default_trials
from .parallel import resolve_engine

__all__ = ["fault_arrival_sweep", "reconfiguration_latency_sweep"]


def _fate_trial(payload: Dict[str, Any], t: int) -> Dict[str, float]:
    """One fault-arrival trial (runs identically in-process or in a
    pool worker)."""
    events = payload["events"]
    report = seeded_chaos_run(
        widths=payload["widths"],
        initial_faults=payload["initial_faults"],
        num_messages=payload["num_messages"],
        num_events=events,
        seed=(payload["seed"] * 1_000_003 + 7919 * events + t),
        num_flits=payload["num_flits"],
        inject_window=payload["inject_window"],
        cycle_span=payload["cycle_span"],
        max_cycles=payload["max_cycles"],
    )
    s = report.stats
    return {
        "delivered": s.delivered,
        "retried_delivered": s.retried_delivered,
        "aborted": s.aborted,
        "epochs": report.num_epochs,
        "avg_latency": s.avg_latency,
        "avg_total_latency": s.avg_total_latency,
        "accounted": 1.0 if report.fully_accounted else 0.0,
    }


def fault_arrival_sweep(
    event_counts: Sequence[int] = (0, 1, 2, 4, 6),
    trials: int = 0,
    seed: int = 0,
    widths: Tuple[int, ...] = (8, 8),
    initial_faults: int = 2,
    num_messages: int = 120,
    num_flits: int = 4,
    inject_window: int = 80,
    cycle_span: Tuple[int, int] = (20, 260),
    max_cycles: int = 100_000,
    jobs: Optional[int] = None,
) -> SweepResult:
    """Message-fate accounting vs. live-fault arrival count.

    Every trial is a fully seeded :func:`seeded_chaos_run`; the series
    record, per injected-message population: ``delivered``,
    ``retried_delivered``, ``aborted``, ``epochs``, the plain
    ``avg_latency`` (final attempt) and ``avg_total_latency``
    (including abort/backoff/retry time), and ``accounted`` (1.0 iff
    no message was silently lost — must pin at 1.0).
    """
    trials = trials or default_trials(5)
    out = SweepResult(
        figure="chaos-fault-arrival",
        description=f"message fate vs. mid-flight fault events, "
        f"{'x'.join(str(w) for w in widths)} mesh, "
        f"{initial_faults} initial faults, {num_messages} messages",
        x_label="fault events",
        meta={
            "trials": trials,
            "num_flits": num_flits,
            "inject_window": inject_window,
        },
    )
    engine, owned = resolve_engine(jobs)
    try:
        for events in event_counts:
            payload = {
                "events": events,
                "widths": tuple(widths),
                "initial_faults": initial_faults,
                "num_messages": num_messages,
                "seed": seed,
                "num_flits": num_flits,
                "inject_window": inject_window,
                "cycle_span": tuple(cycle_span),
                "max_cycles": max_cycles,
            }
            series = TrialSeries(x=events)
            for row in engine.run_trials(_fate_trial, trials, payload):
                series.add(**row)
            out.series.append(series)
    finally:
        if owned:
            engine.close()
    return out


def _reconfig_trial(payload: Dict[str, Any], t: int) -> Dict[str, float]:
    """One reconfiguration-latency trial."""
    events = payload["events"]
    report = seeded_chaos_run(
        widths=payload["widths"],
        initial_faults=payload["initial_faults"],
        num_messages=payload["num_messages"],
        num_events=events,
        seed=(payload["seed"] * 1_000_003 + 104_729 * events + t),
        cycle_span=payload["cycle_span"],
    )
    secs = [e.result.timings["total"] for e in report.epochs]
    return {
        "epoch_seconds": sum(secs) / len(secs),
        "worst_epoch_seconds": max(secs),
        "final_lambs": report.epochs[-1].num_lambs,
        "degraded_epochs": sum(1 for e in report.epochs if e.degraded),
    }


def reconfiguration_latency_sweep(
    event_counts: Sequence[int] = (1, 2, 4, 6),
    trials: int = 0,
    seed: int = 0,
    widths: Tuple[int, ...] = (8, 8),
    initial_faults: int = 2,
    num_messages: int = 60,
    cycle_span: Tuple[int, int] = (20, 260),
    jobs: Optional[int] = None,
) -> SweepResult:
    """Rollback-epoch latency vs. fault arrival count.

    Records the mean and worst wall-clock seconds of the lamb pipeline
    per reconfiguration epoch (``epoch_seconds``), the final lamb
    count, and how many epochs degraded (escalated rounds or
    quarantine).
    """
    trials = trials or default_trials(5)
    out = SweepResult(
        figure="chaos-reconfig-latency",
        description=f"rollback-epoch cost vs. fault events, "
        f"{'x'.join(str(w) for w in widths)} mesh",
        x_label="fault events",
        meta={"trials": trials},
    )
    engine, owned = resolve_engine(jobs)
    try:
        for events in event_counts:
            payload = {
                "events": events,
                "widths": tuple(widths),
                "initial_faults": initial_faults,
                "num_messages": num_messages,
                "seed": seed,
                "cycle_span": tuple(cycle_span),
            }
            series = TrialSeries(x=events)
            for row in engine.run_trials(_reconfig_trial, trials, payload):
                series.add(**row)
            out.series.append(series)
    finally:
        if owned:
            engine.close()
    return out
