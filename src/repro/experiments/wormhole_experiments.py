"""System-level wormhole experiments.

Beyond the paper's combinatorial simulations, these experiments
exercise the *machine* the lamb sets are for:

- :func:`injection_rate_sweep` — the classic latency/throughput
  saturation curve of the reconfigured network under open-loop
  uniform traffic, for any fault set + lamb set;
- :func:`lambs_must_route` — an ablation certifying the core design
  point that lambs keep *routing*: if the lamb nodes were inactivated
  outright (treated as faults), the lamb computation cascades — more
  good nodes must be sacrificed, sometimes repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.lamb import LambResult, find_lamb_set
from ..mesh.faults import FaultSet
from ..routing.ordering import KRoundOrdering
from ..wormhole.simulator import WormholeSimulator
from .harness import SweepResult, TrialSeries
from .parallel import resolve_engine

__all__ = ["injection_rate_sweep", "lambs_must_route", "CascadeResult"]


def _rate_point(payload: Dict[str, Any], t: int) -> Optional[Dict[str, float]]:
    """Simulate one offered-load point (``t`` indexes into the rate
    list); self-contained and seeded, so points parallelize."""
    rate = payload["rates"][t]
    faults: FaultSet = payload["faults"]
    survivors = payload["survivors"]
    seed = payload["seed"]
    rng = np.random.default_rng((seed, int(rate * 1e6)))
    sim = WormholeSimulator(faults, payload["orderings"], seed=seed,
                            engine=payload["sim_engine"])
    injected = 0
    for cycle in range(payload["window"]):
        count = rng.poisson(rate)
        for _ in range(count):
            i = int(rng.integers(len(survivors)))
            j = int(rng.integers(len(survivors) - 1))
            if j >= i:
                j += 1
            sim.send(survivors[i], survivors[j], payload["num_flits"], cycle)
            injected += 1
    if injected == 0:
        return None
    stats = sim.run(max_cycles=payload["max_cycles"])
    return {
        "rate": rate,
        "avg_latency": stats.avg_latency,
        "p95_latency": stats.p95_latency,
        "throughput": stats.throughput_flits_per_cycle,
        "delivered": stats.delivered,
    }


def injection_rate_sweep(
    result: LambResult,
    rates: Sequence[float] = (0.01, 0.02, 0.04, 0.08, 0.16),
    window: int = 300,
    num_flits: int = 8,
    seed: int = 0,
    max_cycles: int = 2_000_000,
    jobs: Optional[int] = None,
    sim_engine: Optional[str] = None,
) -> SweepResult:
    """Latency vs offered load on the reconfigured machine.

    ``rates`` are offered loads in messages per cycle (network-wide);
    message arrivals are Bernoulli per cycle over a ``window``-cycle
    injection phase, after which the network drains.  Each rate point
    is an independent seeded simulation, so the sweep fans the points
    over the :class:`repro.experiments.parallel.TrialEngine`
    (``jobs=`` / ``REPRO_JOBS``).

    ``sim_engine`` picks the step engine for every point (all engines
    are cycle-exact, so results are identical; ``None`` resolves via
    ``REPRO_SIM_ENGINE`` in each worker).  The choice rides the
    pickled payload, so process-pool workers honour it too.
    """
    mesh = result.mesh
    survivors = [v for v in mesh.nodes() if result.is_survivor(v)]
    if len(survivors) < 2:
        raise ValueError("need at least two survivors")
    out = SweepResult(
        figure="saturation",
        description=f"latency vs offered load, {mesh}, "
        f"{result.faults.f} faults, {result.size} lambs",
        x_label="offered load (msgs/cycle)",
        meta={"window": window, "num_flits": num_flits},
    )
    payload: Dict[str, Any] = {
        "rates": list(rates),
        "faults": result.faults,
        "orderings": result.orderings,
        "survivors": survivors,
        "seed": seed,
        "window": window,
        "num_flits": num_flits,
        "max_cycles": max_cycles,
        "sim_engine": sim_engine,
    }
    engine, owned = resolve_engine(jobs)
    try:
        rows = engine.run_trials(_rate_point, len(payload["rates"]), payload)
    finally:
        if owned:
            engine.close()
    for row in rows:
        if row is None:
            continue
        series = TrialSeries(x=row["rate"])
        series.add(
            avg_latency=row["avg_latency"],
            p95_latency=row["p95_latency"],
            throughput=row["throughput"],
            delivered=row["delivered"],
        )
        out.series.append(series)
    return out


@dataclass
class CascadeResult:
    """Outcome of the lambs-must-route ablation.

    ``rounds`` lists, per cascade step, the number of *additional*
    good nodes sacrificed when the previous step's lambs are
    inactivated (turned into faults) instead of kept as routers.
    """

    base_lambs: int
    rounds: List[int]
    total_sacrificed: int

    @property
    def cascade_factor(self) -> float:
        """Total sacrificed nodes relative to the lamb approach."""
        if self.base_lambs == 0:
            return 1.0
        return self.total_sacrificed / self.base_lambs


def lambs_must_route(
    faults: FaultSet,
    orderings: KRoundOrdering,
    max_rounds: int = 10,
) -> CascadeResult:
    """What if lambs could not route?

    Inactivating a lamb (removing it from the network entirely) can
    break paths other survivors depended on, forcing further
    sacrifices.  This iterates lamb computation with each step's lambs
    converted to faults until a fixed point, reporting the cascade.
    """
    base = find_lamb_set(faults, orderings)
    rounds: List[int] = []
    current = faults
    lambs = base.lambs
    total = len(lambs)
    rounds.append(len(lambs))
    for _ in range(max_rounds):
        if not lambs:
            break
        current = current.with_nodes_as_faults(lambs)
        step = find_lamb_set(current, orderings)
        lambs = step.lambs
        if lambs:
            rounds.append(len(lambs))
            total += len(lambs)
    return CascadeResult(
        base_lambs=base.size, rounds=rounds, total_sacrificed=total
    )
