"""Parallel trial engine: fan embarrassingly parallel seeded trials
across a process pool.

Every Section-8 sweep repeats an independent seeded computation
``trials`` times — trial ``t`` draws all of its randomness from
``default_rng((seed, tag, t))`` (or an equivalent per-trial seed), so
the trials are *embarrassingly parallel* and can be fanned across a
:class:`concurrent.futures.ProcessPoolExecutor` with bit-identical
results: the engine only changes *where* trial ``t`` runs, never what
it computes, and results are merged back in trial order.

Layering
--------
- :class:`TrialEngine` owns the pool policy (worker count, chunking)
  and exposes :meth:`TrialEngine.run_trials`, which maps a picklable
  module-level worker over ``range(trials)`` in chunks (chunking
  amortizes pickling of the per-sweep payload).
- Workers reuse heavyweight per-sweep objects (``Mesh``,
  ``KRoundOrdering``) across chunks via a per-process memo cache —
  see :func:`worker_memo`.
- ``jobs=1`` (the default unless ``REPRO_JOBS`` is set) runs the
  trials inline with *zero* behavioural difference from the
  historical serial loops; the serial path stays the reference.

Worker count resolution order: explicit ``jobs=`` argument, then the
``REPRO_JOBS`` environment variable, then ``os.cpu_count()``.

Determinism note: measured *wall-clock seconds* (e.g. the ``seconds``
key of :func:`repro.experiments.lamb_trials`) are machine timings and
vary run to run even serially; every other recorded key is a pure
function of ``(seed, tag, t)`` and is bit-identical for any job count.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import get_registry

__all__ = [
    "TrialEngine",
    "resolve_jobs",
    "get_default_engine",
    "set_default_jobs",
    "engine_jobs",
    "worker_memo",
    "is_picklable",
]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit ``jobs``, else ``REPRO_JOBS``,
    else ``os.cpu_count()``.  ``0`` (explicit or in the environment)
    means "auto": all CPUs."""
    if jobs is not None:
        n = int(jobs)
        if n < 0:
            raise ValueError("jobs must be >= 0 (0 = all CPUs)")
        if n > 0:
            return n
        return os.cpu_count() or 1
    raw = os.environ.get("REPRO_JOBS", "")
    if raw:
        n = int(raw)
        if n < 0:
            raise ValueError("REPRO_JOBS must be >= 0 (0 = all CPUs)")
        return n if n > 0 else (os.cpu_count() or 1)
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Per-worker object reuse
# ----------------------------------------------------------------------
_WORKER_MEMO: Dict[Tuple, Any] = {}


def worker_memo(key: Tuple, build: Callable[[], Any]) -> Any:
    """Process-local memo cache for heavyweight per-sweep objects.

    Worker functions call this to build a ``Mesh`` / ``KRoundOrdering``
    / fault index once per worker process and reuse it across chunks
    of the same sweep (the pool keeps workers alive for the engine's
    lifetime, so a 1000-trial sweep builds each mesh once per worker,
    not once per trial)."""
    try:
        return _WORKER_MEMO[key]
    except KeyError:
        value = build()
        _WORKER_MEMO[key] = value
        return value


def is_picklable(obj: Any) -> bool:
    """Whether ``obj`` survives a full pickle *round trip* (used to
    gate the parallel path for user-supplied callbacks).

    Both directions matter: an object can serialize fine on the
    submitting side yet blow up in ``loads`` inside the worker process
    (e.g. a ``__reduce__`` whose reconstructor fails, or state that
    ``__setstate__`` rejects) — historically that surfaced as an
    opaque pool crash mid-sweep instead of a clean serial fallback.

    Only pickling-shaped failures mean "not picklable"; anything else
    (say, a ``KeyboardInterrupt`` or a broken ``__getstate__`` raising
    an unrelated error type) propagates rather than being swallowed.
    """
    if obj is None:
        return True
    try:
        pickle.loads(pickle.dumps(obj))
        return True
    except (pickle.PickleError, TypeError, AttributeError, EOFError):
        # PicklingError/UnpicklingError, unpicklable types (TypeError),
        # missing module-level names (AttributeError), truncated or
        # self-inconsistent streams (EOFError).
        return False


def _run_chunk(
    worker: Callable[[Dict[str, Any], int], Any],
    payload: Dict[str, Any],
    ts: Sequence[int],
) -> List[Any]:
    """Executed in a worker process: run ``worker(payload, t)`` for
    every trial index in the chunk."""
    return [worker(payload, t) for t in ts]


def _run_chunk_timed(
    worker: Callable[[Dict[str, Any], int], Any],
    payload: Dict[str, Any],
    ts: Sequence[int],
) -> Tuple[float, List[Any]]:
    """Like :func:`_run_chunk`, but also measures the chunk's wall
    time *inside* the worker (so pool queueing and pickling are
    excluded).  The parent records it into the ambient telemetry
    registry — aggregates only (histograms/counters commute), never
    events, so seeded runs stay deterministic under any job count."""
    t0 = time.perf_counter()
    out = [worker(payload, t) for t in ts]
    return time.perf_counter() - t0, out


class TrialEngine:
    """Fans seeded trials across a process pool, chunked to amortize
    pickling, merging results back in trial order.

    Parameters
    ----------
    jobs:
        Worker count; default from ``REPRO_JOBS`` then
        ``os.cpu_count()``.  ``jobs=1`` never spawns a pool.
    chunks_per_worker:
        Target number of chunks handed to each worker (larger values
        smooth load imbalance between slow and fast trials at the cost
        of more pickling round-trips).
    """

    def __init__(self, jobs: Optional[int] = None, chunks_per_worker: int = 4):
        self.jobs = resolve_jobs(jobs)
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        self.chunks_per_worker = chunks_per_worker
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "TrialEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def chunk_indices(self, trials: int) -> List[List[int]]:
        """Split ``range(trials)`` into contiguous chunks sized to give
        each worker ~``chunks_per_worker`` chunks."""
        if trials <= 0:
            return []
        target = self.jobs * self.chunks_per_worker
        size = max(1, -(-trials // target))  # ceil division
        return [
            list(range(lo, min(lo + size, trials)))
            for lo in range(0, trials, size)
        ]

    def run_trials(
        self,
        worker: Callable[[Dict[str, Any], int], Any],
        trials: int,
        payload: Dict[str, Any],
    ) -> List[Any]:
        """Run ``worker(payload, t)`` for ``t`` in ``range(trials)``.

        ``worker`` must be a picklable module-level function taking
        ``(payload, t)`` and returning a picklable per-trial result.
        Results are returned in trial order regardless of which worker
        ran which chunk, so any order-dependent merge downstream (e.g.
        appending into :class:`TrialSeries`) is bit-identical to the
        serial loop.
        """
        if trials <= 0:
            return []
        reg = get_registry()
        if self.jobs == 1 or trials == 1:
            seconds, out = _run_chunk_timed(
                worker, payload, list(range(trials))
            )
            reg.observe("trial_chunk_seconds", seconds)
            reg.inc("trial_chunks_total")
            reg.inc("trials_total", trials)
            return out
        pool = self._ensure_pool()
        chunks = self.chunk_indices(trials)
        futures = [
            pool.submit(_run_chunk_timed, worker, payload, ts)
            for ts in chunks
        ]
        out: List[Any] = []
        for fut in futures:  # submission order == trial order
            seconds, results = fut.result()
            reg.observe("trial_chunk_seconds", seconds)
            reg.inc("trial_chunks_total")
            reg.inc("trials_total", len(results))
            out.extend(results)
        return out

    def map_ordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Map a picklable function over heterogeneous work items (one
        item per task, no chunking), results in item order."""
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]


# ----------------------------------------------------------------------
# Ambient default engine
# ----------------------------------------------------------------------
# The library helpers (lamb_trials, the chaos sweeps, ...) consult this
# ambient engine when no explicit ``jobs=`` is passed.  It defaults to
# serial unless REPRO_JOBS is set, so tests and small scripts never pay
# pool startup; ``repro experiments --jobs N`` installs a wider one.
_default_engine: Optional[TrialEngine] = None
_default_explicit: bool = False


def get_default_engine() -> TrialEngine:
    """The ambient engine.

    If one was installed explicitly (:func:`set_default_jobs` /
    :func:`engine_jobs`), that engine is returned; otherwise the
    engine tracks ``REPRO_JOBS`` (serial when unset, so library calls
    without an explicit ``jobs=`` never pay pool startup)."""
    global _default_engine
    if _default_explicit and _default_engine is not None:
        return _default_engine
    want = int(os.environ.get("REPRO_JOBS", "0") or 0) or 1
    if _default_engine is None or _default_engine.jobs != want:
        if _default_engine is not None:
            _default_engine.close()
        _default_engine = TrialEngine(jobs=want)
    return _default_engine


def set_default_jobs(jobs: Optional[int]) -> TrialEngine:
    """Install an ambient engine with ``jobs`` workers (``None`` =
    resolve from ``REPRO_JOBS`` / CPU count) and return it."""
    global _default_engine, _default_explicit
    if _default_engine is not None:
        _default_engine.close()
    _default_engine = TrialEngine(jobs=resolve_jobs(jobs))
    _default_explicit = True
    return _default_engine


@contextmanager
def engine_jobs(jobs: Optional[int]):
    """Temporarily install an ambient engine with ``jobs`` workers."""
    global _default_engine, _default_explicit
    prev, prev_explicit = _default_engine, _default_explicit
    engine = TrialEngine(jobs=resolve_jobs(jobs))
    _default_engine, _default_explicit = engine, True
    try:
        yield engine
    finally:
        _default_engine, _default_explicit = prev, prev_explicit
        engine.close()


def resolve_engine(jobs: Optional[int]) -> Tuple[TrialEngine, bool]:
    """Engine for a helper call: explicit ``jobs`` spins a private
    engine (caller-scoped, returned with ``owned=True``); ``None``
    borrows the ambient engine."""
    if jobs is None:
        return get_default_engine(), False
    return TrialEngine(jobs=jobs), True
