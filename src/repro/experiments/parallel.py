"""Parallel trial engine: fan embarrassingly parallel seeded trials
across a process (or thread) pool.

Every Section-8 sweep repeats an independent seeded computation
``trials`` times — trial ``t`` draws all of its randomness from
``default_rng((seed, tag, t))`` (or an equivalent per-trial seed), so
the trials are *embarrassingly parallel* and can be fanned across a
:class:`concurrent.futures.ProcessPoolExecutor` (or
:class:`~concurrent.futures.ThreadPoolExecutor`) with bit-identical
results: the engine only changes *where* trial ``t`` runs, never what
it computes, and results are merged back in trial order.

Layering
--------
- :class:`TrialEngine` owns the pool policy (worker count, executor
  backend, chunking) and exposes :meth:`TrialEngine.run_trials`, which
  maps a picklable module-level worker over ``range(trials)`` in
  chunks (chunking amortizes pickling of the per-sweep payload).
- Workers reuse heavyweight per-sweep objects (``Mesh``,
  ``KRoundOrdering``) across chunks via a per-process memo cache —
  see :func:`worker_memo`.
- ``jobs=1`` (the default unless ``REPRO_JOBS`` is set) runs the
  trials inline with *zero* behavioural difference from the
  historical serial loops; the serial path stays the reference.

Executor backends
-----------------
``executor="process"`` (the default) sidesteps the GIL and is the
right choice for the CPU-bound lamb/chaos sweeps; it requires
picklable workers and payloads.  ``executor="thread"`` shares the
address space — no pickling constraint, near-zero startup cost — and
suits workloads that release the GIL or need unpicklable callbacks.
Resolution order: explicit ``executor=`` argument, then the
``REPRO_EXECUTOR`` environment variable, then ``"process"``.

Worker count resolution order: explicit ``jobs=`` argument, then the
``REPRO_JOBS`` environment variable, then :func:`available_cpu_count`
(affinity-aware: in a cgroup-limited CI container this is the usable
core count, not the host's).

Crash recovery
--------------
A killed or wedged worker process must never silently drop its chunk.
When the process pool breaks (:class:`BrokenExecutor`) or a chunk
exceeds ``chunk_timeout``, the engine tears the pool down, builds a
fresh one, and resubmits every unfinished chunk — bounded by
``max_crash_retries`` pool rebuilds per :meth:`~TrialEngine.run_trials`
call, after which a typed :class:`WorkerCrashError` is raised naming
the unfinished chunks.  :attr:`TrialEngine.last_run` carries
``SimStats.all_accounted``-style accounting (trials expected vs
completed, chunk retries, pool rebuilds) so campaign layers can assert
nothing was lost or double-counted.

Determinism note: measured *wall-clock seconds* (e.g. the ``seconds``
key of :func:`repro.experiments.lamb_trials`) are machine timings and
vary run to run even serially; every other recorded key is a pure
function of ``(seed, tag, t)`` and is bit-identical for any job count
and either executor backend.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import get_registry

__all__ = [
    "TrialEngine",
    "WorkerCrashError",
    "RunAccounting",
    "EXECUTORS",
    "available_cpu_count",
    "resolve_jobs",
    "resolve_executor",
    "get_default_engine",
    "set_default_jobs",
    "engine_jobs",
    "worker_memo",
    "is_picklable",
]

#: Accepted executor backends.
EXECUTORS: Tuple[str, ...] = ("thread", "process")


class WorkerCrashError(RuntimeError):
    """A trial chunk could not be completed: the worker pool broke (or
    timed out) more than ``max_crash_retries`` times.

    ``pending_chunks`` names the trial-index chunks still unfinished
    when the engine gave up — nothing was silently dropped, the caller
    knows exactly which trials are missing.
    """

    def __init__(self, message: str, pending_chunks: Sequence[Sequence[int]]):
        super().__init__(message)
        self.pending_chunks: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(ts) for ts in pending_chunks
        )


@dataclass
class RunAccounting:
    """No-silent-loss bookkeeping for one :meth:`TrialEngine.run_trials`
    call (the campaign-level analogue of ``SimStats.all_accounted``)."""

    trials_expected: int = 0
    trials_completed: int = 0
    chunks_total: int = 0
    chunk_retries: int = 0
    pool_rebuilds: int = 0
    executor: str = "process"
    jobs: int = 1

    @property
    def all_accounted(self) -> bool:
        """Every expected trial produced exactly one result."""
        return self.trials_completed == self.trials_expected

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trials_expected": self.trials_expected,
            "trials_completed": self.trials_completed,
            "chunks_total": self.chunks_total,
            "chunk_retries": self.chunk_retries,
            "pool_rebuilds": self.pool_rebuilds,
            "all_accounted": self.all_accounted,
        }


def available_cpu_count() -> int:
    """CPUs *this process* may actually use.

    ``os.process_cpu_count()`` (3.13+) respects both cgroup CPU
    affinity and ``PYTHON_CPU_COUNT``; older interpreters fall back to
    the scheduler affinity mask, then to bare ``os.cpu_count()``.  In
    a cgroup-limited CI container the affinity-aware count is the
    honest worker-pool size — ``os.cpu_count()`` reports the host's
    cores and oversubscribes the pool.
    """
    probe = getattr(os, "process_cpu_count", None)
    if probe is not None:
        n = probe()
        if n:
            return int(n)
    if hasattr(os, "sched_getaffinity"):
        try:
            n = len(os.sched_getaffinity(0))
            if n:
                return n
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit ``jobs``, else ``REPRO_JOBS``,
    else :func:`available_cpu_count`.  ``0`` (explicit or in the
    environment) means "auto": all *available* CPUs."""
    if jobs is not None:
        n = int(jobs)
        if n < 0:
            raise ValueError("jobs must be >= 0 (0 = all CPUs)")
        if n > 0:
            return n
        return available_cpu_count()
    raw = os.environ.get("REPRO_JOBS", "")
    if raw:
        n = int(raw)
        if n < 0:
            raise ValueError("REPRO_JOBS must be >= 0 (0 = all CPUs)")
        return n if n > 0 else available_cpu_count()
    return available_cpu_count()


def resolve_executor(executor: Optional[str] = None) -> str:
    """Resolve the executor backend: explicit ``executor``, else the
    ``REPRO_EXECUTOR`` environment variable, else ``"process"``."""
    if executor is None:
        executor = os.environ.get("REPRO_EXECUTOR", "") or "process"
    name = str(executor).lower()
    if name not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    return name


# ----------------------------------------------------------------------
# Per-worker object reuse
# ----------------------------------------------------------------------
_WORKER_MEMO: Dict[Tuple, Any] = {}


def worker_memo(key: Tuple, build: Callable[[], Any]) -> Any:
    """Process-local memo cache for heavyweight per-sweep objects.

    Worker functions call this to build a ``Mesh`` / ``KRoundOrdering``
    / fault index once per worker process and reuse it across chunks
    of the same sweep (the pool keeps workers alive for the engine's
    lifetime, so a 1000-trial sweep builds each mesh once per worker,
    not once per trial).  Under the thread executor the cache is
    shared by all workers, so ``build`` must produce objects that are
    safe to share across threads (read-only, or internally locked).
    """
    try:
        return _WORKER_MEMO[key]
    except KeyError:
        value = build()
        _WORKER_MEMO[key] = value
        return value


def is_picklable(obj: Any) -> bool:
    """Whether ``obj`` survives a full pickle *round trip* (used to
    gate the process-pool path for user-supplied callbacks).

    Both directions matter: an object can serialize fine on the
    submitting side yet blow up in ``loads`` inside the worker process
    (e.g. a ``__reduce__`` whose reconstructor fails, or state that
    ``__setstate__`` rejects) — historically that surfaced as an
    opaque pool crash mid-sweep instead of a clean serial fallback.

    Only pickling-shaped failures mean "not picklable"; anything else
    (say, a ``KeyboardInterrupt`` or a broken ``__getstate__`` raising
    an unrelated error type) propagates rather than being swallowed.
    """
    if obj is None:
        return True
    try:
        pickle.loads(pickle.dumps(obj))
        return True
    except (pickle.PickleError, TypeError, AttributeError, EOFError):
        # PicklingError/UnpicklingError, unpicklable types (TypeError),
        # missing module-level names (AttributeError), truncated or
        # self-inconsistent streams (EOFError).
        return False


def _run_chunk(
    worker: Callable[[Dict[str, Any], int], Any],
    payload: Dict[str, Any],
    ts: Sequence[int],
) -> List[Any]:
    """Executed in a worker process: run ``worker(payload, t)`` for
    every trial index in the chunk."""
    return [worker(payload, t) for t in ts]


def _run_chunk_timed(
    worker: Callable[[Dict[str, Any], int], Any],
    payload: Dict[str, Any],
    ts: Sequence[int],
) -> Tuple[float, List[Any]]:
    """Like :func:`_run_chunk`, but also measures the chunk's wall
    time *inside* the worker (so pool queueing and pickling are
    excluded).  The parent records it into the ambient telemetry
    registry — aggregates only (histograms/counters commute), never
    events, so seeded runs stay deterministic under any job count."""
    t0 = time.perf_counter()
    out = [worker(payload, t) for t in ts]
    return time.perf_counter() - t0, out


class TrialEngine:
    """Fans seeded trials across a worker pool, chunked to amortize
    pickling, merging results back in trial order.

    Parameters
    ----------
    jobs:
        Worker count; default from ``REPRO_JOBS`` then
        :func:`available_cpu_count`.  ``jobs=1`` never spawns a pool.
    chunks_per_worker:
        Target number of chunks handed to each worker (larger values
        smooth load imbalance between slow and fast trials at the cost
        of more pickling round-trips).
    executor:
        ``"process"`` (default; GIL-free, needs picklable work) or
        ``"thread"`` (shared address space, no pickling constraint).
        Default from ``REPRO_EXECUTOR``.
    max_crash_retries:
        Pool rebuilds tolerated per :meth:`run_trials` call before a
        :class:`WorkerCrashError` (process executor only — threads
        cannot vanish).
    chunk_timeout:
        Seconds a single chunk may run before the pool is recycled and
        the chunk retried (None = wait forever).  With the thread
        executor a stuck thread cannot be reclaimed, so a timeout
        raises :class:`WorkerCrashError` immediately.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        chunks_per_worker: int = 4,
        executor: Optional[str] = None,
        max_crash_retries: int = 2,
        chunk_timeout: Optional[float] = None,
    ):
        self.jobs = resolve_jobs(jobs)
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        self.chunks_per_worker = chunks_per_worker
        self.executor = resolve_executor(executor)
        if max_crash_retries < 0:
            raise ValueError("max_crash_retries must be >= 0")
        self.max_crash_retries = int(max_crash_retries)
        self.chunk_timeout = chunk_timeout
        self._pool: Optional[Executor] = None
        #: Accounting for the most recent :meth:`run_trials` call.
        self.last_run: RunAccounting = RunAccounting(
            executor=self.executor, jobs=self.jobs
        )

    # ------------------------------------------------------------------
    @property
    def requires_pickling(self) -> bool:
        """Whether workers/payloads must survive pickling (process
        executor); the thread executor shares the address space."""
        return self.executor == "process"

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.executor == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix="repro-trial",
                )
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _discard_pool(self) -> None:
        """Abandon a broken/wedged pool without waiting on it; kill any
        still-running process workers best-effort so a wedged chunk
        cannot leak a spinning process."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        if isinstance(pool, ProcessPoolExecutor):
            procs = list(getattr(pool, "_processes", {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                try:
                    proc.terminate()
                except (OSError, ValueError, AttributeError):
                    pass
        else:  # pragma: no cover - thread pools are never discarded
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "TrialEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def chunk_indices(self, trials: int) -> List[List[int]]:
        """Split ``range(trials)`` into contiguous chunks sized to give
        each worker ~``chunks_per_worker`` chunks."""
        if trials <= 0:
            return []
        target = self.jobs * self.chunks_per_worker
        size = max(1, -(-trials // target))  # ceil division
        return [
            list(range(lo, min(lo + size, trials)))
            for lo in range(0, trials, size)
        ]

    def run_trials(
        self,
        worker: Callable[[Dict[str, Any], int], Any],
        trials: int,
        payload: Dict[str, Any],
    ) -> List[Any]:
        """Run ``worker(payload, t)`` for ``t`` in ``range(trials)``.

        With the process executor, ``worker`` must be a picklable
        module-level function taking ``(payload, t)`` and returning a
        picklable per-trial result; the thread executor lifts the
        pickling constraint.  Results are returned in trial order
        regardless of which worker ran which chunk, so any
        order-dependent merge downstream (e.g. appending into
        :class:`TrialSeries`) is bit-identical to the serial loop.

        A broken process pool (killed worker) or a chunk exceeding
        ``chunk_timeout`` triggers transparent recovery: the pool is
        rebuilt and every unfinished chunk resubmitted, up to
        ``max_crash_retries`` rebuilds — then a typed
        :class:`WorkerCrashError` naming the unfinished chunks.
        :attr:`last_run` records the full accounting either way.
        """
        acct = RunAccounting(
            trials_expected=max(0, trials),
            executor=self.executor,
            jobs=self.jobs,
        )
        self.last_run = acct
        if trials <= 0:
            return []
        reg = get_registry()
        if self.jobs == 1 or trials == 1:
            seconds, out = _run_chunk_timed(
                worker, payload, list(range(trials))
            )
            reg.observe("trial_chunk_seconds", seconds)
            reg.inc("trial_chunks_total")
            reg.inc("trials_total", trials)
            acct.chunks_total = 1
            acct.trials_completed = len(out)
            return out
        chunks = self.chunk_indices(trials)
        acct.chunks_total = len(chunks)
        results: List[Optional[List[Any]]] = [None] * len(chunks)
        futures = self._submit_chunks(worker, payload, chunks, range(len(chunks)))
        rebuilds_left = self.max_crash_retries
        i = 0
        while i < len(chunks):
            try:
                seconds, rows = futures[i].result(timeout=self.chunk_timeout)
            except (BrokenExecutor, FutureTimeoutError) as exc:
                pending = [j for j in range(i, len(chunks)) if results[j] is None]
                if self.executor == "thread" or rebuilds_left <= 0:
                    self._discard_pool()
                    acct.trials_completed = sum(
                        len(r) for r in results if r is not None
                    )
                    raise WorkerCrashError(
                        f"trial chunk {chunks[i][0]}..{chunks[i][-1]} failed "
                        f"({type(exc).__name__}) and "
                        f"{'thread workers cannot be recycled' if self.executor == 'thread' else 'crash-retry budget exhausted'}; "
                        f"{len(pending)} chunk(s) unfinished",
                        pending_chunks=[chunks[j] for j in pending],
                    ) from exc
                rebuilds_left -= 1
                acct.pool_rebuilds += 1
                acct.chunk_retries += len(pending)
                reg.inc("trial_pool_rebuilds_total")
                reg.inc("trial_chunk_retries_total", len(pending))
                self._discard_pool()
                fresh = self._submit_chunks(worker, payload, chunks, pending)
                for j, fut in zip(pending, fresh):
                    futures[j] = fut
                continue  # re-await chunk i on the fresh pool
            results[i] = rows
            reg.observe("trial_chunk_seconds", seconds)
            reg.inc("trial_chunks_total")
            reg.inc("trials_total", len(rows))
            i += 1
        out: List[Any] = []
        for rows in results:  # chunk order == trial order
            assert rows is not None
            out.extend(rows)
        acct.trials_completed = len(out)
        return out

    def _submit_chunks(
        self,
        worker: Callable[[Dict[str, Any], int], Any],
        payload: Dict[str, Any],
        chunks: Sequence[Sequence[int]],
        which: Sequence[int],
    ) -> List[Future]:
        pool = self._ensure_pool()
        return [
            pool.submit(_run_chunk_timed, worker, payload, chunks[j])
            for j in which
        ]

    def map_ordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Map a picklable function over heterogeneous work items (one
        item per task, no chunking), results in item order."""
        items = list(items)
        if not items:
            return []
        if self.jobs == 1 or len(items) == 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]


# ----------------------------------------------------------------------
# Ambient default engine
# ----------------------------------------------------------------------
# The library helpers (lamb_trials, the chaos sweeps, ...) consult this
# ambient engine when no explicit ``jobs=`` is passed.  It defaults to
# serial unless REPRO_JOBS is set, so tests and small scripts never pay
# pool startup; ``repro experiments --jobs N`` installs a wider one.
_default_engine: Optional[TrialEngine] = None
_default_explicit: bool = False


def get_default_engine() -> TrialEngine:
    """The ambient engine.

    If one was installed explicitly (:func:`set_default_jobs` /
    :func:`engine_jobs`), that engine is returned; otherwise the
    engine tracks ``REPRO_JOBS`` / ``REPRO_EXECUTOR`` (serial when
    unset, so library calls without an explicit ``jobs=`` never pay
    pool startup)."""
    global _default_engine
    if _default_explicit and _default_engine is not None:
        return _default_engine
    want = int(os.environ.get("REPRO_JOBS", "0") or 0) or 1
    want_exec = resolve_executor(None)
    if (
        _default_engine is None
        or _default_engine.jobs != want
        or _default_engine.executor != want_exec
    ):
        if _default_engine is not None:
            _default_engine.close()
        _default_engine = TrialEngine(jobs=want, executor=want_exec)
    return _default_engine


def set_default_jobs(
    jobs: Optional[int], executor: Optional[str] = None
) -> TrialEngine:
    """Install an ambient engine with ``jobs`` workers (``None`` =
    resolve from ``REPRO_JOBS`` / CPU count) and return it."""
    global _default_engine, _default_explicit
    if _default_engine is not None:
        _default_engine.close()
    _default_engine = TrialEngine(jobs=resolve_jobs(jobs), executor=executor)
    _default_explicit = True
    return _default_engine


@contextmanager
def engine_jobs(jobs: Optional[int], executor: Optional[str] = None):
    """Temporarily install an ambient engine with ``jobs`` workers."""
    global _default_engine, _default_explicit
    prev, prev_explicit = _default_engine, _default_explicit
    engine = TrialEngine(jobs=resolve_jobs(jobs), executor=executor)
    _default_engine, _default_explicit = engine, True
    try:
        yield engine
    finally:
        _default_engine, _default_explicit = prev, prev_explicit
        engine.close()


def resolve_engine(
    jobs: Optional[int], executor: Optional[str] = None
) -> Tuple[TrialEngine, bool]:
    """Engine for a helper call: explicit ``jobs`` (or ``executor``)
    spins a private engine (caller-scoped, returned with
    ``owned=True``); all-default borrows the ambient engine."""
    if jobs is None and executor is None:
        return get_default_engine(), False
    return TrialEngine(jobs=jobs, executor=executor), True
