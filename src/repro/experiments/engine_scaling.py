"""Engine-crossover measurement: lines vs spanning reachability.

The paper gives two cost models (Section 6.2 + footnote 7): the
representative-pair kernel at O(k d^3 f^3) — independent of the mesh
size — and per-representative spanning floods at O(d^2 f N).  This
experiment measures both engines' wall-clock across a fault sweep on a
fixed mesh, locating the empirical crossover to sanity-check the
``engine="auto"`` policy.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence

import numpy as np

from ..core.lamb import find_lamb_set
from ..core.spanning import recommended_engine
from ..mesh.faults import random_node_faults
from ..mesh.geometry import Mesh
from ..routing.ordering import ascending, repeated
from .harness import SweepResult, TrialSeries, default_trials
from .parallel import resolve_engine, worker_memo

__all__ = ["engine_crossover_sweep"]


def _crossover_trial(payload: Dict[str, Any], t: int) -> Dict[str, float]:
    """Time both reachability engines on trial ``t``'s fault draw."""
    mesh = payload["mesh"]
    mesh = worker_memo(("mesh", type(mesh).__name__, mesh.widths), lambda: mesh)
    orderings = repeated(ascending(mesh.d), 2)
    rng = np.random.default_rng((payload["seed"], 9500 + payload["i"], t))
    faults = random_node_faults(mesh, payload["f"], rng)
    t0 = time.perf_counter()
    a = find_lamb_set(faults, orderings, engine="lines")
    t1 = time.perf_counter()
    b = find_lamb_set(faults, orderings, engine="spanning")
    t2 = time.perf_counter()
    return {
        "seconds_lines": t1 - t0,
        "seconds_spanning": t2 - t1,
        "agree": float(a.lambs == b.lambs),
        "auto_picks_spanning": float(
            recommended_engine(faults, orderings) == "spanning"
        ),
    }


def engine_crossover_sweep(
    mesh: Mesh,
    fault_counts: Sequence[int],
    trials: Optional[int] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> SweepResult:
    """Wall-clock of both reachability engines per fault count.

    Records ``seconds_lines``, ``seconds_spanning``, the lamb-size
    agreement flag, and what ``engine="auto"`` would pick.  ``jobs``
    fans the (independent, seeded) trials over the
    :class:`repro.experiments.parallel.TrialEngine`; note that
    co-scheduled workers contend for cores, so per-trial wall clocks
    are best measured with ``jobs=1``.
    """
    trials = default_trials(3) if trials is None else trials
    out = SweepResult(
        figure="engine-crossover",
        description=f"lines vs spanning engine wall-clock, {mesh}",
        x_label="faults",
        meta={"mesh": mesh.widths, "trials": trials},
    )
    engine, owned = resolve_engine(jobs)
    try:
        for i, f in enumerate(fault_counts):
            series = TrialSeries(x=f)
            payload = {"mesh": mesh, "seed": seed, "i": i, "f": f}
            for row in engine.run_trials(_crossover_trial, trials, payload):
                series.add(**row)
            out.series.append(series)
    finally:
        if owned:
            engine.close()
    return out
