"""Plain-text rendering of experiment results.

``render_sweep`` prints the rows the paper's figures plot;
``run_all`` regenerates every experiment and writes the measured
numbers next to the paper's into a markdown report (the generator
behind EXPERIMENTS.md).
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence

import numpy as np

from .harness import SweepResult

__all__ = ["render_sweep", "render_matrix", "sweep_to_markdown"]


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e12:
        return str(int(v))
    if abs(v) >= 100:
        return f"{v:.1f}"
    return f"{v:.3f}"


def _columns(result: SweepResult) -> List[str]:
    keys: List[str] = []
    for s in result.series:
        for k in s.values:
            if k not in keys:
                keys.append(k)
    return keys


def render_sweep(
    result: SweepResult,
    aggs: Sequence[str] = ("avg", "max"),
    keys: Optional[Sequence[str]] = None,
) -> str:
    """A fixed-width table: one row per sweep point, one column per
    (measurement, aggregate)."""
    keys = list(keys) if keys is not None else _columns(result)
    headers = [result.x_label]
    for k in keys:
        for agg in aggs:
            headers.append(f"{agg}({k})" if len(aggs) > 1 else k)
    rows: List[List[str]] = []
    for s in result.series:
        row = [_fmt(s.x)]
        for k in keys:
            for agg in aggs:
                if k in s.values:
                    fn = {"avg": s.avg, "max": s.max, "min": s.min,
                          "std": s.std, "ci95": s.ci95}[agg]
                    row.append(_fmt(fn(k)))
                else:
                    row.append("-")
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    out = io.StringIO()
    out.write(f"# {result.figure}: {result.description}\n")
    if result.meta:
        out.write(f"# meta: {result.meta}\n")
    out.write("  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
    for r in rows:
        out.write("  ".join(v.rjust(w) for v, w in zip(r, widths)) + "\n")
    return out.getvalue()


def sweep_to_markdown(
    result: SweepResult,
    aggs: Sequence[str] = ("avg", "max"),
    keys: Optional[Sequence[str]] = None,
) -> str:
    """The same table as a GitHub-flavored markdown table."""
    keys = list(keys) if keys is not None else _columns(result)
    headers = [result.x_label]
    for k in keys:
        for agg in aggs:
            headers.append(f"{agg}({k})" if len(aggs) > 1 else k)
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for s in result.series:
        row = [_fmt(s.x)]
        for k in keys:
            for agg in aggs:
                if k in s.values:
                    fn = {"avg": s.avg, "max": s.max, "min": s.min,
                          "std": s.std, "ci95": s.ci95}[agg]
                    row.append(_fmt(fn(k)))
                else:
                    row.append("-")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def render_matrix(
    matrix: np.ndarray, row_prefix: str = "S", col_prefix: str = "D"
) -> str:
    """Render a boolean reachability matrix in the style of the
    paper's Tables 1-2."""
    p, q = matrix.shape
    headers = [f"{col_prefix}{j + 1}" for j in range(q)]
    out = io.StringIO()
    out.write("     " + " ".join(h.rjust(3) for h in headers) + "\n")
    for i in range(p):
        row = " ".join(("1" if matrix[i, j] else "0").rjust(3) for j in range(q))
        out.write(f"{row_prefix}{i + 1:<4d}" + row + "\n")
    return out.getvalue()
