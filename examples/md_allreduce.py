#!/usr/bin/env python
"""A molecular-dynamics-style collective workload on a faulty machine.

The Blue Gene design the paper reconfigures was built for protein
science ([1]); its flagship application ([2]) alternates local force
computation with *global* collectives over every compute node.  This
example plays out that loop on a faulty 3D mesh:

1. faults appear; the lamb technique reconfigures the machine;
2. the surviving compute nodes (lambs excluded — they route, they do
   not compute) run timesteps of: local work, then an allgather of
   contributions;
3. the collective's correctness is checked by dataflow, its cost
   measured on the flit-level wormhole simulator, comparing the
   recursive-doubling algorithm against a naive gather+broadcast.

Run:  python examples/md_allreduce.py [n]
"""

import sys

import numpy as np

from repro import Mesh, find_lamb_set, repeated, xyz
from repro.collectives import (
    binomial_broadcast,
    binomial_gather,
    linear_alltoone,
    recursive_doubling_allgather,
    run_collective,
)
from repro.mesh import random_node_faults


def main(n: int = 6) -> None:
    mesh = Mesh.square(3, n)
    rng = np.random.default_rng(1)
    faults = random_node_faults(mesh, max(2, mesh.num_nodes // 60), rng)
    orderings = repeated(xyz(), 2)
    result = find_lamb_set(faults, orderings)
    survivors = result.survivors()
    print(f"machine: {mesh} | faults {faults.f} | lambs {result.size} | "
          f"compute nodes {len(survivors)}\n")

    # Use a power-of-two-ish subset as the MD rank set.
    p = min(64, len(survivors))
    ranks = survivors[:p]

    # Correctness: after the allgather every rank holds every other
    # rank's contribution.
    sched = recursive_doubling_allgather(p)
    state = sched.propagate({r: {r} for r in range(p)})
    assert all(state[r] == set(range(p)) for r in range(p))
    print(f"allgather over {p} ranks: {sched.num_phases} phases, "
          f"{sched.total_transfers} messages — dataflow verified")

    # Cost on the wormhole machine, vs the naive alternative
    # (gather everything at rank 0, then broadcast back).
    fast = run_collective(result, sched, ranks)
    naive_cycles = 0
    for s in (linear_alltoone(p), binomial_broadcast(p)):
        naive_cycles += run_collective(result, s, ranks).makespan_cycles
    print(f"recursive doubling : {fast.makespan_cycles:>6} cycles "
          f"({fast.num_phases} phases)")
    print(f"gather + broadcast : {naive_cycles:>6} cycles")

    # Per-phase costs show the barrier structure.
    print("\nper-phase cycles (recursive doubling):",
          fast.phase_cycles)
    print("\ntimestep loop: compute overlaps nothing here, but the "
          "collective cost above\nis the communication floor of every "
          "MD timestep on the reconfigured machine.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
