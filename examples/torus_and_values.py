#!/usr/bin/env python
"""Section 7 extensions: tori, node values, predetermined lambs.

1. **Torus.** The lamb method only needs nodes plus a simple
   reachability relation; on a small 2D torus with minimal-direction
   DOR we compute a lamb set with the generic solver and certify it.
2. **Node values.** Nodes that still have most of their processors are
   more valuable; the weighted pipeline prefers sacrificing the
   nearly-dead node over a healthy one.
3. **Predetermined lambs.** Reconfiguration can require the new lamb
   set to be a superset of the old one.

Run:  python examples/torus_and_values.py
"""

import numpy as np

from repro import FaultSet, Mesh, Torus, find_lamb_set, repeated, xy
from repro.core import torus_lamb_set, torus_reach_matrix
from repro.core.generic import generic_lamb_set


def torus_demo() -> None:
    print("=== lamb sets on a torus ===")
    torus = Torus((8, 8))
    rng = np.random.default_rng(5)
    faults = FaultSet(torus, torus.random_nodes(5, rng))
    orderings = repeated(xy(), 2)
    lambs = torus_lamb_set(faults, orderings)
    print(f"{torus}: faults {sorted(faults.node_faults)}")
    print(f"lambs: {sorted(lambs)}")

    # Certify: every survivor pair is mutually 2-round reachable.
    good, Rk = torus_reach_matrix(faults, orderings)
    surv_idx = [i for i, v in enumerate(good) if v not in lambs]
    ok = bool(Rk[np.ix_(surv_idx, surv_idx)].all())
    print(f"survivor set certified: {ok}")
    # Wrap-around links usually make one round enough on a small torus:
    one = repeated(xy(), 1)
    lambs1 = torus_lamb_set(faults, one)
    print(f"(one round would need {len(lambs1)} lambs)\n")


def values_demo() -> None:
    print("=== node values: sacrifice the nearly-dead node ===")
    mesh = Mesh((12, 12))
    faults = FaultSet(mesh, [(9, 1), (11, 6), (10, 10)])
    orderings = repeated(xy(), 2)

    plain = find_lamb_set(faults, orderings)
    print(f"unweighted lamb set: {sorted(plain.lambs)}")

    # Tell the solver that the D7 column piece {(11, 7..11)} is nearly
    # dead (almost all processors gone): the WVC weights shift and the
    # cover prefers sacrificing it where that resolves a zero entry.
    values = {(11, 7): 0.05, (11, 8): 0.05, (11, 9): 0.05,
              (11, 10): 0.05, (11, 11): 0.05}
    weighted = find_lamb_set(faults, orderings, values=values)
    print(f"value-aware lamb set: {sorted(weighted.lambs)}")
    print(f"cover weights: plain {plain.cover_weight}, "
          f"weighted {weighted.cover_weight}\n")


def predetermined_demo() -> None:
    print("=== predetermined lambs across reconfigurations ===")
    mesh = Mesh((12, 12))
    orderings = repeated(xy(), 2)
    first = find_lamb_set(FaultSet(mesh, [(9, 1), (11, 6), (10, 10)]), orderings)
    print(f"epoch 1 lambs: {sorted(first.lambs)}")
    # A new fault appears; the new lamb set must contain the old lambs.
    second = find_lamb_set(
        FaultSet(mesh, [(9, 1), (11, 6), (10, 10), (2, 2)]),
        orderings,
        predetermined=first.lambs,
    )
    print(f"epoch 2 lambs: {sorted(second.lambs)}")
    print(f"superset of epoch 1: {first.lambs <= second.lambs}")


if __name__ == "__main__":
    torus_demo()
    values_demo()
    predetermined_demo()
