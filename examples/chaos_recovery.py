#!/usr/bin/env python
"""Live faults, rollback epochs, and graceful degradation.

The paper assumes faults are *static* and known before routing starts;
its deployment story (Section 1) is a roll-back loop — diagnose,
checkpoint, reconfigure, resume.  This script closes that loop live:

1. an 8x8 mesh with two initial faults is configured (epoch 0);
2. survivor traffic flies while a seeded `FaultSchedule` kills more
   nodes mid-flight;
3. each kill tears affected messages out of the network, triggers a
   rollback/reconfigure epoch (sticky lambs, degradation ladder), and
   re-injects the victims with exponential backoff on post-fault
   routes;
4. the final report accounts for every message — delivered,
   retried-then-delivered, or aborted with an explicit reason.

A second part disconnects a corner of a small mesh to show the
quarantine rung of the degradation ladder: the machine gives up the
unreachable region and keeps running instead of crashing.

Run:  python examples/chaos_recovery.py [seed]
"""

import sys

from repro.core import ReconfigurationManager
from repro.mesh import Mesh
from repro.routing import repeated, xy
from repro.wormhole import Tracer, seeded_chaos_run


def live_fault_storm(seed: int) -> None:
    print("=== part 1: live-fault storm on an 8x8 mesh ===\n")
    tracer = Tracer()
    report = seeded_chaos_run(
        widths=(8, 8),
        initial_faults=2,
        num_messages=120,
        num_events=4,
        seed=seed,
        tracer=tracer,
    )
    print(report.summary())
    s = report.stats
    assert report.fully_accounted, "a message was silently lost!"
    print(
        f"\nlatency: {s.avg_latency:.1f} cycles (final attempt), "
        f"{s.avg_total_latency:.1f} including abort/backoff/retry time"
    )
    retries = tracer.abort_reasons().get("retry", 0)
    print(f"trace: {len(tracer.events)} events, {retries} mid-flight retries")
    # Determinism: the entire run derives from the seed.
    again = seeded_chaos_run(
        widths=(8, 8),
        initial_faults=2,
        num_messages=120,
        num_events=4,
        seed=seed,
    )
    assert again.stats == report.stats
    print("re-run with the same seed: identical report (deterministic)\n")


def quarantine_demo() -> None:
    print("=== part 2: the quarantine rung of the degradation ladder ===\n")
    mesh = Mesh((4, 4))
    mgr = ReconfigurationManager(mesh, repeated(xy(), 2))
    # Killing (1,0) and (0,1) disconnects the corner (0,0).  With a
    # lamb budget of 0 no lamb set fits, so the ladder quarantines the
    # corner and reconfigures the remaining machine.
    epoch = mgr.report_faults_degraded(
        node_faults=[(1, 0), (0, 1)], lamb_budget=0, max_extra_rounds=0
    )
    print(
        f"epoch {epoch.index}: faults {epoch.num_faults}, "
        f"lambs {epoch.num_lambs}, survivors {epoch.num_survivors}, "
        f"quarantined {list(epoch.quarantined)}"
    )
    assert epoch.quarantined == ((0, 0),)
    # Later epochs keep the quarantined region out of the machine.
    nxt = mgr.report_faults_degraded(node_faults=[(3, 3)])
    assert nxt.result.faults.node_is_faulty((0, 0))
    print(
        f"epoch {nxt.index}: +1 fault, quarantine persists "
        f"({sorted(mgr.quarantined)} still out of the machine)"
    )
    print("\nthe machine degraded gracefully -- no crash, no silent loss")


def main(seed: int = 3) -> None:
    live_fault_storm(seed)
    quarantine_demo()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
