#!/usr/bin/env python
"""Routing tables, persistence, and the full reconfiguration loop.

A reconfiguration has three artifacts: the lamb set, the routing table
(the k-round intermediates every source needs), and a persisted record
for the next boot.  This example drives all three through the
:class:`ReconfigurationManager` over several fault epochs — including
a *link* fault epoch — and shows the round-usage histogram the paper's
2-round design banks on: under sparse faults almost all survivor pairs
still route in a single round.

Run:  python examples/routing_tables.py
"""

import json

import numpy as np

from repro import Mesh, repeated, xy
from repro.core import ReconfigurationManager, build_routing_table
from repro.mesh.serialization import (
    dumps,
    lamb_outcome_from_dict,
    lamb_outcome_to_dict,
    loads,
)
from repro.routing import max_turns_bound
from repro.viz import render_lambs


def main() -> None:
    mesh = Mesh((16, 16))
    orderings = repeated(xy(), 2)
    mgr = ReconfigurationManager(mesh, orderings)
    rng = np.random.default_rng(16)

    print(f"machine: {mesh}, 2 rounds of XY on 2 virtual channels\n")

    epochs = [
        {"node_faults": [tuple(v) for v in mesh.random_nodes(5, rng)]},
        {"node_faults": [tuple(v) for v in
                         mesh.random_nodes(5, rng, exclude=mgr.fault_set().node_faults)]},
        {"link_faults": [(((3, 3)), ((3, 4))), (((10, 2)), ((11, 2)))]},
    ]
    for spec in epochs:
        epoch = mgr.report_faults(**spec)
        kind = "link" if "link_faults" in spec else "node"
        print(f"epoch {epoch.index}: +{len(list(spec.values())[0])} {kind} faults "
              f"-> faults {epoch.num_faults}, lambs {epoch.num_lambs}, "
              f"survivors {epoch.num_survivors}")
    print(f"sticky lambs held across epochs: {mgr.monotone_lambs()}\n")

    result = mgr.current.result

    # Routing table over a sample of survivor pairs.
    survivors = result.survivors()
    pairs = []
    for _ in range(400):
        i, j = rng.integers(len(survivors), size=2)
        if i != j:
            pairs.append((survivors[int(i)], survivors[int(j)]))
    table = build_routing_table(result, pairs=pairs)
    hist = table.round_usage_histogram()
    total = sum(hist.values())
    print(f"routing table: {total} routes")
    for rounds, count in sorted(hist.items()):
        print(f"  {rounds}-round routes: {count} ({100 * count / total:.1f}%)")
    print(f"  max turns: {table.max_turns()} "
          f"(bound {max_turns_bound(mesh.d, orderings.k)})\n")

    # Persist and reload the reconfiguration outcome.
    record = dumps(lamb_outcome_to_dict(result))
    back = lamb_outcome_from_dict(loads(record))
    print(f"persisted outcome: {len(record)} bytes of JSON; "
          f"reload matches: {back['lambs'] == set(result.lambs)}")

    if result.lambs:
        print("\nfinal machine state ('X' fault, 'L' lamb):")
        print(render_lambs(result.faults, result.lambs))


if __name__ == "__main__":
    main()
