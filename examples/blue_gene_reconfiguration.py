#!/usr/bin/env python
"""The motivating Blue Gene scenario: roll-back / reconfigure.

The paper frames the lamb technique as the *reconfiguration step* of a
3D-mesh supercomputer: when the diagnostic layer detects new faults,
the system rolls back to a checkpoint, recomputes the lamb set for the
updated (static, globally known) fault set, and resumes with survivors
only (Section 1).

This script simulates three fault epochs on a 3D mesh.  At each epoch
new random faults appear on top of the old ones; reconfiguration
recomputes the lamb set **with the previous lambs predetermined**
(Section 7's extension — already-sacrificed nodes stay sacrificed so
running jobs never migrate back), then a burst of survivor-to-survivor
traffic is pushed through the wormhole simulator to show the machine
still routes deadlock-free with two virtual channels.

Run:  python examples/blue_gene_reconfiguration.py [n]
"""

import sys

import numpy as np

from repro import Mesh, FaultSet, find_lamb_set, repeated, xyz
from repro.core import is_lamb_set
from repro.routing import max_turns_bound
from repro.wormhole import WormholeSimulator, uniform_random_traffic


def main(n: int = 12) -> None:
    mesh = Mesh.square(3, n)
    orderings = repeated(xyz(), 2)
    rng = np.random.default_rng(2002)
    print(f"machine: {mesh} ({mesh.num_nodes} nodes), "
          f"routing: 2 rounds of XYZ on 2 virtual channels\n")

    fault_nodes: list = []
    previous_lambs: frozenset = frozenset()
    per_epoch = max(1, mesh.num_nodes // 100)  # ~1% new faults per epoch

    for epoch in range(1, 4):
        new = mesh.random_nodes(per_epoch, rng, exclude=fault_nodes)
        fault_nodes.extend(new)
        faults = FaultSet(mesh, fault_nodes)

        # Reconfiguration: previous lambs stay lambs (minus any that
        # just failed outright).
        keep = [v for v in previous_lambs if not faults.node_is_faulty(v)]
        result = find_lamb_set(faults, orderings, predetermined=keep)
        previous_lambs = result.lambs

        survivors = mesh.num_nodes - faults.num_node_faults - result.size
        print(f"epoch {epoch}: +{len(new)} faults "
              f"(total {faults.num_node_faults}), "
              f"lambs {result.size}, survivors {survivors} "
              f"({100 * survivors / mesh.num_nodes:.1f}% of the machine), "
              f"pipeline {result.timings['total'] * 1e3:.0f} ms")

        if mesh.num_nodes <= 4096:  # brute-force certification
            assert is_lamb_set(faults, orderings, result.lambs)

        # Resume: survivor-to-survivor traffic burst.
        sim = WormholeSimulator(faults, orderings, seed=epoch)
        endpoints = [
            v for v in mesh.nodes() if result.is_survivor(v)
        ]
        traffic = uniform_random_traffic(
            endpoints, 100, rng, num_flits=8, inject_window=50
        )
        for m in traffic:
            sim.send(m.source, m.dest, m.num_flits, m.inject_cycle)
        stats = sim.run()
        print(f"         traffic: {stats.delivered}/{stats.total_messages} "
              f"messages in {stats.cycles} cycles, "
              f"avg latency {stats.avg_latency:.1f}, "
              f"max turns {stats.max_turns} "
              f"(k-round DOR bound: {max_turns_bound(mesh.d, orderings.k)})\n")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
